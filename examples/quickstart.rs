//! Quickstart: build a TMFG from a correlation matrix and cluster it with
//! the DBHT.
//!
//! Run with: `cargo run --release --example quickstart`

use par_filtered_graph_clustering::prelude::*;

fn main() {
    // 1. Generate a small labeled time-series data set (3 classes).
    let config = TimeSeriesConfig {
        num_series: 150,
        length: 128,
        num_classes: 3,
        noise: 0.35,
        seed: 7,
    };
    let dataset = TimeSeriesDataset::generate("quickstart", &config);
    println!(
        "data set: {} series of length {} in {} classes",
        dataset.len(),
        dataset.series_length(),
        dataset.num_classes()
    );

    // 2. Pairwise Pearson correlations and the dissimilarity measure.
    let correlation = correlation_matrix(&dataset.series);
    let dissimilarity = dissimilarity_from_correlation(&correlation);

    // 3. Run the PAR-TDBHT pipeline (TMFG with prefix 10 + DBHT).
    let result = ParTdbht::with_prefix(10)
        .run(&correlation, &dissimilarity)
        .expect("valid input matrices");
    println!(
        "TMFG: {} edges, {} bubbles, {} rounds",
        result.tmfg.graph.num_edges(),
        result.tmfg.bubble_tree.len(),
        result.tmfg.rounds
    );
    println!(
        "DBHT: {} groups (converging bubbles), {}",
        result.assignment.num_groups(),
        result.dbht_stats.summary_line()
    );
    println!(
        "stage timings: tmfg {:?}, apsp {:?}, direction {:?}, assignment {:?}, hierarchy {:?}",
        result.timings.tmfg,
        result.timings.apsp,
        result.timings.direction,
        result.timings.assignment,
        result.timings.hierarchy
    );

    // 4. Cut the dendrogram to the number of ground-truth classes and score.
    let labels = result.clusters(dataset.num_classes());
    let ari = adjusted_rand_index(&dataset.labels, &labels);
    let ami = adjusted_mutual_information(&dataset.labels, &labels);
    println!("ARI = {ari:.3}, AMI = {ami:.3}");
}
