//! UCR-style time-series clustering: compare PAR-TDBHT against the
//! complete-linkage, average-linkage and k-means baselines on a synthetic
//! stand-in for one of the Table II data sets.
//!
//! Run with: `cargo run --release --example time_series_clustering`

use par_filtered_graph_clustering::prelude::*;
use pfg_baselines::kmeans::Seeding;

fn main() {
    // Use the CBF-like entry of the Table II catalogue at 30% scale.
    let spec = ucr_catalogue()
        .into_iter()
        .find(|d| d.name == "CBF")
        .expect("CBF is in the catalogue");
    let dataset = spec.generate(0.3, 42);
    let k = dataset.num_classes();
    println!(
        "data set {} (id {}): n = {}, L = {}, {} classes",
        dataset.name,
        spec.id,
        dataset.len(),
        dataset.series_length(),
        k
    );

    let correlation = correlation_matrix(&dataset.series);
    let dissimilarity = dissimilarity_from_correlation(&correlation);

    // PAR-TDBHT with the exact TMFG (prefix 1) and the batched variant.
    for prefix in [1, 10] {
        let start = std::time::Instant::now();
        let result = ParTdbht::with_prefix(prefix)
            .run(&correlation, &dissimilarity)
            .expect("valid matrices");
        let labels = result.clusters(k);
        println!(
            "PAR-TDBHT-{prefix:<3} ARI {:+.3}  AMI {:+.3}  ({:?})",
            adjusted_rand_index(&dataset.labels, &labels),
            adjusted_mutual_information(&dataset.labels, &labels),
            start.elapsed()
        );
    }

    // Complete-linkage and average-linkage HAC on the dissimilarity matrix.
    for (name, linkage) in [("COMP", Linkage::Complete), ("AVG", Linkage::Average)] {
        let start = std::time::Instant::now();
        let dend = hac(&dissimilarity, linkage);
        let labels = dend.cut_to_clusters(k);
        println!(
            "{name:<12} ARI {:+.3}  AMI {:+.3}  ({:?})",
            adjusted_rand_index(&dataset.labels, &labels),
            adjusted_mutual_information(&dataset.labels, &labels),
            start.elapsed()
        );
    }

    // k-means on the raw series.
    let start = std::time::Instant::now();
    let km = kmeans(
        &dataset.series,
        &KMeansConfig {
            k,
            seeding: Seeding::Scalable,
            seed: 3,
            ..KMeansConfig::default()
        },
    );
    println!(
        "K-MEANS      ARI {:+.3}  AMI {:+.3}  ({:?})",
        adjusted_rand_index(&dataset.labels, &km.labels),
        adjusted_mutual_information(&dataset.labels, &km.labels),
        start.elapsed()
    );
}
