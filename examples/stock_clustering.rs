//! The §VII "Clustering Stocks" experiment on a simulated market: detrended
//! log-returns → spectral embedding → correlations → PAR-TDBHT, compared
//! against the ICB-style sector labels (Figures 10 and 11).
//!
//! Run with: `cargo run --release --example stock_clustering`

use par_filtered_graph_clustering::prelude::*;

fn main() {
    // Simulate a market (the paper uses 1614 stocks over 1761 trading days;
    // we default to a smaller market so the example runs in seconds).
    let market = StockMarket::generate(&StockMarketConfig {
        num_stocks: 400,
        num_days: 500,
        ..StockMarketConfig::default()
    });
    println!(
        "market: {} stocks, {} trading days, {} sectors",
        market.len(),
        market.returns[0].len(),
        SECTORS.len()
    );

    // Preprocessing of Musmeci et al.: detrended daily log-returns, then a
    // spectral embedding, then Pearson correlations of the embedded data.
    let detrended = market.detrended_returns();
    let embedded = spectral_embedding(
        &detrended,
        &SpectralConfig {
            neighbors: 25,
            dimensions: SECTORS.len(),
            iterations: 150,
            seed: 9,
        },
    );
    let correlation = correlation_matrix(&embedded);
    let dissimilarity = dissimilarity_from_correlation(&correlation);

    // PAR-TDBHT with prefix 30, as in Figure 10.
    let result = ParTdbht::with_prefix(30)
        .run(&correlation, &dissimilarity)
        .expect("valid matrices");
    let k = SECTORS.len();
    let clusters = result.clusters(k);
    let ari = adjusted_rand_index(&market.sector, &clusters);
    println!("PAR-TDBHT-30 vs ICB sectors: ARI {ari:.3}");

    // Figure 10 analogue: sector composition of every cluster.
    let num_clusters = clusters.iter().copied().max().unwrap_or(0) + 1;
    println!("\ncluster composition (rows = clusters, columns = sectors):");
    print!("{:>8}", "cluster");
    for sector in SECTORS {
        print!(" {:>4}", &sector[..3.min(sector.len())]);
    }
    println!(" total");
    for c in 0..num_clusters {
        let members: Vec<usize> = (0..market.len()).filter(|&i| clusters[i] == c).collect();
        print!("{c:>8}");
        for s in 0..SECTORS.len() {
            let count = members.iter().filter(|&&i| market.sector[i] == s).count();
            print!(" {count:>4}");
        }
        println!(" {:>5}", members.len());
    }

    // Figure 11 analogue: median market cap per cluster.
    println!("\nmedian market cap per cluster:");
    for c in 0..num_clusters {
        let mut caps: Vec<f64> = (0..market.len())
            .filter(|&i| clusters[i] == c)
            .map(|i| market.market_cap[i])
            .collect();
        caps.sort_by(f64::total_cmp);
        if !caps.is_empty() {
            println!("  cluster {c:>2}: {:>14.0}", caps[caps.len() / 2]);
        }
    }
}
