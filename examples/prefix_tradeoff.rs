//! The prefix-size trade-off (Figures 6 and 7, and the appendix example):
//! sweep the TMFG prefix and report construction time, edge-weight-sum
//! ratio, and clustering quality.
//!
//! Run with: `cargo run --release --example prefix_tradeoff`

use par_filtered_graph_clustering::prelude::*;
use pfg_graph::SymmetricMatrix as Matrix;

fn main() {
    // ---- Appendix example (Figures 12–13) ---------------------------------
    // The 6-point correlation matrix for which PREFIX = 3 recovers the
    // ground truth {0,1,2} / {3,4,5} but PREFIX = 1 does not.
    let rows = vec![
        1.0, 0.8, 0.4, 0.8, 0.8, 0.4, //
        0.8, 1.0, 0.41, 0.9, 0.4, 0.0, //
        0.4, 0.41, 1.0, 0.0, 0.4, 0.42, //
        0.8, 0.9, 0.0, 1.0, 0.8, 0.8, //
        0.8, 0.4, 0.4, 0.8, 1.0, 0.8, //
        0.4, 0.0, 0.42, 0.8, 0.8, 1.0,
    ];
    let s = Matrix::from_rows(6, rows);
    let d = s.map(|p| (2.0 * (1.0 - p)).sqrt());
    let truth = vec![0, 0, 0, 1, 1, 1];
    println!("appendix example (ground truth {{0,1,2}} vs {{3,4,5}}):");
    for prefix in [1, 3] {
        let result = ParTdbht::with_prefix(prefix).run(&s, &d).unwrap();
        let labels = result.clusters(2);
        println!(
            "  prefix {prefix}: clusters {:?}  ARI {:+.3}",
            labels,
            adjusted_rand_index(&truth, &labels)
        );
    }

    // ---- Prefix sweep on a synthetic UCR-like data set ---------------------
    let spec = ucr_catalogue()
        .into_iter()
        .find(|s| s.name == "ECG5000")
        .expect("catalogue entry");
    let dataset = spec.generate(0.1, 11);
    let k = dataset.num_classes();
    let correlation = correlation_matrix(&dataset.series);
    let dissimilarity = dissimilarity_from_correlation(&correlation);
    let sequential = ParTdbht::with_prefix(1)
        .run(&correlation, &dissimilarity)
        .unwrap();
    let seq_weight = sequential.tmfg.edge_weight_sum();
    println!(
        "\nprefix sweep on {} (n = {}, k = {}):",
        dataset.name,
        dataset.len(),
        k
    );
    println!(
        "{:>8} {:>10} {:>12} {:>8} {:>8}",
        "prefix", "rounds", "time", "ratio", "ARI"
    );
    for prefix in [1usize, 2, 5, 10, 30, 50, 200] {
        let start = std::time::Instant::now();
        let result = ParTdbht::with_prefix(prefix)
            .run(&correlation, &dissimilarity)
            .unwrap();
        let elapsed = start.elapsed();
        let labels = result.clusters(k);
        println!(
            "{:>8} {:>10} {:>12?} {:>8.3} {:>8.3}",
            prefix,
            result.tmfg.rounds,
            elapsed,
            result.tmfg.edge_weight_sum() / seq_weight,
            adjusted_rand_index(&dataset.labels, &labels)
        );
    }
}
