//! The shadow-write audit, driven end to end. Built only under
//! `RUSTFLAGS="--cfg pfg_racecheck"`; in ordinary builds this file
//! compiles to nothing (and the audit types themselves are zero-sized —
//! asserted by `pfg_audit`'s `zero_sized_when_disabled` test).
//!
//! Two halves:
//!
//! * **Violations are caught and name both sites.** A seeded overlap /
//!   double write must panic with a message carrying the label and the
//!   `file:line` of *both* conflicting claims — that is the property that
//!   makes a violation debuggable rather than a mystery corruption.
//! * **The real kernels are clean.** The audited production paths — the
//!   tiled correlation kernel, the parallel merge sort, APSP row fills and
//!   symmetrisation — run under the registry (and a chaos-seeded pool)
//!   without tripping it.
#![cfg(pfg_racecheck)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use pfg_primitives::DisjointWriteAudit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// Runs `f`, which must panic, and returns the panic payload as text.
fn panic_message(f: impl FnOnce()) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a racecheck panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is text")
}

#[test]
fn overlapping_range_claims_panic_with_both_sites() {
    let audit = DisjointWriteAudit::ranges("racecheck-suite ranges");
    let _live = audit.claim_range(0, 100);
    let msg = panic_message(|| {
        let _overlap = audit.claim_range(50, 150);
    });
    assert!(
        msg.contains("racecheck-suite ranges"),
        "label missing: {msg}"
    );
    assert!(msg.contains("[50, 150)"), "offender range missing: {msg}");
    assert!(msg.contains("[0, 100)"), "live range missing: {msg}");
    // Both claim sites (this file, two distinct lines) are named.
    assert_eq!(
        msg.matches("racecheck.rs").count(),
        2,
        "expected both claim sites in: {msg}"
    );
}

#[test]
fn released_range_can_be_reclaimed() {
    let audit = DisjointWriteAudit::ranges("racecheck-suite reuse");
    {
        let _live = audit.claim_range(0, 64);
    }
    // The RAII release makes temporally nested ownership legal.
    let _again = audit.claim_range(0, 64);
}

#[test]
fn double_cell_write_panics_with_both_sites() {
    let audit = DisjointWriteAudit::cells("racecheck-suite cells", 16);
    audit.write_once(7);
    let msg = panic_message(|| audit.write_once(7));
    assert!(
        msg.contains("racecheck-suite cells"),
        "label missing: {msg}"
    );
    assert!(msg.contains("cell 7"), "cell index missing: {msg}");
    assert_eq!(
        msg.matches("racecheck.rs").count(),
        2,
        "expected both claim sites in: {msg}"
    );
}

#[test]
fn audited_kernels_run_clean_under_chaos() {
    // The production disjoint-write paths, all at once, on a chaos-seeded
    // pool: any unsound decomposition has to trip the registry here.
    let pool = ThreadPoolBuilder::new()
        .num_threads(4)
        .chaos_seed(0xC0FFEE)
        .build()
        .expect("pool builds");
    let mut rng = StdRng::seed_from_u64(17);
    let series: Vec<Vec<f64>> = (0..32)
        .map(|_| (0..80).map(|_| rng.gen_range(-1.0f64..1.0)).collect())
        .collect();
    pool.install(|| {
        let (corr, diss, _stats) = pfg_data::correlation::correlation_and_dissimilarity(&series);
        assert_eq!(corr.n(), 32);

        let mut v: Vec<f64> = (0..30_000)
            .map(|i| ((i * 37) % 1000) as f64 * 0.5)
            .collect();
        v.par_sort_by(|a, b| a.total_cmp(b));
        assert!(v.windows(2).all(|w| w[0] <= w[1]));

        let sim = corr.map(|r| (1.0 + r) / 2.0);
        let result = pfg_core::tmfg(&sim, pfg_core::TmfgConfig::default()).expect("tmfg builds");
        let dgraph = pfg_core::dbht::dissimilarity_graph(&result.graph, &diss);
        let paths = pfg_graph::all_pairs_shortest_paths(&dgraph);
        assert_eq!(paths.n(), 32);
    });
}
