//! Smoke test: the `quickstart` example must run end-to-end successfully.
//!
//! `cargo test` only checks that examples *compile*; this test actually
//! executes one via the same `cargo` binary that is running the test suite
//! (the `CARGO` environment variable), so a clean checkout is known to have
//! a working example before anyone reads the README.

use std::process::Command;

#[test]
fn quickstart_example_runs_successfully() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "--example", "quickstart"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to spawn cargo run --example quickstart");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "quickstart example failed with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    // The example ends by reporting clustering quality; require the marker
    // so a silently truncated run cannot pass.
    assert!(
        stdout.contains("ARI"),
        "quickstart output missing the final quality report:\n{stdout}"
    );
}
