//! Differential tests pinning the parallel DBHT back half.
//!
//! The parallel mutual-nearest-neighbor HAC must produce dendrograms that
//! are *byte-identical* to the sequential NN-chain engine — same merge
//! list, same heights, same cut clusters — on random, clustered and
//! tie-heavy inputs, at every thread-pool size. Likewise, the restricted
//! (demand-driven) APSP must agree with the dense `n²` matrix on every
//! distance the DBHT actually reads: bitwise on intra-group pairs and on
//! source–source pairs, and to floating-point noise on the one-directional
//! source rows.

use par_filtered_graph_clustering::prelude::*;
use pfg_core::dbht::{
    assignment, converging_vertices, dbht_for_tmfg, direction, dissimilarity_graph, hierarchy,
    restricted_distances,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random similarity matrix with continuous off-diagonal entries.
fn random_similarity(n: usize, seed: u64) -> SymmetricMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    SymmetricMatrix::from_fn(n, |i, j| {
        if i == j {
            1.0
        } else {
            rng.gen_range(0.01..0.99)
        }
    })
}

/// Clustered similarity matrix: `k` strong blocks plus mild noise.
fn clustered_similarity(n: usize, k: usize, seed: u64) -> SymmetricMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    SymmetricMatrix::from_fn(n, |i, j| {
        if i == j {
            1.0
        } else if (i % k) == (j % k) {
            0.8 + rng.gen_range(-0.05..0.05)
        } else {
            0.1 + rng.gen_range(-0.05..0.05)
        }
    })
}

/// Tie-heavy similarity matrix: entries quantised to two values, so masses
/// of cluster pairs compare equal on the primary linkage key and the
/// engines must agree through the full tie-breaking cascade.
fn tie_heavy_similarity(n: usize, seed: u64) -> SymmetricMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    SymmetricMatrix::from_fn(n, |i, j| {
        if i == j {
            1.0
        } else if rng.gen_bool(0.5) {
            0.7
        } else {
            0.2
        }
    })
}

fn dissimilarity_of(s: &SymmetricMatrix) -> SymmetricMatrix {
    s.map(|p| (2.0 * (1.0 - p)).sqrt())
}

/// Everything the hierarchy step consumes, precomputed once per matrix.
struct Prepared {
    tmfg: Tmfg,
    bubble_graph: pfg_core::dbht::DirectedBubbleGraph,
    assignment: pfg_core::VertexAssignment,
    distances: DbhtDistances,
    dense: SymmetricMatrix,
    sources: Vec<usize>,
}

fn prepare(s: &SymmetricMatrix, prefix: usize) -> Prepared {
    let d = dissimilarity_of(s);
    let t = tmfg(s, TmfgConfig::with_prefix(prefix)).unwrap();
    let bubble_graph = direction::direct_tmfg_bubble_tree(&t.bubble_tree, &t.graph);
    let dgraph = dissimilarity_graph(&t.graph, &d);
    let sources = converging_vertices(&bubble_graph);
    let rows = shortest_path_rows(&dgraph, &sources);
    let assignment = assignment::assign_vertices(&t.graph, &bubble_graph, &rows);
    let distances = restricted_distances(&dgraph, rows, &assignment);
    let dense = all_pairs_shortest_paths(&dgraph);
    Prepared {
        tmfg: t,
        bubble_graph,
        assignment,
        distances,
        dense,
        sources,
    }
}

/// The matrices the differential suite runs over: random, clustered and
/// tie-heavy, with both sequential and batched TMFG construction.
fn suite_inputs() -> Vec<(String, SymmetricMatrix, usize)> {
    let mut inputs = Vec::new();
    for seed in [1u64, 2, 3] {
        inputs.push((format!("random-{seed}"), random_similarity(48, seed), 1));
        inputs.push((
            format!("random-batched-{seed}"),
            random_similarity(48, seed + 10),
            8,
        ));
    }
    inputs.push(("clustered".into(), clustered_similarity(60, 3, 7), 5));
    inputs.push(("tie-heavy".into(), tie_heavy_similarity(40, 11), 1));
    inputs
}

// ---------------------------------------------------------------------------
// Tentpole differential: parallel HAC == NN-chain, at every pool size.
// ---------------------------------------------------------------------------

#[test]
fn parallel_hac_dendrogram_equals_nn_chain_at_every_pool_size() {
    for (name, s, prefix) in suite_inputs() {
        let p = prepare(&s, prefix);
        let (reference, chain_stats) = hierarchy::build_hierarchy_with(
            &p.bubble_graph,
            &p.assignment,
            &p.distances,
            HacBackend::NnChain,
        );
        // The chain merges one pair at a time by construction.
        assert_eq!(chain_stats.max_round_merges, 1, "{name}");

        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (parallel, stats) = pool.install(|| {
                hierarchy::build_hierarchy_with(
                    &p.bubble_graph,
                    &p.assignment,
                    &p.distances,
                    HacBackend::ParallelRounds,
                )
            });
            // Byte-identical dendrogram: same merge list, same heights.
            assert_eq!(parallel, reference, "{name} at {threads} threads");
            // Same amount of work, possibly fewer rounds.
            assert_eq!(stats.merges, chain_stats.merges, "{name}");
            assert!(stats.rounds <= chain_stats.rounds, "{name}");
            // Same clusters at every cut that the pipeline exposes.
            for k in [2usize, 3, 5] {
                assert_eq!(
                    parallel.cut_to_clusters(k),
                    reference.cut_to_clusters(k),
                    "{name} cut {k}"
                );
            }
        }
    }
}

#[test]
fn full_dbht_is_byte_identical_across_thread_counts() {
    let s = clustered_similarity(60, 3, 19);
    let d = dissimilarity_of(&s);
    let t = tmfg(&s, TmfgConfig::with_prefix(5)).unwrap();
    let reference = dbht_for_tmfg(&t, &d).unwrap();
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let run = pool.install(|| dbht_for_tmfg(&t, &d).unwrap());
        assert_eq!(run.dendrogram, reference.dendrogram, "{threads} threads");
        assert_eq!(run.assignment.group, reference.assignment.group);
        assert_eq!(run.assignment.bubble, reference.assignment.bubble);
        assert_eq!(run.stats, reference.stats);
    }
}

// ---------------------------------------------------------------------------
// Tentpole differential: restricted APSP == full APSP on every distance
// the DBHT reads.
// ---------------------------------------------------------------------------

#[test]
fn restricted_apsp_matches_full_apsp_on_every_distance_dbht_reads() {
    for (name, s, prefix) in suite_inputs() {
        let p = prepare(&s, prefix);
        let n = s.n();

        // Intra-group pairs (hierarchy levels 1–2): bitwise equal.
        for members in p.assignment.group_members() {
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    let restricted = p.distances.pair(u, v);
                    let full = p.dense.get(u, v);
                    assert_eq!(
                        restricted.to_bits(),
                        full.to_bits(),
                        "{name}: intra-group pair ({u}, {v})"
                    );
                }
            }
        }

        // Source–source pairs (hierarchy level 3): bitwise equal, because
        // both stores symmetrise the two directed runs the same way.
        for (i, &a) in p.sources.iter().enumerate() {
            for &b in &p.sources[i + 1..] {
                assert_eq!(
                    p.distances.rows.pair(a, b).to_bits(),
                    p.dense.get(a, b).to_bits(),
                    "{name}: source pair ({a}, {b})"
                );
            }
        }

        // Source × non-source rows (vertex assignment): one-directional in
        // the restricted store, so only equal up to symmetrisation noise.
        for &a in &p.sources {
            for v in 0..n {
                let restricted = p.distances.rows.pair(a, v);
                let full = p.dense.get(a, v);
                assert!(
                    (restricted - full).abs() <= 1e-9 * full.max(1.0),
                    "{name}: row pair ({a}, {v}): {restricted} vs {full}"
                );
            }
        }
    }
}

#[test]
fn hierarchy_from_restricted_distances_equals_hierarchy_from_full_apsp() {
    for (name, s, prefix) in suite_inputs() {
        let p = prepare(&s, prefix);
        for backend in [HacBackend::ParallelRounds, HacBackend::NnChain] {
            let (restricted, _) = hierarchy::build_hierarchy_with(
                &p.bubble_graph,
                &p.assignment,
                &p.distances,
                backend,
            );
            let (full, _) =
                hierarchy::build_hierarchy_with(&p.bubble_graph, &p.assignment, &p.dense, backend);
            assert_eq!(restricted, full, "{name} with {backend:?}");
        }
    }
}

#[test]
fn assignment_from_restricted_rows_equals_assignment_from_full_apsp() {
    for (name, s, prefix) in suite_inputs() {
        let p = prepare(&s, prefix);
        let from_full = assignment::assign_vertices(&p.tmfg.graph, &p.bubble_graph, &p.dense);
        assert_eq!(p.assignment.group, from_full.group, "{name}");
        assert_eq!(p.assignment.bubble, from_full.bubble, "{name}");
    }
}

#[test]
fn restricted_apsp_computes_fewer_than_half_the_pairs_on_clustered_input() {
    let s = clustered_similarity(120, 3, 23);
    let d = dissimilarity_of(&s);
    let t = tmfg(&s, TmfgConfig::with_prefix(5)).unwrap();
    let dbht = dbht_for_tmfg(&t, &d).unwrap();
    let fraction = dbht.stats.restricted_fraction();
    assert!(
        fraction < 0.5,
        "restricted APSP computed {:.3} of the dense output",
        fraction
    );
    assert!(dbht.stats.apsp_pairs_computed > 0);
    assert_eq!(dbht.stats.apsp_pairs_full, 120 * 120);
}

// ---------------------------------------------------------------------------
// Property tests of the parallel engine.
// ---------------------------------------------------------------------------

#[test]
fn dendrogram_heights_are_monotone_non_decreasing() {
    for (name, s, prefix) in suite_inputs() {
        let p = prepare(&s, prefix);
        let (dendrogram, _) = hierarchy::build_hierarchy_with(
            &p.bubble_graph,
            &p.assignment,
            &p.distances,
            HacBackend::ParallelRounds,
        );
        assert!(dendrogram.is_monotone(), "{name}");
        assert_eq!(dendrogram.num_leaves(), s.n(), "{name}");
        assert!(dendrogram.root().is_some(), "{name}");
    }
}

#[test]
fn mutual_nn_rounds_merge_disjoint_pairs() {
    for (name, s, prefix) in suite_inputs() {
        let p = prepare(&s, prefix);
        let (_, stats) = hierarchy::build_hierarchy_with(
            &p.bubble_graph,
            &p.assignment,
            &p.distances,
            HacBackend::ParallelRounds,
        );
        // Each merge of a round consumes two distinct clusters, so if the
        // round's pairs were not disjoint this bound would be violated.
        assert!(2 * stats.max_round_merges <= s.n(), "{name}");
        assert!(stats.rounds >= 1, "{name}");
        assert!(stats.rounds <= stats.merges, "{name}");
    }
}

#[test]
fn all_equal_weights_yield_one_canonical_dendrogram() {
    // Every off-diagonal similarity identical: every linkage comparison
    // falls through the (max, mean) keys to the member-id tie-break, so
    // this is the worst case for engine divergence. All engines and all
    // pool sizes must produce the exact same canonical dendrogram.
    let s = SymmetricMatrix::from_fn(24, |i, j| if i == j { 1.0 } else { 0.5 });
    let p = prepare(&s, 1);
    let (reference, _) = hierarchy::build_hierarchy_with(
        &p.bubble_graph,
        &p.assignment,
        &p.distances,
        HacBackend::NnChain,
    );
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let (parallel, _) = pool.install(|| {
            hierarchy::build_hierarchy_with(
                &p.bubble_graph,
                &p.assignment,
                &p.distances,
                HacBackend::ParallelRounds,
            )
        });
        assert_eq!(parallel, reference, "{threads} threads");
    }
}
