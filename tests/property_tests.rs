//! Randomized property tests over the core data structures and algorithms:
//! structural invariants of TMFGs and bubble trees, metric properties of
//! ARI/AMI, and dendrogram well-formedness, on randomly generated inputs.
//!
//! Originally written against `proptest`; the offline build has no access
//! to crates.io, so the same properties are exercised with hand-rolled
//! generators over a seeded [`StdRng`] (fixed seeds, 24 cases per property,
//! no shrinking). Each case reports its parameters on failure so it can be
//! reproduced by seed.

use par_filtered_graph_clustering::prelude::*;
use pfg_core::dbht::direction::direct_tmfg_bubble_tree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

/// A random symmetric similarity matrix with off-diagonal entries in
/// (0.01, 0.99) and a unit diagonal.
fn similarity_matrix(rng: &mut StdRng, min_n: usize, max_n: usize) -> SymmetricMatrix {
    let n = rng.gen_range(min_n..=max_n);
    let entries = n * (n - 1) / 2;
    let upper: Vec<f64> = (0..entries).map(|_| rng.gen_range(0.01f64..0.99)).collect();
    let mut iter = upper.into_iter();
    SymmetricMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { iter.next().unwrap() })
}

/// A pair of random label vectors of equal length with up to 5 classes.
fn label_pairs(rng: &mut StdRng) -> (Vec<usize>, Vec<usize>) {
    let n = rng.gen_range(2usize..60);
    let truth = (0..n).map(|_| rng.gen_range(0usize..5)).collect();
    let predicted = (0..n).map(|_| rng.gen_range(0usize..5)).collect();
    (truth, predicted)
}

/// Every TMFG is a connected maximal planar graph with 3n − 6 edges and
/// a bubble tree with n − 3 nodes, for any prefix size.
#[test]
fn tmfg_structural_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7100 + case);
        let s = similarity_matrix(&mut rng, 5, 28);
        let prefix = rng.gen_range(1usize..12);
        let n = s.n();
        let result = tmfg(&s, TmfgConfig::with_prefix(prefix)).unwrap();
        let ctx = format!("case {case}: n={n}, prefix={prefix}");
        assert_eq!(result.graph.num_edges(), 3 * n - 6, "{ctx}");
        assert!(result.graph.is_connected(), "{ctx}");
        assert!(pfg_graph::is_planar(&result.graph), "{ctx}");
        assert_eq!(result.bubble_tree.len(), n - 3, "{ctx}");
        assert!(result.bubble_tree.check_invariants().is_ok(), "{ctx}");
        // Edge weights are exactly the similarities.
        for (u, v, w) in result.graph.edges() {
            assert!((w - s.get(u, v)).abs() < 1e-12, "{ctx}: edge ({u}, {v})");
        }
    }
}

/// The batched TMFG is not guaranteed to retain more total edge weight than
/// the sequential TMFG, but it must stay within a sane band of it, and the
/// directed bubble graph must always have at least one converging bubble.
#[test]
fn prefix_tmfg_weight_and_direction_sanity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7200 + case);
        let s = similarity_matrix(&mut rng, 8, 24);
        let prefix = rng.gen_range(2usize..10);
        let ctx = format!("case {case}: n={}, prefix={prefix}", s.n());
        let sequential = tmfg(&s, TmfgConfig::with_prefix(1)).unwrap();
        let batched = tmfg(&s, TmfgConfig::with_prefix(prefix)).unwrap();
        let ratio = batched.edge_weight_sum() / sequential.edge_weight_sum();
        assert!(ratio > 0.5 && ratio < 1.5, "{ctx}: ratio {ratio}");
        let directed = direct_tmfg_bubble_tree(&batched.bubble_tree, &batched.graph);
        assert!(directed.check_invariants().is_ok(), "{ctx}");
        assert!(!directed.converging_bubbles().is_empty(), "{ctx}");
    }
}

/// The DBHT dendrogram is always complete (covers all vertices), monotone,
/// and cutting it to k clusters yields at most k labels.
#[test]
fn dbht_dendrogram_wellformed() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7300 + case);
        let s = similarity_matrix(&mut rng, 8, 22);
        let prefix = rng.gen_range(1usize..6);
        let k = rng.gen_range(1usize..6);
        let ctx = format!("case {case}: n={}, prefix={prefix}, k={k}", s.n());
        let d = s.map(|p| (2.0 * (1.0 - p)).sqrt());
        let result = ParTdbht::with_prefix(prefix).run(&s, &d).unwrap();
        let dend = &result.dendrogram;
        assert_eq!(dend.num_leaves(), s.n(), "{ctx}");
        assert!(dend.root().is_some(), "{ctx}");
        assert!(dend.is_monotone(), "{ctx}");
        let labels = result.clusters(k);
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= k.max(1), "{ctx}");
        assert_eq!(labels.len(), s.n(), "{ctx}");
    }
}

/// ARI and AMI are symmetric, bounded above by 1, and exactly 1 on
/// identical labelings (up to renaming).
#[test]
fn metric_properties() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7400 + case);
        let (truth, predicted) = label_pairs(&mut rng);
        let ctx = format!("case {case}: n={}", truth.len());
        let ari = adjusted_rand_index(&truth, &predicted);
        let ari_swapped = adjusted_rand_index(&predicted, &truth);
        assert!((ari - ari_swapped).abs() < 1e-9, "{ctx}");
        assert!(ari <= 1.0 + 1e-9, "{ctx}");
        let ami = adjusted_mutual_information(&truth, &predicted);
        assert!(
            (ami - adjusted_mutual_information(&predicted, &truth)).abs() < 1e-9,
            "{ctx}"
        );
        assert!(ami <= 1.0 + 1e-6, "{ctx}");
        // Renaming labels never changes the scores.
        let renamed: Vec<usize> = predicted.iter().map(|&l| l + 17).collect();
        assert!(
            (adjusted_rand_index(&truth, &renamed) - ari).abs() < 1e-12,
            "{ctx}"
        );
        // Self-comparison is perfect.
        assert!(
            (adjusted_rand_index(&truth, &truth) - 1.0).abs() < 1e-12,
            "{ctx}"
        );
    }
}

/// HAC dendrograms under any linkage are complete and monotone, and
/// cutting them produces the requested number of clusters when possible.
#[test]
fn hac_dendrogram_wellformed() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7500 + case);
        let s = similarity_matrix(&mut rng, 4, 30);
        let k = rng.gen_range(1usize..5);
        let ctx = format!("case {case}: n={}, k={k}", s.n());
        let d = s.map(|p| (2.0 * (1.0 - p)).sqrt());
        for linkage in [Linkage::Complete, Linkage::Average, Linkage::Single] {
            let dend = hac(&d, linkage);
            assert!(dend.root().is_some(), "{ctx}, linkage {linkage:?}");
            assert!(dend.is_monotone(), "{ctx}, linkage {linkage:?}");
            let labels = dend.cut_to_clusters(k);
            let mut distinct = labels;
            distinct.sort_unstable();
            distinct.dedup();
            assert_eq!(distinct.len(), k.min(s.n()), "{ctx}, linkage {linkage:?}");
        }
    }
}

/// PMFG structural invariants on small random inputs, for both the
/// round-based parallel builder and the sequential baseline.
#[test]
fn pmfg_structural_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7600 + case);
        let s = similarity_matrix(&mut rng, 5, 12);
        let n = s.n();
        let ctx = format!("case {case}: n={n}");
        let result = pmfg(&s).unwrap();
        assert_eq!(result.graph.num_edges(), 3 * n - 6, "{ctx}");
        assert!(pfg_graph::is_planar(&result.graph), "{ctx}");
        assert!(result.graph.is_connected(), "{ctx}");
        let sequential = pmfg_sequential(&s).unwrap();
        assert_eq!(sequential.graph.num_edges(), 3 * n - 6, "{ctx}");
    }
}

/// A random block-structured similarity matrix: `blocks` clusters with
/// high in-cluster and low cross-cluster similarity plus jitter, the
/// regime where PMFG rejections concentrate early (cluster-internal
/// candidates saturate faces fast).
fn clustered_matrix(
    rng: &mut StdRng,
    min_n: usize,
    max_n: usize,
    blocks: usize,
) -> SymmetricMatrix {
    let n = rng.gen_range(min_n..=max_n);
    let entries = n * (n - 1) / 2;
    let jitter: Vec<f64> = (0..entries).map(|_| rng.gen_range(0.0f64..0.15)).collect();
    let mut iter = jitter.into_iter();
    SymmetricMatrix::from_fn(n, |i, j| {
        if i == j {
            1.0
        } else {
            let base = if i % blocks == j % blocks { 0.7 } else { 0.1 };
            base + iter.next().unwrap()
        }
    })
}

/// The round-based parallel PMFG must produce the exact sequential edge
/// set — weights, order, everything — at every worker count, and its
/// speculative counters must not depend on the worker count either, on
/// random and clustered matrices.
#[test]
fn pmfg_parallel_matches_sequential_across_thread_counts() {
    for case in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x7700 + case);
        let s = if case % 2 == 0 {
            similarity_matrix(&mut rng, 20, 40)
        } else {
            clustered_matrix(&mut rng, 20, 40, 4)
        };
        let ctx = format!("case {case}: n={}", s.n());
        let sequential = pmfg_sequential(&s).unwrap();
        let seq_edges: Vec<_> = sequential.graph.edges().collect();
        let mut counters: Option<(usize, usize, usize)> = None;
        for threads in [1usize, 2, 8] {
            let parallel = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| pmfg(&s).unwrap());
            let par_edges: Vec<_> = parallel.graph.edges().collect();
            assert_eq!(seq_edges, par_edges, "{ctx}, {threads} threads");
            let these = (
                parallel.rounds,
                parallel.candidates_examined,
                parallel.parallel_rejections,
            );
            match counters {
                None => counters = Some(these),
                Some(first) => assert_eq!(first, these, "{ctx}, {threads} threads"),
            }
        }
    }
}

/// Random TMFG-style triangulations (grow K4 by inserting each vertex
/// into a random face) are maximal planar: the LR core must accept them
/// and reject every additional edge — with one scratch reused across all
/// differently-shaped cases.
#[test]
fn random_triangulations_are_planar_and_maximal() {
    let mut scratch = LrScratch::new();
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7800 + case);
        let n = rng.gen_range(5usize..60);
        let mut g = WeightedGraph::new(n);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v, 1.0);
            }
        }
        let mut faces = vec![(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)];
        for v in 4..n {
            let pos = rng.gen_range(0..faces.len());
            let (a, b, c) = faces.swap_remove(pos);
            g.add_edge(v, a, 1.0);
            g.add_edge(v, b, 1.0);
            g.add_edge(v, c, 1.0);
            faces.push((v, a, b));
            faces.push((v, b, c));
            faces.push((v, a, c));
        }
        let ctx = format!("case {case}: n={n}");
        assert_eq!(g.num_edges(), 3 * n - 6, "{ctx}");
        assert!(scratch.is_planar(&g), "{ctx}");
        // Sample a handful of absent edges; none may be addable.
        let mut checked = 0;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                if !g.has_edge(u, v) {
                    assert!(
                        !scratch.stays_planar_with_edge(&g, u, v),
                        "{ctx}: ({u},{v})"
                    );
                    checked += 1;
                    if checked >= 8 {
                        break 'outer;
                    }
                }
            }
        }
    }
}

/// Kuratowski subdivisions keep their non-planarity through the shared
/// scratch, interleaved with planar graphs of different shapes (exercises
/// scratch reuse across sizes in both directions).
#[test]
fn scratch_reuse_rejects_kuratowski_subdivisions() {
    let mut scratch = LrScratch::new();
    let subdivide = |g: &WeightedGraph| {
        let n = g.num_vertices();
        let mut out = WeightedGraph::new(n + g.num_edges());
        for (next, (u, v, w)) in (n..).zip(g.edges()) {
            out.add_edge(u, next, w);
            out.add_edge(next, v, w);
        }
        out
    };
    let mut k5 = WeightedGraph::new(5);
    for u in 0..5 {
        for v in (u + 1)..5 {
            k5.add_edge(u, v, 1.0);
        }
    }
    let mut k33 = WeightedGraph::new(6);
    for u in 0..3 {
        for v in 0..3 {
            k33.add_edge(u, 3 + v, 1.0);
        }
    }
    let mut big_planar = WeightedGraph::new(400);
    for i in 0..399 {
        big_planar.add_edge(i, i + 1, 1.0);
    }
    for _ in 0..3 {
        assert!(!scratch.is_planar(&subdivide(&k5)));
        assert!(scratch.is_planar(&big_planar));
        assert!(!scratch.is_planar(&subdivide(&k33)));
        assert!(scratch.is_planar(&WeightedGraph::new(2)));
        assert!(!scratch.is_planar(&subdivide(&subdivide(&k5))));
    }
}
