//! Property-based tests over the core data structures and algorithms:
//! structural invariants of TMFGs and bubble trees, metric properties of
//! ARI/AMI, and dendrogram well-formedness, on randomly generated inputs.

use par_filtered_graph_clustering::prelude::*;
use pfg_core::dbht::direction::direct_tmfg_bubble_tree;
use proptest::prelude::*;

/// Strategy: a random symmetric similarity matrix with entries in (0, 1).
fn similarity_matrix(min_n: usize, max_n: usize) -> impl Strategy<Value = SymmetricMatrix> {
    (min_n..=max_n)
        .prop_flat_map(|n| {
            let entries = n * (n - 1) / 2;
            (
                Just(n),
                proptest::collection::vec(0.01f64..0.99, entries),
            )
        })
        .prop_map(|(n, upper)| {
            let mut iter = upper.into_iter();
            SymmetricMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { iter.next().unwrap() })
        })
}

/// Strategy: a pair of random label vectors of equal length.
fn label_pairs() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (2usize..60).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..5, n),
            proptest::collection::vec(0usize..5, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every TMFG is a connected maximal planar graph with 3n − 6 edges and
    /// a bubble tree with n − 3 nodes, for any prefix size.
    #[test]
    fn tmfg_structural_invariants(s in similarity_matrix(5, 28), prefix in 1usize..12) {
        let result = tmfg(&s, TmfgConfig::with_prefix(prefix)).unwrap();
        let n = s.n();
        prop_assert_eq!(result.graph.num_edges(), 3 * n - 6);
        prop_assert!(result.graph.is_connected());
        prop_assert!(pfg_graph::is_planar(&result.graph));
        prop_assert_eq!(result.bubble_tree.len(), n - 3);
        prop_assert!(result.bubble_tree.check_invariants().is_ok());
        // Edge weights are exactly the similarities.
        for (u, v, w) in result.graph.edges() {
            prop_assert!((w - s.get(u, v)).abs() < 1e-12);
        }
    }

    /// The batched TMFG never retains more total edge weight than ... is not
    /// guaranteed, but it must stay within a sane band of the sequential
    /// TMFG, and the directed bubble graph must always have at least one
    /// converging bubble.
    #[test]
    fn prefix_tmfg_weight_and_direction_sanity(s in similarity_matrix(8, 24), prefix in 2usize..10) {
        let sequential = tmfg(&s, TmfgConfig::with_prefix(1)).unwrap();
        let batched = tmfg(&s, TmfgConfig::with_prefix(prefix)).unwrap();
        let ratio = batched.edge_weight_sum() / sequential.edge_weight_sum();
        prop_assert!(ratio > 0.5 && ratio < 1.5, "ratio {}", ratio);
        let directed = direct_tmfg_bubble_tree(&batched.bubble_tree, &batched.graph);
        prop_assert!(directed.check_invariants().is_ok());
        prop_assert!(!directed.converging_bubbles().is_empty());
    }

    /// The DBHT dendrogram is always complete (covers all vertices),
    /// monotone, and cutting it to k clusters yields at most k labels.
    #[test]
    fn dbht_dendrogram_wellformed(s in similarity_matrix(8, 22), prefix in 1usize..6, k in 1usize..6) {
        let d = s.map(|p| (2.0 * (1.0 - p)).sqrt());
        let result = ParTdbht::with_prefix(prefix).run(&s, &d).unwrap();
        let dend = &result.dendrogram;
        prop_assert_eq!(dend.num_leaves(), s.n());
        prop_assert!(dend.root().is_some());
        prop_assert!(dend.is_monotone());
        let labels = result.clusters(k);
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(distinct.len() <= k.max(1));
        prop_assert_eq!(labels.len(), s.n());
    }

    /// ARI and AMI are symmetric, bounded above by 1, and exactly 1 on
    /// identical labelings (up to renaming).
    #[test]
    fn metric_properties((truth, predicted) in label_pairs()) {
        let ari = adjusted_rand_index(&truth, &predicted);
        let ari_swapped = adjusted_rand_index(&predicted, &truth);
        prop_assert!((ari - ari_swapped).abs() < 1e-9);
        prop_assert!(ari <= 1.0 + 1e-9);
        let ami = adjusted_mutual_information(&truth, &predicted);
        prop_assert!((ami - adjusted_mutual_information(&predicted, &truth)).abs() < 1e-9);
        prop_assert!(ami <= 1.0 + 1e-6);
        // Renaming labels never changes the scores.
        let renamed: Vec<usize> = predicted.iter().map(|&l| l + 17).collect();
        prop_assert!((adjusted_rand_index(&truth, &renamed) - ari).abs() < 1e-12);
        // Self-comparison is perfect.
        prop_assert!((adjusted_rand_index(&truth, &truth) - 1.0).abs() < 1e-12);
    }

    /// HAC dendrograms under any linkage are complete and monotone, and
    /// cutting them produces the requested number of clusters when possible.
    #[test]
    fn hac_dendrogram_wellformed(s in similarity_matrix(4, 30), k in 1usize..5) {
        let d = s.map(|p| (2.0 * (1.0 - p)).sqrt());
        for linkage in [Linkage::Complete, Linkage::Average, Linkage::Single] {
            let dend = hac(&d, linkage);
            prop_assert!(dend.root().is_some());
            prop_assert!(dend.is_monotone());
            let labels = dend.cut_to_clusters(k);
            let mut distinct = labels;
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), k.min(s.n()));
        }
    }

    /// PMFG structural invariants on small random inputs (kept small because
    /// each candidate edge runs a planarity test).
    #[test]
    fn pmfg_structural_invariants(s in similarity_matrix(5, 12)) {
        let result = pmfg(&s).unwrap();
        let n = s.n();
        prop_assert_eq!(result.graph.num_edges(), 3 * n - 6);
        prop_assert!(pfg_graph::is_planar(&result.graph));
        prop_assert!(result.graph.is_connected());
    }
}
