//! Byte-identity under adversarial steal orders.
//!
//! The executor shim's chaos mode (`ThreadPoolBuilder::chaos_seed`)
//! permutes each steal's victim scan and injects yields, exercising
//! schedules an idle machine never produces. The workspace's determinism
//! contract says scheduling must be *invisible*: decomposition is a
//! function of input length alone, so every seed × thread-count
//! combination must reproduce the single-threaded result bit for bit —
//! for the most order-sensitive primitives (float reduction), the
//! parallel sort, and the full tiled correlation/dissimilarity kernels.

use pfg_data::correlation::{correlation_matrix_with, TileConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

const CHAOS_SEEDS: [u64; 3] = [1, 2, 3];
const THREADS: [usize; 2] = [2, 8];

fn chaos_pool(threads: usize, seed: u64) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .chaos_seed(seed)
        .build()
        .expect("pool builds")
}

fn reference_pool() -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool builds")
}

/// Runs `op` on the reference pool and on every seed × thread-count chaos
/// pool, asserting all results equal via `eq` (callers pass bit-level
/// comparisons for floats).
fn assert_schedule_invariant<R>(op: impl Fn() -> R, eq: impl Fn(&R, &R) -> bool) {
    let reference = reference_pool().install(&op);
    for threads in THREADS {
        for seed in CHAOS_SEEDS {
            let got = chaos_pool(threads, seed).install(&op);
            assert!(
                eq(&got, &reference),
                "result diverged under chaos seed {seed} at {threads} threads"
            );
        }
    }
}

#[test]
fn float_reduction_is_schedule_invariant() {
    let v: Vec<f64> = (0..50_000).map(|i| (i as f64 * 0.37).sin()).collect();
    assert_schedule_invariant(
        || {
            v.par_iter()
                .map(|&x| x * 1.000001 + 0.25)
                .fold(|| 0.0f64, |acc, x| acc + x)
                .reduce(|| 0.0f64, |a, b| a + b)
        },
        |a, b| a.to_bits() == b.to_bits(),
    );
}

#[test]
fn parallel_sort_is_schedule_invariant() {
    let mut rng = StdRng::seed_from_u64(7);
    let base: Vec<f64> = (0..40_000).map(|_| rng.gen_range(-1.0f64..1.0)).collect();
    assert_schedule_invariant(
        || {
            let mut v = base.clone();
            v.par_sort_by(|a, b| a.total_cmp(b));
            v
        },
        |a, b| {
            a.len() == b.len()
                && a.iter()
                    .zip(b.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        },
    );
}

#[test]
fn tiled_correlation_is_schedule_invariant() {
    let mut rng = StdRng::seed_from_u64(11);
    let series: Vec<Vec<f64>> = (0..48)
        .map(|_| (0..96).map(|_| rng.gen_range(-1.0f64..1.0)).collect())
        .collect();
    let config = TileConfig { tile: 8 };
    assert_schedule_invariant(
        || correlation_matrix_with(&series, config).0,
        |a, b| {
            a.n() == b.n()
                && a.as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        },
    );
}

#[test]
fn fine_grained_steal_storm_is_schedule_invariant() {
    // `with_max_len(1)` turns every item into its own job, flooding the
    // owner's Chase–Lev deque and maximising thief CAS traffic on its top
    // pointer — the schedule-space stress for the lock-free deque's
    // owner/thief race window (last-element CAS, speculative cell reads,
    // buffer growth mid-storm). The fold tree is a function of input
    // length only, so the bit-exact sum must survive every steal order.
    let v: Vec<f64> = (0..4_096).map(|i| (i as f64 * 0.61).cos()).collect();
    assert_schedule_invariant(
        || {
            v.par_iter()
                .with_max_len(1)
                .map(|&x| x * 1.000001 + 0.25)
                .fold(|| 0.0f64, |acc, x| acc + x)
                .reduce(|| 0.0f64, |a, b| a + b)
        },
        |a, b| a.to_bits() == b.to_bits(),
    );
}

#[test]
fn pmfg_construction_is_schedule_invariant() {
    // End-to-end PMFG under chaos: the speculative round tests run on the
    // pool (and are reordered by the chaos schedule), but the
    // conflict-graph commit replays survivors in candidate order on the
    // calling thread, so edges, rounds and every counter — including the
    // commit re-test count — must be byte-identical to the 1-thread run.
    let mut rng = StdRng::seed_from_u64(23);
    let n = 60;
    let s = pfg_graph::SymmetricMatrix::from_fn(n, |i, j| {
        if i == j {
            1.0
        } else {
            rng.gen_range(0.0f64..1.0)
        }
    });
    assert_schedule_invariant(
        || pfg_core::pmfg(&s).expect("pmfg builds"),
        |a, b| {
            let a_edges: Vec<_> = a.graph.edges().collect();
            let b_edges: Vec<_> = b.graph.edges().collect();
            a_edges.len() == b_edges.len()
                && a_edges
                    .iter()
                    .zip(&b_edges)
                    .all(|((u1, v1, w1), (u2, v2, w2))| {
                        u1 == u2 && v1 == v2 && w1.to_bits() == w2.to_bits()
                    })
                && a.rounds == b.rounds
                && a.rejections == b.rejections
                && a.parallel_rejections == b.parallel_rejections
                && a.commit_retests == b.commit_retests
        },
    );
}

#[test]
fn dissimilarity_pipeline_input_is_schedule_invariant() {
    let mut rng = StdRng::seed_from_u64(13);
    let series: Vec<Vec<f64>> = (0..40)
        .map(|_| (0..64).map(|_| rng.gen_range(-1.0f64..1.0)).collect())
        .collect();
    assert_schedule_invariant(
        || pfg_data::correlation::dissimilarity_matrix(&series),
        |a, b| {
            a.n() == b.n()
                && a.as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        },
    );
}
