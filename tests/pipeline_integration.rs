//! Cross-crate integration tests: data generation → correlation →
//! filtered graphs → DBHT → evaluation, plus baseline comparisons.

use par_filtered_graph_clustering::prelude::*;
use pfg_baselines::kmeans::Seeding;

/// A small but realistic labeled data set shared by the tests.
fn small_dataset(seed: u64) -> (TimeSeriesDataset, SymmetricMatrix, SymmetricMatrix) {
    let config = TimeSeriesConfig {
        num_series: 120,
        length: 96,
        num_classes: 4,
        noise: 0.35,
        seed,
    };
    let dataset = TimeSeriesDataset::generate("integration", &config);
    let correlation = correlation_matrix(&dataset.series);
    let dissimilarity = dissimilarity_from_correlation(&correlation);
    (dataset, correlation, dissimilarity)
}

#[test]
fn full_pipeline_beats_random_clustering_comfortably() {
    let (dataset, correlation, dissimilarity) = small_dataset(3);
    let k = dataset.num_classes();
    for prefix in [1, 10] {
        let result = ParTdbht::with_prefix(prefix)
            .run(&correlation, &dissimilarity)
            .unwrap();
        let labels = result.clusters(k);
        let ari = adjusted_rand_index(&dataset.labels, &labels);
        // Measured ARI is 1.0 at both prefixes with the conflict-aware
        // selector and intra-round placement; the bar leaves headroom for
        // benign churn while staying far above chance.
        assert!(ari > 0.9, "prefix {prefix}: ARI {ari}");
    }
}

#[test]
fn tmfg_dbht_tracks_or_beats_linkage_baselines() {
    // The paper's headline quality claim (Figures 1 and 8): TMFG+DBHT
    // produces clusters at least comparable to complete/average linkage.
    // A single synthetic data set is noisy — especially at n = 120, where a
    // prefix-10 batch is a large fraction of a round — so the comparison is
    // averaged over several seeds. With the conflict-aware selector and
    // intra-round batch placement the measured means are DBHT 0.9415
    // against COMP 0.4605 and AVG 0.8161, so the bar requires DBHT to beat
    // the *better* baseline outright (it previously allowed DBHT to trail
    // the worse one by 0.1).
    let seeds = [1u64, 3, 5, 7];
    let mut dbht_total = 0.0;
    let mut comp_total = 0.0;
    let mut avg_total = 0.0;
    for &seed in &seeds {
        let (dataset, correlation, dissimilarity) = small_dataset(seed);
        let k = dataset.num_classes();
        let dbht_labels = ParTdbht::with_prefix(10)
            .run(&correlation, &dissimilarity)
            .unwrap()
            .clusters(k);
        dbht_total += adjusted_rand_index(&dataset.labels, &dbht_labels);
        comp_total += adjusted_rand_index(
            &dataset.labels,
            &hac(&dissimilarity, Linkage::Complete).cut_to_clusters(k),
        );
        avg_total += adjusted_rand_index(
            &dataset.labels,
            &hac(&dissimilarity, Linkage::Average).cut_to_clusters(k),
        );
    }
    let n = seeds.len() as f64;
    let (dbht_ari, comp_ari, avg_ari) = (dbht_total / n, comp_total / n, avg_total / n);
    assert!(
        dbht_ari > comp_ari.max(avg_ari),
        "mean over {} seeds: DBHT {dbht_ari} vs COMP {comp_ari} / AVG {avg_ari}",
        seeds.len()
    );
}

#[test]
fn pmfg_and_tmfg_agree_on_quality_and_weight() {
    // Figure 7: the TMFG keeps almost the same total edge weight as the
    // PMFG, and DBHT on either gives similar clusters.
    let config = TimeSeriesConfig {
        num_series: 60,
        length: 96,
        num_classes: 3,
        noise: 0.3,
        seed: 5,
    };
    let dataset = TimeSeriesDataset::generate("pmfg", &config);
    let correlation = correlation_matrix(&dataset.series);
    let dissimilarity = dissimilarity_from_correlation(&correlation);
    let k = dataset.num_classes();

    let tmfg_result = tmfg(&correlation, TmfgConfig::with_prefix(1)).unwrap();
    let pmfg_result = pmfg(&correlation).unwrap();
    let ratio = tmfg_result.edge_weight_sum() / pmfg_result.edge_weight_sum();
    assert!(ratio > 0.9 && ratio < 1.05, "edge-sum ratio {ratio}");

    let tmfg_labels = dbht_for_tmfg(&tmfg_result, &dissimilarity)
        .unwrap()
        .dendrogram
        .cut_to_clusters(k);
    let pmfg_labels = dbht_for_planar_graph(&pmfg_result.graph, &dissimilarity)
        .unwrap()
        .dendrogram
        .cut_to_clusters(k);
    let tmfg_ari = adjusted_rand_index(&dataset.labels, &tmfg_labels);
    let pmfg_ari = adjusted_rand_index(&dataset.labels, &pmfg_labels);
    assert!(tmfg_ari > 0.2, "TMFG+DBHT ARI {tmfg_ari}");
    assert!(pmfg_ari > 0.2, "PMFG+DBHT ARI {pmfg_ari}");
}

#[test]
fn kmeans_baseline_runs_on_raw_series() {
    let (dataset, _, _) = small_dataset(7);
    let k = dataset.num_classes();
    let result = kmeans(
        &dataset.series,
        &KMeansConfig {
            k,
            seeding: Seeding::Scalable,
            seed: 1,
            ..KMeansConfig::default()
        },
    );
    let ari = adjusted_rand_index(&dataset.labels, &result.labels);
    assert!(ari > 0.2, "k-means ARI {ari}");
}

#[test]
fn spectral_embedding_feeds_kmeans() {
    let (dataset, _, _) = small_dataset(9);
    let k = dataset.num_classes();
    let embedded = spectral_embedding(
        &dataset.series,
        &SpectralConfig {
            neighbors: 15,
            dimensions: k,
            iterations: 150,
            seed: 2,
        },
    );
    let result = kmeans(
        &embedded,
        &KMeansConfig {
            k,
            seed: 2,
            ..KMeansConfig::default()
        },
    );
    let ari = adjusted_rand_index(&dataset.labels, &result.labels);
    assert!(ari > 0.2, "k-means-s ARI {ari}");
}

#[test]
fn stock_market_clusters_align_with_sectors() {
    let market = StockMarket::generate(&StockMarketConfig {
        num_stocks: 220,
        num_days: 300,
        ..StockMarketConfig::default()
    });
    let correlation = correlation_matrix(&market.detrended_returns());
    let dissimilarity = dissimilarity_from_correlation(&correlation);
    let result = ParTdbht::with_prefix(30)
        .run(&correlation, &dissimilarity)
        .unwrap();
    let clusters = result.clusters(SECTORS.len());
    let ari = adjusted_rand_index(&market.sector, &clusters);
    // The paper reports ARI 0.36 on real stock data; the synthetic factor
    // model is cleaner, so we only require a clearly-positive alignment.
    assert!(ari > 0.25, "stock ARI {ari}");
}

#[test]
fn f32_storage_matches_f64_quality_on_ecg_style_data() {
    // ECG5000-style shape (length 140, 5 classes) at a test-friendly n.
    // The f32 storage mode rounds each correlation once at build time, so
    // clustering quality must stay within tolerance of the f64 pipeline —
    // the half-footprint matrix is a storage decision, not an algorithmic
    // one.
    let config = TimeSeriesConfig {
        num_series: 150,
        length: 140,
        num_classes: 5,
        noise: 0.4,
        seed: 11,
    };
    let dataset = TimeSeriesDataset::generate("ecg-style", &config);
    let k = dataset.num_classes();

    let correlation = correlation_matrix(&dataset.series);
    let dissimilarity = dissimilarity_from_correlation(&correlation);
    let f64_labels = ParTdbht::with_prefix(10)
        .run(&correlation, &dissimilarity)
        .unwrap()
        .clusters(k);
    let f64_ari = adjusted_rand_index(&dataset.labels, &f64_labels);

    let (correlation_f32, _stats) = correlation_matrix_f32(&dataset.series, TileConfig::default());
    let f32_labels = ParTdbht::new(ParTdbhtConfig::with_prefix(10))
        .run_f32(&correlation_f32)
        .unwrap()
        .clusters(k);
    let f32_ari = adjusted_rand_index(&dataset.labels, &f32_labels);

    assert!(f64_ari > 0.5, "f64 ARI {f64_ari}");
    assert!(
        (f32_ari - f64_ari).abs() < 0.05,
        "f32 ARI {f32_ari} drifted from f64 ARI {f64_ari}"
    );
}

#[test]
fn prescreened_f32_pipeline_reaches_f64_quality() {
    // The full large-n configuration — f32 storage plus the top-K candidate
    // prescreen — against the dense f64 reference on the same data.
    let config = TimeSeriesConfig {
        num_series: 150,
        length: 140,
        num_classes: 5,
        noise: 0.4,
        seed: 11,
    };
    let dataset = TimeSeriesDataset::generate("ecg-style", &config);
    let k = dataset.num_classes();

    let correlation = correlation_matrix(&dataset.series);
    let dissimilarity = dissimilarity_from_correlation(&correlation);
    let f64_ari = adjusted_rand_index(
        &dataset.labels,
        &ParTdbht::with_prefix(10)
            .run(&correlation, &dissimilarity)
            .unwrap()
            .clusters(k),
    );

    let (correlation_f32, _stats) = correlation_matrix_f32(&dataset.series, TileConfig::default());
    let sparse_ari = adjusted_rand_index(
        &dataset.labels,
        &ParTdbht::new(ParTdbhtConfig::with_prefix(10).with_prescreen(24))
            .run_f32(&correlation_f32)
            .unwrap()
            .clusters(k),
    );
    assert!(
        (sparse_ari - f64_ari).abs() < 0.05,
        "prescreened f32 ARI {sparse_ari} drifted from f64 ARI {f64_ari}"
    );
}

#[test]
fn deterministic_end_to_end() {
    let (_, correlation, dissimilarity) = small_dataset(13);
    let a = ParTdbht::with_prefix(10)
        .run(&correlation, &dissimilarity)
        .unwrap();
    let b = ParTdbht::with_prefix(10)
        .run(&correlation, &dissimilarity)
        .unwrap();
    assert_eq!(a.clusters(4), b.clusters(4));
    assert_eq!(a.assignment.group, b.assignment.group);
    assert_eq!(
        a.tmfg.graph.edges().collect::<Vec<_>>(),
        b.tmfg.graph.edges().collect::<Vec<_>>()
    );
}
