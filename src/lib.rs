//! # par-filtered-graph-clustering
//!
//! A Rust implementation of *Parallel Filtered Graphs for Hierarchical
//! Clustering* (Yu & Shun, ICDE 2023): parallel construction of
//! Triangulated Maximally Filtered Graphs (TMFG), the Planar Maximally
//! Filtered Graph (PMFG) baseline, and a parallel Directed Bubble
//! Hierarchy Tree (DBHT) clustering algorithm optimised for TMFG inputs —
//! together with the baselines (hierarchical agglomerative clustering,
//! k-means, spectral embedding), synthetic data generators, and evaluation
//! metrics used by the paper's experiments.
//!
//! This crate is a thin facade re-exporting the workspace members:
//!
//! * [`core`] ([`pfg_core`]) — TMFG, PMFG, bubble trees, DBHT, dendrograms;
//! * [`graph`] ([`pfg_graph`]) — matrices, weighted graphs, shortest paths,
//!   planarity testing;
//! * [`primitives`] ([`pfg_primitives`]) — parallel primitives and priority
//!   concurrent writes;
//! * [`baselines`] ([`pfg_baselines`]) — COMP/AVG linkage, k-means,
//!   spectral embedding;
//! * [`data`] ([`pfg_data`]) — synthetic UCR-like time series and the stock
//!   market factor model;
//! * [`metrics`] ([`pfg_metrics`]) — ARI and AMI.
//!
//! # Quickstart
//!
//! ```
//! use par_filtered_graph_clustering::prelude::*;
//!
//! // Generate a small labeled time-series data set and cluster it.
//! let config = TimeSeriesConfig { num_series: 60, length: 96, num_classes: 3, noise: 0.3, seed: 1 };
//! let dataset = TimeSeriesDataset::generate("quickstart", &config);
//! let correlation = correlation_matrix(&dataset.series);
//! let dissimilarity = dissimilarity_from_correlation(&correlation);
//!
//! let result = ParTdbht::with_prefix(5).run(&correlation, &dissimilarity).unwrap();
//! let labels = result.clusters(dataset.num_classes());
//! let ari = adjusted_rand_index(&dataset.labels, &labels);
//! assert!(ari > 0.3);
//! ```

pub use pfg_baselines as baselines;
pub use pfg_core as core;
pub use pfg_data as data;
pub use pfg_graph as graph;
pub use pfg_metrics as metrics;
pub use pfg_primitives as primitives;

/// Commonly used items, importable with a single `use`.
pub mod prelude {
    pub use pfg_baselines::{
        hac, kmeans, spectral_embedding, KMeansConfig, Linkage, SpectralConfig,
    };
    pub use pfg_core::dbht::{
        build_hierarchy, build_hierarchy_with, converging_vertices, dbht_for_planar_graph,
        dbht_for_tmfg, dissimilarity_graph, restricted_distances,
    };
    pub use pfg_core::{
        pmfg, pmfg_prescreened, pmfg_sequential, pmfg_with_config, tmfg, tmfg_prescreened,
        BatchFreshness, Dbht, DbhtDistanceStats, DbhtDistances, DbhtRunStats, Dendrogram,
        HacBackend, HacStats, ParTdbht, ParTdbhtConfig, ParTdbhtResult, Pmfg, PmfgConfig,
        RoundStats, Tmfg, TmfgConfig, VertexAssignment,
    };
    pub use pfg_data::{
        correlation_and_dissimilarity, correlation_matrix, correlation_matrix_f32,
        dissimilarity_from_correlation, dissimilarity_matrix, ucr_catalogue, StockMarket,
        StockMarketConfig, TileConfig, TimeSeriesConfig, TimeSeriesDataset, SECTORS,
    };
    pub use pfg_graph::{
        all_pairs_shortest_paths, group_restricted_shortest_paths, shortest_path_rows,
        DissimilarityView, GroupBlocks, LrScratch, PairDistances, SimilaritySource, SourceRows,
        SymmetricMatrix, SymmetricMatrixF32, TopKCandidates, WeightedGraph,
    };
    pub use pfg_metrics::{adjusted_mutual_information, adjusted_rand_index};
}
