//! Synthetic data generation for the filtered-graph clustering experiments.
//!
//! The paper evaluates on 18 data sets from the UCR Time Series
//! Classification Archive (Table II) and on daily closing prices of 1614 US
//! stocks with ICB industry labels. Neither source is available offline, so
//! this crate provides generators that reproduce the *structure* those
//! experiments rely on (see DESIGN.md §3 for the substitution rationale):
//!
//! * [`time_series`] — labeled synthetic time series built from per-class
//!   archetype signals plus amplitude/phase jitter and noise, so that the
//!   Pearson-correlation matrix has the block structure the clustering
//!   algorithms exploit;
//! * [`ucr`] — a catalogue mirroring Table II (same `n`, length and class
//!   counts), with a scaling knob so the benchmark harnesses can run at
//!   laptop-friendly sizes;
//! * [`stocks`] — a sector factor model of a stock market (11 ICB-style
//!   sectors, market + sector + idiosyncratic returns, log-normal market
//!   caps) with the detrended log-return preprocessing of Musmeci et al.;
//! * [`correlation`] — Pearson correlation matrices and the
//!   `d = sqrt(2 (1 − ρ))` dissimilarity transform.

pub mod correlation;
pub mod stocks;
pub mod time_series;
pub mod ucr;

pub use correlation::{
    correlation_and_dissimilarity, correlation_from_profile, correlation_matrix,
    correlation_matrix_f32, correlation_matrix_reference, correlation_matrix_with,
    dissimilarity_from_correlation, dissimilarity_matrix, pearson, CorrelationKernelStats,
    TileConfig, ZProfile,
};
pub use stocks::{StockMarket, StockMarketConfig, SECTORS};
pub use time_series::{TimeSeriesConfig, TimeSeriesDataset};
pub use ucr::{ucr_catalogue, UcrDatasetSpec};
