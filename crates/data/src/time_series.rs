//! Labeled synthetic time series with per-class archetypes.
//!
//! Each class is defined by an archetype signal (a random mixture of
//! sinusoids plus a piecewise-linear trend). A sample of the class is the
//! archetype with a random amplitude, a small phase shift, and additive
//! Gaussian-ish noise. Series from the same class therefore correlate
//! strongly with each other and weakly across classes, which is exactly the
//! structure the correlation-based filtered-graph clustering exploits on
//! the UCR data sets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic time-series generator.
#[derive(Debug, Clone)]
pub struct TimeSeriesConfig {
    /// Number of series to generate.
    pub num_series: usize,
    /// Length of each series.
    pub length: usize,
    /// Number of classes (ground-truth clusters).
    pub num_classes: usize,
    /// Standard deviation of the additive noise relative to the archetype's
    /// unit amplitude. Larger values blur the class structure.
    pub noise: f64,
    /// RNG seed (all generation is deterministic given the seed).
    pub seed: u64,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        Self {
            num_series: 200,
            length: 128,
            num_classes: 4,
            noise: 0.35,
            seed: 42,
        }
    }
}

/// A labeled collection of synthetic time series.
#[derive(Debug, Clone)]
pub struct TimeSeriesDataset {
    /// A human-readable name (e.g. the Table II data-set it mirrors).
    pub name: String,
    /// The series, one `Vec<f64>` per object.
    pub series: Vec<Vec<f64>>,
    /// Ground-truth class label per object.
    pub labels: Vec<usize>,
}

impl TimeSeriesDataset {
    /// Generates a dataset from the given configuration.
    pub fn generate(name: impl Into<String>, config: &TimeSeriesConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let archetypes: Vec<Vec<f64>> = (0..config.num_classes)
            .map(|_| archetype(config.length, &mut rng))
            .collect();
        let mut labels = Vec::with_capacity(config.num_series);
        let mut series = Vec::with_capacity(config.num_series);
        for i in 0..config.num_series {
            // Round-robin class assignment keeps classes balanced, matching
            // the roughly balanced UCR classification sets.
            let class = i % config.num_classes;
            labels.push(class);
            series.push(sample_from_archetype(
                &archetypes[class],
                config.noise,
                &mut rng,
            ));
        }
        Self {
            name: name.into(),
            series,
            labels,
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if the dataset has no objects.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Number of distinct ground-truth classes.
    pub fn num_classes(&self) -> usize {
        let mut distinct = self.labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        distinct.len()
    }

    /// Length of each series (0 if empty).
    pub fn series_length(&self) -> usize {
        self.series.first().map_or(0, |s| s.len())
    }
}

/// A random archetype: a mixture of two to four sinusoids with random
/// frequencies and phases plus a gentle linear trend, normalised to unit
/// standard deviation.
fn archetype(length: usize, rng: &mut StdRng) -> Vec<f64> {
    let num_components = rng.gen_range(2..=4);
    let components: Vec<(f64, f64, f64)> = (0..num_components)
        .map(|_| {
            (
                rng.gen_range(0.5..1.5),                   // amplitude
                rng.gen_range(1.0..8.0),                   // frequency (cycles)
                rng.gen_range(0.0..std::f64::consts::TAU), // phase
            )
        })
        .collect();
    let trend = rng.gen_range(-1.0..1.0);
    let raw: Vec<f64> = (0..length)
        .map(|t| {
            let x = t as f64 / length as f64;
            let wave: f64 = components
                .iter()
                .map(|&(a, f, p)| a * (f * x * std::f64::consts::TAU + p).sin())
                .sum();
            wave + trend * x
        })
        .collect();
    normalise(raw)
}

/// Draws one sample: scaled archetype shifted by a couple of samples plus
/// additive noise.
fn sample_from_archetype(archetype: &[f64], noise: f64, rng: &mut StdRng) -> Vec<f64> {
    let length = archetype.len();
    let amplitude = rng.gen_range(0.8..1.2);
    let shift =
        rng.gen_range(0..=(length / 32).max(1)) as i64 * if rng.gen_bool(0.5) { 1 } else { -1 };
    (0..length)
        .map(|t| {
            let src = (t as i64 + shift).rem_euclid(length as i64) as usize;
            // Sum of three uniforms ≈ Gaussian noise with the requested scale.
            let eps: f64 = (0..3).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() / 3.0;
            amplitude * archetype[src] + noise * eps
        })
        .collect()
}

/// Normalises a series to zero mean and unit standard deviation.
fn normalise(series: Vec<f64>) -> Vec<f64> {
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    let var = series.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / n;
    let std = var.sqrt().max(1e-12);
    series.into_iter().map(|x| (x - mean) / std).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::correlation_matrix;

    #[test]
    fn generation_is_deterministic() {
        let config = TimeSeriesConfig::default();
        let a = TimeSeriesDataset::generate("a", &config);
        let b = TimeSeriesDataset::generate("b", &config);
        assert_eq!(a.series, b.series);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn dimensions_match_config() {
        let config = TimeSeriesConfig {
            num_series: 57,
            length: 33,
            num_classes: 5,
            noise: 0.3,
            seed: 7,
        };
        let ds = TimeSeriesDataset::generate("dims", &config);
        assert_eq!(ds.len(), 57);
        assert_eq!(ds.series_length(), 33);
        assert_eq!(ds.num_classes(), 5);
        assert!(!ds.is_empty());
        assert!(ds.series.iter().all(|s| s.len() == 33));
    }

    #[test]
    fn labels_are_balanced_round_robin() {
        let config = TimeSeriesConfig {
            num_series: 40,
            num_classes: 4,
            ..TimeSeriesConfig::default()
        };
        let ds = TimeSeriesDataset::generate("balanced", &config);
        for class in 0..4 {
            let count = ds.labels.iter().filter(|&&l| l == class).count();
            assert_eq!(count, 10);
        }
    }

    #[test]
    fn within_class_correlation_exceeds_between_class() {
        let config = TimeSeriesConfig {
            num_series: 60,
            length: 128,
            num_classes: 3,
            noise: 0.3,
            seed: 11,
        };
        let ds = TimeSeriesDataset::generate("corr", &config);
        let c = correlation_matrix(&ds.series);
        let mut within = Vec::new();
        let mut between = Vec::new();
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                if ds.labels[i] == ds.labels[j] {
                    within.push(c.get(i, j));
                } else {
                    between.push(c.get(i, j));
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&within) > mean(&between) + 0.2,
            "within {} between {}",
            mean(&within),
            mean(&between)
        );
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = TimeSeriesDataset::generate(
            "a",
            &TimeSeriesConfig {
                seed: 1,
                ..TimeSeriesConfig::default()
            },
        );
        let b = TimeSeriesDataset::generate(
            "b",
            &TimeSeriesConfig {
                seed: 2,
                ..TimeSeriesConfig::default()
            },
        );
        assert_ne!(a.series, b.series);
    }
}
