//! A synthetic US-stock-market generator for the §VII "Clustering Stocks"
//! experiment (Figures 10 and 11).
//!
//! The paper uses daily closing prices of 1614 US stocks (2013–2019) with
//! ICB industry labels and Yahoo-Finance market caps. We replace that data
//! with a standard multi-factor return model: every stock's daily return is
//! a mix of a market factor, its sector factor, and idiosyncratic noise.
//! This produces exactly the block-plus-market correlation structure that
//! makes the DBHT clusters align with sectors, and log-normal market caps
//! whose sector medians are comparable (Figure 11(a)) while "small caps are
//! noisier" can be modelled through the idiosyncratic volatility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 11 ICB-style sectors used by the paper (Table III).
pub const SECTORS: [&str; 11] = [
    "TECHNOLOGY",
    "INDUSTRIALS",
    "FINANCIALS",
    "HEALTH CARE",
    "CONSUMER DISCRETIONARY",
    "REAL ESTATE",
    "UTILITIES",
    "CONSUMER STAPLES",
    "BASIC MATERIALS",
    "ENERGY",
    "TELECOMMUNICATIONS",
];

/// Configuration of the market simulator.
#[derive(Debug, Clone)]
pub struct StockMarketConfig {
    /// Number of stocks (the paper uses 1614).
    pub num_stocks: usize,
    /// Number of trading days (the paper uses 1761).
    pub num_days: usize,
    /// Strength of the common market factor in every return.
    pub market_beta: f64,
    /// Strength of the sector factor.
    pub sector_beta: f64,
    /// Idiosyncratic volatility for large-cap stocks; small caps receive up
    /// to twice this value, which is what makes low-cap clusters noisier
    /// (Figure 11(b)).
    pub idiosyncratic_vol: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StockMarketConfig {
    fn default() -> Self {
        Self {
            num_stocks: 400,
            num_days: 500,
            market_beta: 0.4,
            sector_beta: 0.8,
            idiosyncratic_vol: 0.9,
            seed: 2013,
        }
    }
}

/// A simulated stock market: daily returns, sector labels and market caps.
#[derive(Debug, Clone)]
pub struct StockMarket {
    /// Ticker names (synthetic, `S0001`, `S0002`, …).
    pub tickers: Vec<String>,
    /// Sector index (into [`SECTORS`]) per stock — the ground truth used for
    /// the ARI computation of the stock experiment.
    pub sector: Vec<usize>,
    /// Daily log-returns per stock.
    pub returns: Vec<Vec<f64>>,
    /// Market capitalisation per stock (log-normal).
    pub market_cap: Vec<f64>,
}

impl StockMarket {
    /// Simulates a market with the given configuration.
    pub fn generate(config: &StockMarketConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let num_sectors = SECTORS.len();
        let gaussian = |rng: &mut StdRng| -> f64 {
            // Sum of uniforms (Irwin–Hall) as a light-weight normal sample.
            (0..6).map(|_| rng.gen_range(-1.0_f64..1.0)).sum::<f64>() / 6.0_f64.sqrt() * 1.73
        };

        // Common market factor and per-sector factors per day.
        let market: Vec<f64> = (0..config.num_days).map(|_| gaussian(&mut rng)).collect();
        let sector_factors: Vec<Vec<f64>> = (0..num_sectors)
            .map(|_| (0..config.num_days).map(|_| gaussian(&mut rng)).collect())
            .collect();

        let mut tickers = Vec::with_capacity(config.num_stocks);
        let mut sector = Vec::with_capacity(config.num_stocks);
        let mut returns = Vec::with_capacity(config.num_stocks);
        let mut market_cap = Vec::with_capacity(config.num_stocks);
        for i in 0..config.num_stocks {
            let s = i % num_sectors;
            tickers.push(format!("S{:04}", i + 1));
            sector.push(s);
            // Log-normal market cap: medians comparable across sectors
            // (Figure 11(a)), heavy right tail.
            let cap = (9.0 + 2.0 * gaussian(&mut rng)).exp() * 1.0e3;
            // Small caps get a larger idiosyncratic volatility.
            let size_percentile = ((cap.ln() - 9.0 - (1.0e3_f64).ln()) / 4.0).clamp(-1.0, 1.0);
            let idio = config.idiosyncratic_vol * (1.5 - 0.5 * size_percentile);
            let beta_m = config.market_beta * rng.gen_range(0.7..1.3);
            let beta_s = config.sector_beta * rng.gen_range(0.7..1.3);
            let series: Vec<f64> = (0..config.num_days)
                .map(|t| {
                    beta_m * market[t] + beta_s * sector_factors[s][t] + idio * gaussian(&mut rng)
                })
                .collect();
            returns.push(series);
            market_cap.push(cap);
        }
        Self {
            tickers,
            sector,
            returns,
            market_cap,
        }
    }

    /// Number of stocks.
    pub fn len(&self) -> usize {
        self.tickers.len()
    }

    /// True if the market has no stocks.
    pub fn is_empty(&self) -> bool {
        self.tickers.is_empty()
    }

    /// Detrended log-returns following Musmeci et al.: subtract the
    /// cross-sectional market average from each day's return, then
    /// z-normalise each stock's series. This removes the common market mode
    /// so the correlation matrix exposes the sector structure.
    pub fn detrended_returns(&self) -> Vec<Vec<f64>> {
        let num_days = self.returns.first().map_or(0, |r| r.len());
        let n = self.len();
        let mut daily_mean = vec![0.0; num_days];
        for series in &self.returns {
            for (t, &r) in series.iter().enumerate() {
                daily_mean[t] += r / n as f64;
            }
        }
        self.returns
            .iter()
            .map(|series| {
                let detrended: Vec<f64> = series
                    .iter()
                    .enumerate()
                    .map(|(t, &r)| r - daily_mean[t])
                    .collect();
                let mean = detrended.iter().sum::<f64>() / num_days.max(1) as f64;
                let var = detrended.iter().map(|&x| (x - mean).powi(2)).sum::<f64>()
                    / num_days.max(1) as f64;
                let std = var.sqrt().max(1e-12);
                detrended.into_iter().map(|x| (x - mean) / std).collect()
            })
            .collect()
    }

    /// The sector name of stock `i`.
    pub fn sector_name(&self, i: usize) -> &'static str {
        SECTORS[self.sector[i]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::correlation_matrix;

    #[test]
    fn generation_dimensions() {
        let config = StockMarketConfig {
            num_stocks: 55,
            num_days: 120,
            ..StockMarketConfig::default()
        };
        let market = StockMarket::generate(&config);
        assert_eq!(market.len(), 55);
        assert!(!market.is_empty());
        assert!(market.returns.iter().all(|r| r.len() == 120));
        assert_eq!(market.market_cap.len(), 55);
        assert_eq!(market.tickers.len(), 55);
        assert!(market.sector.iter().all(|&s| s < SECTORS.len()));
    }

    #[test]
    fn generation_is_deterministic() {
        let config = StockMarketConfig::default();
        let a = StockMarket::generate(&config);
        let b = StockMarket::generate(&config);
        assert_eq!(a.returns, b.returns);
        assert_eq!(a.market_cap, b.market_cap);
    }

    #[test]
    fn detrending_removes_market_mode() {
        let config = StockMarketConfig {
            num_stocks: 66,
            num_days: 250,
            ..StockMarketConfig::default()
        };
        let market = StockMarket::generate(&config);
        let raw_corr = correlation_matrix(&market.returns);
        let detrended = market.detrended_returns();
        let det_corr = correlation_matrix(&detrended);
        // Average cross-sector correlation should drop after detrending.
        let mut raw_cross = Vec::new();
        let mut det_cross = Vec::new();
        for i in 0..market.len() {
            for j in (i + 1)..market.len() {
                if market.sector[i] != market.sector[j] {
                    raw_cross.push(raw_corr.get(i, j));
                    det_cross.push(det_corr.get(i, j));
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&det_cross) < mean(&raw_cross));
    }

    #[test]
    fn same_sector_stocks_correlate_more() {
        let config = StockMarketConfig {
            num_stocks: 110,
            num_days: 400,
            ..StockMarketConfig::default()
        };
        let market = StockMarket::generate(&config);
        let corr = correlation_matrix(&market.detrended_returns());
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in 0..market.len() {
            for j in (i + 1)..market.len() {
                if market.sector[i] == market.sector[j] {
                    within.push(corr.get(i, j));
                } else {
                    across.push(corr.get(i, j));
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&within) > mean(&across) + 0.1,
            "within {} across {}",
            mean(&within),
            mean(&across)
        );
    }

    #[test]
    fn market_caps_are_positive_and_spread_out() {
        let market = StockMarket::generate(&StockMarketConfig::default());
        assert!(market.market_cap.iter().all(|&c| c > 0.0));
        let max = market.market_cap.iter().cloned().fold(f64::MIN, f64::max);
        let min = market.market_cap.iter().cloned().fold(f64::MAX, f64::min);
        // Log-normal caps span multiple orders of magnitude.
        assert!(max / min > 100.0);
    }

    #[test]
    fn sector_names_resolve() {
        let market = StockMarket::generate(&StockMarketConfig {
            num_stocks: 12,
            num_days: 30,
            ..StockMarketConfig::default()
        });
        assert_eq!(market.sector_name(0), "TECHNOLOGY");
        assert_eq!(market.sector_name(11), "TECHNOLOGY");
        assert_eq!(market.sector_name(1), "INDUSTRIALS");
    }
}
