//! Pearson correlations and the correlation-based dissimilarity measure.

use pfg_graph::SymmetricMatrix;
use rayon::prelude::*;

/// Pearson correlation coefficient between two equal-length series.
/// Returns 0 when either series has zero variance.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let dx = x - mean_a;
        let dy = y - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a <= 0.0 || var_b <= 0.0 {
        0.0
    } else {
        (cov / (var_a.sqrt() * var_b.sqrt())).clamp(-1.0, 1.0)
    }
}

/// The full Pearson correlation matrix of a collection of series, computed
/// in parallel over rows. The diagonal is 1.
pub fn correlation_matrix(series: &[Vec<f64>]) -> SymmetricMatrix {
    let n = series.len();
    // Pre-compute centred, unit-norm series so each pair is a dot product.
    let normalized: Vec<Vec<f64>> = series
        .par_iter()
        .map(|s| {
            let mean = s.iter().sum::<f64>() / s.len().max(1) as f64;
            let centred: Vec<f64> = s.iter().map(|&x| x - mean).collect();
            let norm = centred.iter().map(|&x| x * x).sum::<f64>().sqrt();
            if norm <= 0.0 {
                vec![0.0; s.len()]
            } else {
                centred.iter().map(|&x| x / norm).collect()
            }
        })
        .collect();
    let rows: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        1.0
                    } else {
                        normalized[i]
                            .iter()
                            .zip(normalized[j].iter())
                            .map(|(&x, &y)| x * y)
                            .sum::<f64>()
                            .clamp(-1.0, 1.0)
                    }
                })
                .collect()
        })
        .collect();
    let mut m = SymmetricMatrix::zeros(n);
    // Indexing two different rows (`rows[i][j]` and `rows[j][i]`) per
    // iteration — the iterator rewrite clippy suggests does not apply.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for j in i..n {
            // Average the two symmetric entries to wash out rounding noise.
            let v = 0.5 * (rows[i][j] + rows[j][i]);
            m.set(i, j, v);
        }
    }
    m
}

/// The dissimilarity `d = sqrt(2 (1 − ρ))` used by the paper for the
/// shortest-path computations. For z-normalised series this equals the
/// Euclidean distance between them (up to scale).
pub fn dissimilarity_from_correlation(correlation: &SymmetricMatrix) -> SymmetricMatrix {
    correlation.map(|p| (2.0 * (1.0 - p)).max(0.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_identical_series_is_one() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_negated_series_is_minus_one() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_is_shift_and_scale_invariant() {
        let a = vec![1.0, 5.0, 2.0, 8.0, 3.0];
        let b: Vec<f64> = a.iter().map(|x| 3.0 * x + 10.0).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_zero_correlation() {
        let a = vec![2.0; 5];
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(pearson(&a, &b), 0.0);
    }

    #[test]
    fn correlation_matrix_matches_pairwise_pearson() {
        let series = vec![
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
            vec![2.0, 1.0, 4.0, 3.0, 6.0],
            vec![5.0, 4.0, 3.0, 2.0, 1.0],
        ];
        let m = correlation_matrix(&series);
        for i in 0..3 {
            assert!((m.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((m.get(i, j) - pearson(&series[i], &series[j])).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dissimilarity_transform_bounds() {
        let series = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![4.0, 3.0, 2.0, 1.0],
            vec![1.0, 3.0, 2.0, 4.0],
        ];
        let c = correlation_matrix(&series);
        let d = dissimilarity_from_correlation(&c);
        for i in 0..3 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..3 {
                assert!(d.get(i, j) >= 0.0 && d.get(i, j) <= 2.0 + 1e-12);
            }
        }
        // Perfectly anti-correlated pair is at the maximum distance 2.
        assert!((d.get(0, 1) - 2.0).abs() < 1e-9);
    }
}
