//! Pearson correlations and the correlation-based dissimilarity measure,
//! computed by a cache-blocked, allocation-lean kernel.
//!
//! # Kernel layout
//!
//! All series are z-normalised once (centred, unit norm) into a single
//! flat row-major buffer `Z` ([`ZProfile`]); every pairwise correlation is
//! then the dot product `ρ(i, j) = Z[i] · Z[j]`, i.e. `C = Z · Zᵀ`. The
//! kernel walks the upper triangle of `C` tile by tile: the tile pairs
//! `(I, J)` with `I ≤ J` of a `T × T` blocking are distributed over
//! threads, and each tile pair computes the entries `{(i, j) : i ∈ I,
//! j ∈ J, i ≤ j}` with a register-blocked microkernel — for a fixed row
//! `i`, four columns `j..j+4` share one pass over `k`, each pair keeping
//! its own accumulator. Both mirrored positions `(i, j)` and `(j, i)` of
//! the flat output buffer are written from the single computed value, so
//! there is no separate symmetrise pass and no `Vec<Vec<f64>>`
//! intermediate: peak intermediate allocation is the `n · L` profile
//! buffer (one tile band of rows when `L ≤ T`), down from the previous
//! kernel's ~3×n² (normalised rows + row-major products + matrix).
//!
//! # Determinism
//!
//! Each entry is computed *exactly once*, by whichever task owns its tile
//! pair, and each pair's dot product accumulates in ascending-`k` order
//! into a private accumulator. Neither the tile size nor the thread count
//! changes any pair's summation order, so the output is bitwise invariant
//! across tile sizes and `RAYON_NUM_THREADS` — and bitwise identical to
//! the reference kernel ([`correlation_matrix_reference`]), whose
//! `0.5 * (ρ_ij + ρ_ji)` symmetrisation averages two bitwise-equal values
//! (both sides accumulate the same products in the same order; IEEE-754
//! multiplication is commutative, and `0.5 * (x + x) == x` exactly).
//! Differential tests in this module assert the equality.

use pfg_graph::{SimilaritySource, SymmetricMatrix, SymmetricMatrixF32};
use pfg_primitives::{DisjointWriteAudit, SendPtr};
use rayon::prelude::*;

/// Tiling parameters of the correlation kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Edge length of the square tiles the output is blocked into.
    pub tile: usize,
}

impl Default for TileConfig {
    fn default() -> Self {
        // 128 rows of a typical UCR-length profile keep the two active
        // tile bands inside L2 while giving the scheduler n²/2T² units.
        Self { tile: 128 }
    }
}

/// Counters describing one run of the tiled kernel, surfaced through the
/// bench layer's `CorrelationRunStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorrelationKernelStats {
    /// Number of series (matrix dimension).
    pub n: usize,
    /// Length of each (uniform-length) series.
    pub series_len: usize,
    /// Tile edge length used.
    pub tile: usize,
    /// Upper-triangle tile pairs computed: `t(t+1)/2` for `t = ⌈n/T⌉`.
    pub tiles_computed: usize,
    /// Peak intermediate allocation in bytes: the flat z-profile buffer
    /// (`8 · n · L`). Everything else the kernel touches is output.
    pub peak_intermediate_bytes: usize,
    /// Bytes of output matrices written by the call.
    pub output_bytes: usize,
}

/// The z-normalised profile of a uniform-length series collection: one
/// flat row-major buffer holding each series centred and scaled to unit
/// norm (all-zero row for constant series), so every pairwise correlation
/// is a plain dot product.
#[derive(Debug, Clone)]
pub struct ZProfile {
    n: usize,
    len: usize,
    data: Vec<f64>,
}

impl ZProfile {
    /// Normalises `series` in parallel. Returns `None` when the series do
    /// not all have the same length (the tiled kernel requires a
    /// rectangular profile; ragged input falls back to the reference
    /// kernel).
    pub fn build(series: &[Vec<f64>]) -> Option<Self> {
        let n = series.len();
        let len = series.first().map_or(0, |s| s.len());
        if series.iter().any(|s| s.len() != len) {
            return None;
        }
        let mut data = vec![0.0f64; n * len];
        data.par_chunks_mut(len.max(1))
            .zip(series.par_iter())
            .for_each(|(row, s)| {
                z_normalize_into(s, &mut row[..s.len()]);
            });
        Some(Self { n, len, data })
    }

    /// Number of series.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Uniform series length.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.len
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.len..(i + 1) * self.len]
    }

    /// The correlation `ρ(i, j)` as the kernel computes it: in-order dot
    /// product of the two profile rows, clamped to `[-1, 1]`; `1.0` on
    /// the diagonal.
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        self.row(i)
            .iter()
            .zip(self.row(j).iter())
            .map(|(&x, &y)| x * y)
            .sum::<f64>()
            .clamp(-1.0, 1.0)
    }

    /// Heap footprint of the profile buffer in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }
}

/// A [`ZProfile`] *is* a similarity source: correlations are computed on
/// demand from the `n · L` profile, so filtered-graph construction (e.g.
/// through the top-K prescreen) can run without ever materialising any
/// `n²` matrix at all.
impl SimilaritySource for ZProfile {
    #[inline]
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        self.correlation(i, j)
    }
}

/// Centres `s` and scales it to unit norm, writing into `out`
/// (bitwise-identically to the reference kernel's per-row normalisation:
/// same sums, same order, same zero-variance fallback).
fn z_normalize_into(s: &[f64], out: &mut [f64]) {
    debug_assert_eq!(s.len(), out.len());
    let mean = s.iter().sum::<f64>() / s.len().max(1) as f64;
    for (o, &x) in out.iter_mut().zip(s.iter()) {
        *o = x - mean;
    }
    let norm = out.iter().map(|&x| x * x).sum::<f64>().sqrt();
    if norm <= 0.0 {
        out.fill(0.0);
    } else {
        for o in out.iter_mut() {
            *o /= norm;
        }
    }
}

/// Pearson correlation coefficient between two equal-length series.
/// Returns 0 when either series has zero variance.
///
/// Shares the z-normalise-and-dot definition with the matrix kernel, so
/// the scalar and matrix paths agree on one definition of the statistic.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let mut za = vec![0.0; a.len()];
    let mut zb = vec![0.0; b.len()];
    z_normalize_into(a, &mut za);
    z_normalize_into(b, &mut zb);
    // A zero-variance series normalises to the zero row, making the dot
    // product exactly 0.0.
    za.iter()
        .zip(zb.iter())
        .map(|(&x, &y)| x * y)
        .sum::<f64>()
        .clamp(-1.0, 1.0)
}

/// Stores `v` at the mirrored positions `(i, j)` and `(j, i)` of the flat
/// `n × n` buffer behind `ptr` — once only when `i == j` — and declares
/// each store to `audit`, whose exactly-once-per-cell check (active under
/// `--cfg pfg_racecheck`) is what pins down the tile decomposition's
/// disjoint-write claim.
///
/// # Safety
/// `ptr` must point at `n * n` valid writable elements and the caller must
/// be the unique writer of positions `(i, j)` and `(j, i)`: the tiled
/// kernel assigns each unordered pair to exactly one tile task.
#[inline]
unsafe fn write_sym<T: Copy + Send>(
    ptr: SendPtr<T>,
    audit: &DisjointWriteAudit,
    n: usize,
    i: usize,
    j: usize,
    v: T,
) {
    audit.write_once(i * n + j);
    *ptr.get().add(i * n + j) = v;
    if i != j {
        audit.write_once(j * n + i);
        *ptr.get().add(j * n + i) = v;
    }
}

/// Runs the tiled kernel, calling `emit(i, j, ρ)` exactly once per pair
/// `i <= j` of the upper triangle (diagonal included, as `1.0`). Returns
/// the number of tile pairs computed.
fn for_each_pair<E: Fn(usize, usize, f64) + Sync>(z: &ZProfile, tile: usize, emit: E) -> usize {
    let n = z.n;
    let tile = tile.max(1);
    if n == 0 {
        return 0;
    }
    let nt = n.div_ceil(tile);
    let mut tile_pairs = Vec::with_capacity(nt * (nt + 1) / 2);
    for ti in 0..nt {
        for tj in ti..nt {
            tile_pairs.push((ti, tj));
        }
    }
    let len = z.len;
    // `with_max_len(1)`: one tile pair is a cache-sized unit of work;
    // don't let the executor's cheap-item heuristic glue them together.
    tile_pairs.par_iter().with_max_len(1).for_each(|&(ti, tj)| {
        let (i0, i1) = (ti * tile, (ti * tile + tile).min(n));
        let (j0, j1) = (tj * tile, (tj * tile + tile).min(n));
        for i in i0..i1 {
            let zi = &z.row(i)[..len];
            let mut j = if ti == tj { i } else { j0 };
            if j == i {
                emit(i, i, 1.0);
                j += 1;
            }
            // Register-blocked microkernel: four columns share one pass
            // over k, each pair accumulating in ascending-k order into
            // its own register — the order the reference kernel uses.
            while j + 4 <= j1 {
                let r0 = &z.row(j)[..len];
                let r1 = &z.row(j + 1)[..len];
                let r2 = &z.row(j + 2)[..len];
                let r3 = &z.row(j + 3)[..len];
                let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                for k in 0..len {
                    let x = zi[k];
                    a0 += x * r0[k];
                    a1 += x * r1[k];
                    a2 += x * r2[k];
                    a3 += x * r3[k];
                }
                emit(i, j, a0.clamp(-1.0, 1.0));
                emit(i, j + 1, a1.clamp(-1.0, 1.0));
                emit(i, j + 2, a2.clamp(-1.0, 1.0));
                emit(i, j + 3, a3.clamp(-1.0, 1.0));
                j += 4;
            }
            while j < j1 {
                let rj = &z.row(j)[..len];
                let mut acc = 0.0f64;
                for k in 0..len {
                    acc += zi[k] * rj[k];
                }
                emit(i, j, acc.clamp(-1.0, 1.0));
                j += 1;
            }
        }
    });
    nt * (nt + 1) / 2
}

fn base_stats(z: &ZProfile, tile: usize, tiles: usize) -> CorrelationKernelStats {
    CorrelationKernelStats {
        n: z.n,
        series_len: z.len,
        tile: tile.max(1),
        tiles_computed: tiles,
        peak_intermediate_bytes: z.memory_bytes(),
        output_bytes: 0,
    }
}

/// The full Pearson correlation matrix of a collection of series,
/// computed by the tiled kernel (bitwise identical to
/// [`correlation_matrix_reference`] at any tile size and thread count).
/// The diagonal is 1. Ragged-length collections fall back to the
/// reference kernel.
pub fn correlation_matrix(series: &[Vec<f64>]) -> SymmetricMatrix {
    match ZProfile::build(series) {
        Some(z) => correlation_from_profile(&z, TileConfig::default()).0,
        None => correlation_matrix_reference(series),
    }
}

/// [`correlation_matrix`] with explicit tiling, also returning the kernel
/// counters.
///
/// # Panics
/// Panics if the series do not all have the same length.
pub fn correlation_matrix_with(
    series: &[Vec<f64>],
    config: TileConfig,
) -> (SymmetricMatrix, CorrelationKernelStats) {
    let z = ZProfile::build(series).expect("tiled kernel requires uniform-length series");
    correlation_from_profile(&z, config)
}

/// The tiled kernel over an existing profile.
pub fn correlation_from_profile(
    z: &ZProfile,
    config: TileConfig,
) -> (SymmetricMatrix, CorrelationKernelStats) {
    let n = z.n;
    let mut data = vec![0.0f64; n * n];
    let ptr = SendPtr::new(data.as_mut_ptr());
    let audit = DisjointWriteAudit::cells("correlation matrix", n * n);
    // SAFETY: `write_sym`'s contract — `data` has n·n elements and the
    // tiled kernel emits each unordered pair exactly once.
    let tiles = for_each_pair(z, config.tile, |i, j, rho| unsafe {
        write_sym(ptr, &audit, n, i, j, rho);
    });
    let mut stats = base_stats(z, config.tile, tiles);
    stats.output_bytes = n * n * std::mem::size_of::<f64>();
    (SymmetricMatrix::from_symmetrized(n, data), stats)
}

/// The correlation matrix in `f32` storage: computed in `f64` by the same
/// tiled kernel and rounded once on store, halving the `n²` footprint.
///
/// # Panics
/// Panics if the series do not all have the same length.
pub fn correlation_matrix_f32(
    series: &[Vec<f64>],
    config: TileConfig,
) -> (SymmetricMatrixF32, CorrelationKernelStats) {
    let z = ZProfile::build(series).expect("tiled kernel requires uniform-length series");
    let n = z.n;
    let mut data = vec![0.0f32; n * n];
    let ptr = SendPtr::new(data.as_mut_ptr());
    let audit = DisjointWriteAudit::cells("correlation matrix (f32)", n * n);
    // SAFETY: as in `correlation_from_profile` — n·n buffer, one emit per
    // unordered pair.
    let tiles = for_each_pair(&z, config.tile, |i, j, rho| unsafe {
        write_sym(ptr, &audit, n, i, j, rho as f32);
    });
    let mut stats = base_stats(&z, config.tile, tiles);
    stats.output_bytes = n * n * std::mem::size_of::<f32>();
    (SymmetricMatrixF32::from_symmetrized(n, data), stats)
}

/// The fused path for callers that only need the dissimilarity
/// `d = sqrt(2 (1 − ρ))`: one kernel pass, never holding the correlation
/// matrix.
///
/// # Panics
/// Panics if the series do not all have the same length.
pub fn dissimilarity_matrix(series: &[Vec<f64>]) -> SymmetricMatrix {
    let z = ZProfile::build(series).expect("tiled kernel requires uniform-length series");
    let n = z.n;
    let mut data = vec![0.0f64; n * n];
    let ptr = SendPtr::new(data.as_mut_ptr());
    let audit = DisjointWriteAudit::cells("dissimilarity matrix", n * n);
    // SAFETY: as in `correlation_from_profile` — n·n buffer, one emit per
    // unordered pair.
    for_each_pair(&z, TileConfig::default().tile, |i, j, rho| unsafe {
        let d = (2.0 * (1.0 - rho)).max(0.0).sqrt();
        write_sym(ptr, &audit, n, i, j, d);
    });
    SymmetricMatrix::from_symmetrized(n, data)
}

/// The fused path for callers that need *both* matrices: one kernel pass
/// writes the correlation and its derived dissimilarity together, instead
/// of materialising the correlation and re-mapping it.
///
/// # Panics
/// Panics if the series do not all have the same length.
pub fn correlation_and_dissimilarity(
    series: &[Vec<f64>],
) -> (SymmetricMatrix, SymmetricMatrix, CorrelationKernelStats) {
    let z = ZProfile::build(series).expect("tiled kernel requires uniform-length series");
    let n = z.n;
    let mut corr = vec![0.0f64; n * n];
    let mut diss = vec![0.0f64; n * n];
    let cptr = SendPtr::new(corr.as_mut_ptr());
    let dptr = SendPtr::new(diss.as_mut_ptr());
    let caudit = DisjointWriteAudit::cells("fused correlation matrix", n * n);
    let daudit = DisjointWriteAudit::cells("fused dissimilarity matrix", n * n);
    // SAFETY: as in `correlation_from_profile`, independently per buffer.
    let tiles = for_each_pair(&z, TileConfig::default().tile, |i, j, rho| unsafe {
        let d = (2.0 * (1.0 - rho)).max(0.0).sqrt();
        write_sym(cptr, &caudit, n, i, j, rho);
        write_sym(dptr, &daudit, n, i, j, d);
    });
    let mut stats = base_stats(&z, TileConfig::default().tile, tiles);
    stats.output_bytes = 2 * n * n * std::mem::size_of::<f64>();
    (
        SymmetricMatrix::from_symmetrized(n, corr),
        SymmetricMatrix::from_symmetrized(n, diss),
        stats,
    )
}

/// The pre-tiling reference kernel: normalised `Vec<Vec<f64>>` rows, a
/// full `n × n` product pass, and an averaging symmetrise tail. Kept as
/// the differential-test oracle (the tiled kernel must match it bitwise)
/// and as the fallback for ragged-length collections.
pub fn correlation_matrix_reference(series: &[Vec<f64>]) -> SymmetricMatrix {
    let n = series.len();
    // Pre-compute centred, unit-norm series so each pair is a dot product.
    let normalized: Vec<Vec<f64>> = series
        .par_iter()
        .map(|s| {
            let mean = s.iter().sum::<f64>() / s.len().max(1) as f64;
            let centred: Vec<f64> = s.iter().map(|&x| x - mean).collect();
            let norm = centred.iter().map(|&x| x * x).sum::<f64>().sqrt();
            if norm <= 0.0 {
                vec![0.0; s.len()]
            } else {
                centred.iter().map(|&x| x / norm).collect()
            }
        })
        .collect();
    let rows: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        1.0
                    } else {
                        normalized[i]
                            .iter()
                            .zip(normalized[j].iter())
                            .map(|(&x, &y)| x * y)
                            .sum::<f64>()
                            .clamp(-1.0, 1.0)
                    }
                })
                .collect()
        })
        .collect();
    let mut m = SymmetricMatrix::zeros(n);
    // Indexing two different rows (`rows[i][j]` and `rows[j][i]`) per
    // iteration — the iterator rewrite clippy suggests does not apply.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for j in i..n {
            // Average the two symmetric entries to wash out rounding noise.
            let v = 0.5 * (rows[i][j] + rows[j][i]);
            m.set(i, j, v);
        }
    }
    m
}

/// The dissimilarity `d = sqrt(2 (1 − p))` used by the paper for the
/// shortest-path computations. For z-normalised series this equals the
/// Euclidean distance between them (up to scale).
pub fn dissimilarity_from_correlation(correlation: &SymmetricMatrix) -> SymmetricMatrix {
    correlation.map(|p| (2.0 * (1.0 - p)).max(0.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_series(n: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| {
                let phase = (i % 7) as f64;
                (0..len)
                    .map(|t| (0.3 * t as f64 + phase).sin() + 0.5 * next())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pearson_of_identical_series_is_one() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_negated_series_is_minus_one() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_is_shift_and_scale_invariant() {
        let a = vec![1.0, 5.0, 2.0, 8.0, 3.0];
        let b: Vec<f64> = a.iter().map(|x| 3.0 * x + 10.0).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_zero_correlation() {
        let a = vec![2.0; 5];
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(pearson(&a, &b), 0.0);
    }

    #[test]
    fn pearson_matches_matrix_kernel_definition() {
        let series = synthetic_series(6, 31, 5);
        let z = ZProfile::build(&series).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                if i == j {
                    // The matrix kernel pins the diagonal at exactly 1.
                    assert!((pearson(&series[i], &series[j]) - 1.0).abs() < 1e-12);
                } else {
                    assert_eq!(
                        pearson(&series[i], &series[j]).to_bits(),
                        z.correlation(i, j).to_bits(),
                        "({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn correlation_matrix_matches_pairwise_pearson() {
        let series = vec![
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
            vec![2.0, 1.0, 4.0, 3.0, 6.0],
            vec![5.0, 4.0, 3.0, 2.0, 1.0],
        ];
        let m = correlation_matrix(&series);
        for i in 0..3 {
            assert!((m.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((m.get(i, j) - pearson(&series[i], &series[j])).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn tiled_matches_reference_bitwise_across_tile_sizes() {
        for (n, len) in [(1, 4), (37, 23), (64, 5), (101, 46)] {
            let series = synthetic_series(n, len, n as u64);
            let reference = correlation_matrix_reference(&series);
            for tile in [1, 8, 37, 64, 256] {
                let (tiled, stats) = correlation_matrix_with(&series, TileConfig { tile });
                assert_eq!(
                    tiled.as_slice().len(),
                    reference.as_slice().len(),
                    "n={n} tile={tile}"
                );
                for (idx, (a, b)) in tiled
                    .as_slice()
                    .iter()
                    .zip(reference.as_slice().iter())
                    .enumerate()
                {
                    assert_eq!(a.to_bits(), b.to_bits(), "n={n} tile={tile} idx={idx}");
                }
                let nt = n.div_ceil(tile);
                assert_eq!(stats.tiles_computed, nt * (nt + 1) / 2);
            }
        }
    }

    #[test]
    fn tiled_kernel_is_thread_count_invariant() {
        // Each tile pair writes a disjoint output range, so the result is
        // bitwise identical no matter how rayon schedules the tiles. Pin
        // explicit pools rather than relying on the ambient thread count so
        // the test exercises 1/4/8 threads regardless of RAYON_NUM_THREADS.
        let series = synthetic_series(97, 29, 41);
        let reference = correlation_matrix_reference(&series);
        for threads in [1usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool");
            let (tiled, _) =
                pool.install(|| correlation_matrix_with(&series, TileConfig { tile: 16 }));
            for (idx, (a, b)) in tiled
                .as_slice()
                .iter()
                .zip(reference.as_slice().iter())
                .enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads} idx={idx}");
            }
        }
    }

    #[test]
    fn default_path_is_the_tiled_kernel_result() {
        let series = synthetic_series(50, 19, 99);
        let via_default = correlation_matrix(&series);
        let reference = correlation_matrix_reference(&series);
        for (a, b) in via_default
            .as_slice()
            .iter()
            .zip(reference.as_slice().iter())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn ragged_series_fall_back_to_reference() {
        let series = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![4.0, 3.0, 2.0],
            vec![1.0, 3.0, 2.0, 4.0],
        ];
        assert!(ZProfile::build(&series).is_none());
        let m = correlation_matrix(&series);
        let reference = correlation_matrix_reference(&series);
        for (a, b) in m.as_slice().iter().zip(reference.as_slice().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fused_dissimilarity_matches_mapped_path() {
        let series = synthetic_series(33, 17, 3);
        let (corr, diss, stats) = correlation_and_dissimilarity(&series);
        let reference = correlation_matrix_reference(&series);
        let mapped = dissimilarity_from_correlation(&reference);
        for (a, b) in corr.as_slice().iter().zip(reference.as_slice().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in diss.as_slice().iter().zip(mapped.as_slice().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let only = dissimilarity_matrix(&series);
        for (a, b) in only.as_slice().iter().zip(mapped.as_slice().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(stats.output_bytes, 2 * 33 * 33 * 8);
    }

    #[test]
    fn f32_mode_is_the_rounded_f64_kernel() {
        let series = synthetic_series(29, 21, 7);
        let (corr, _) = correlation_matrix_with(&series, TileConfig::default());
        let (corr32, stats) = correlation_matrix_f32(&series, TileConfig::default());
        for i in 0..29 {
            for j in 0..29 {
                assert_eq!(
                    corr32.get(i, j),
                    (corr.get(i, j) as f32) as f64,
                    "({i},{j})"
                );
            }
        }
        assert_eq!(stats.output_bytes, 29 * 29 * 4);
        assert_eq!(stats.output_bytes * 2, 29 * 29 * 8);
    }

    #[test]
    fn kernel_stats_bound_peak_intermediates() {
        let n = 96;
        let len = 46;
        let series = synthetic_series(n, len, 11);
        let (_, stats) = correlation_matrix_with(&series, TileConfig::default());
        // The only intermediate is the flat z-profile: exactly 8·n·L
        // bytes, which for L ≤ n + T is within "1×n² plus one tile band"
        // — far below the old kernel's ~3×n² of Vec<Vec> intermediates.
        assert_eq!(stats.peak_intermediate_bytes, 8 * n * len);
        assert!(stats.peak_intermediate_bytes <= 8 * n * (n + stats.tile));
        assert_eq!(stats.n, n);
        assert_eq!(stats.series_len, len);
    }

    #[test]
    fn dissimilarity_transform_bounds() {
        let series = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![4.0, 3.0, 2.0, 1.0],
            vec![1.0, 3.0, 2.0, 4.0],
        ];
        let c = correlation_matrix(&series);
        let d = dissimilarity_from_correlation(&c);
        for i in 0..3 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..3 {
                assert!(d.get(i, j) >= 0.0 && d.get(i, j) <= 2.0 + 1e-12);
            }
        }
        // Perfectly anti-correlated pair is at the maximum distance 2.
        assert!((d.get(0, 1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_yields_empty_matrix() {
        let series: Vec<Vec<f64>> = Vec::new();
        let m = correlation_matrix(&series);
        assert_eq!(m.n(), 0);
        let (m2, stats) = correlation_matrix_with(&series, TileConfig::default());
        assert_eq!(m2.n(), 0);
        assert_eq!(stats.tiles_computed, 0);
    }
}
