//! A catalogue mirroring Table II of the paper: the 18 UCR archive data
//! sets used in the evaluation, with their sizes, series lengths and class
//! counts.
//!
//! The real UCR archive is not available offline; each entry generates a
//! synthetic data set (via [`crate::time_series`]) with the same `n`, `L`
//! and number of classes, so the benchmark harnesses sweep the same problem
//! sizes the paper reports. A `scale` parameter shrinks `n` and `L`
//! proportionally for laptop-sized runs.

use crate::time_series::{TimeSeriesConfig, TimeSeriesDataset};

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UcrDatasetSpec {
    /// Data-set id as used in the paper's figures (1–18).
    pub id: usize,
    /// Data-set name.
    pub name: &'static str,
    /// Number of objects `n`.
    pub n: usize,
    /// Length (or size) of each object `L`.
    pub length: usize,
    /// Number of ground-truth classes.
    pub num_classes: usize,
}

impl UcrDatasetSpec {
    /// Generates a synthetic stand-in data set of this spec, optionally
    /// scaled down. `scale = 1.0` reproduces the full Table II size;
    /// `scale = 0.1` keeps 10% of the objects (at least 8 per class) and
    /// caps the series length at 256 samples.
    pub fn generate(&self, scale: f64, seed: u64) -> TimeSeriesDataset {
        let n = ((self.n as f64 * scale).round() as usize)
            .max(self.num_classes * 8)
            .min(self.n);
        let length = if scale >= 1.0 {
            self.length
        } else {
            self.length.min(256)
        };
        let config = TimeSeriesConfig {
            num_series: n,
            length,
            num_classes: self.num_classes,
            noise: 0.35,
            seed: seed ^ (self.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        TimeSeriesDataset::generate(self.name, &config)
    }
}

/// The 18 data sets of Table II.
pub fn ucr_catalogue() -> Vec<UcrDatasetSpec> {
    vec![
        UcrDatasetSpec {
            id: 1,
            name: "Mallat",
            n: 2400,
            length: 1024,
            num_classes: 8,
        },
        UcrDatasetSpec {
            id: 2,
            name: "UWaveGestureLibraryAll",
            n: 4478,
            length: 945,
            num_classes: 8,
        },
        UcrDatasetSpec {
            id: 3,
            name: "NonInvasiveFetalECGThorax2",
            n: 3765,
            length: 750,
            num_classes: 42,
        },
        UcrDatasetSpec {
            id: 4,
            name: "MixedShapesRegularTrain",
            n: 2925,
            length: 1024,
            num_classes: 5,
        },
        UcrDatasetSpec {
            id: 5,
            name: "MixedShapesSmallTrain",
            n: 2525,
            length: 1024,
            num_classes: 5,
        },
        UcrDatasetSpec {
            id: 6,
            name: "ECG5000",
            n: 5000,
            length: 140,
            num_classes: 5,
        },
        UcrDatasetSpec {
            id: 7,
            name: "NonInvasiveFetalECGThorax1",
            n: 3765,
            length: 750,
            num_classes: 42,
        },
        UcrDatasetSpec {
            id: 8,
            name: "StarLightCurves",
            n: 9236,
            length: 84,
            num_classes: 2,
        },
        UcrDatasetSpec {
            id: 9,
            name: "HandOutlines",
            n: 1370,
            length: 2709,
            num_classes: 2,
        },
        UcrDatasetSpec {
            id: 10,
            name: "UWaveGestureLibraryX",
            n: 4478,
            length: 315,
            num_classes: 8,
        },
        UcrDatasetSpec {
            id: 11,
            name: "CBF",
            n: 930,
            length: 128,
            num_classes: 3,
        },
        UcrDatasetSpec {
            id: 12,
            name: "InsectWingbeatSound",
            n: 2200,
            length: 256,
            num_classes: 11,
        },
        UcrDatasetSpec {
            id: 13,
            name: "UWaveGestureLibraryY",
            n: 4478,
            length: 315,
            num_classes: 8,
        },
        UcrDatasetSpec {
            id: 14,
            name: "ShapesAll",
            n: 1200,
            length: 512,
            num_classes: 60,
        },
        UcrDatasetSpec {
            id: 15,
            name: "SonyAIBORobotSurface2",
            n: 980,
            length: 65,
            num_classes: 2,
        },
        UcrDatasetSpec {
            id: 16,
            name: "FreezerSmallTrain",
            n: 2878,
            length: 301,
            num_classes: 2,
        },
        UcrDatasetSpec {
            id: 17,
            name: "Crop",
            n: 19412,
            length: 46,
            num_classes: 24,
        },
        UcrDatasetSpec {
            id: 18,
            name: "ElectricDevices",
            n: 16160,
            length: 96,
            num_classes: 7,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_table_two() {
        let catalogue = ucr_catalogue();
        assert_eq!(catalogue.len(), 18);
        // Spot-check a few rows against Table II.
        let ecg = catalogue.iter().find(|d| d.name == "ECG5000").unwrap();
        assert_eq!(
            (ecg.id, ecg.n, ecg.length, ecg.num_classes),
            (6, 5000, 140, 5)
        );
        let crop = catalogue.iter().find(|d| d.name == "Crop").unwrap();
        assert_eq!(
            (crop.id, crop.n, crop.length, crop.num_classes),
            (17, 19412, 46, 24)
        );
        let star = catalogue
            .iter()
            .find(|d| d.name == "StarLightCurves")
            .unwrap();
        assert_eq!((star.id, star.n, star.num_classes), (8, 9236, 2));
        // Ids are 1..=18 and unique.
        let mut ids: Vec<usize> = catalogue.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=18).collect::<Vec<_>>());
    }

    #[test]
    fn scaled_generation_respects_class_count() {
        let spec = ucr_catalogue()[5]; // ECG5000
        let ds = spec.generate(0.05, 1);
        assert!(ds.len() <= spec.n);
        assert!(ds.len() >= spec.num_classes * 8);
        assert_eq!(ds.num_classes(), spec.num_classes);
        assert!(ds.series_length() <= 256);
    }

    #[test]
    fn full_scale_preserves_table_dimensions() {
        let spec = UcrDatasetSpec {
            id: 99,
            name: "Tiny",
            n: 60,
            length: 32,
            num_classes: 3,
        };
        let ds = spec.generate(1.0, 3);
        assert_eq!(ds.len(), 60);
        assert_eq!(ds.series_length(), 32);
        assert_eq!(ds.num_classes(), 3);
    }

    #[test]
    fn generation_is_seed_dependent_but_deterministic() {
        let spec = ucr_catalogue()[10]; // CBF
        let a = spec.generate(0.1, 7);
        let b = spec.generate(0.1, 7);
        let c = spec.generate(0.1, 8);
        assert_eq!(a.series, b.series);
        assert_ne!(a.series, c.series);
    }
}
