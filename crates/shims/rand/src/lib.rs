//! Offline stand-in for the `rand` crate (0.8-era API).
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of `rand` the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! [`Rng::gen_bool`], and [`rngs::StdRng`].
//!
//! [`rngs::StdRng`] here is **not** the ChaCha12 generator of the real
//! crate — it is xoshiro256++ seeded via SplitMix64 (the seeding scheme
//! recommended by the xoshiro authors). It is deterministic for a given
//! seed, passes the statistical needs of the synthetic data generators, and
//! is *not* cryptographically secure. Streams therefore differ from real
//! `rand`; all quality thresholds in the workspace's tests were calibrated
//! against this generator.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`],
/// mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw 64-bit generator interface, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`. Implemented for
/// every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range. Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be in [0, 1], got {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire's method,
/// without the rejection step — the bias is ≤ 2⁻⁶⁴·bound, irrelevant for
/// the synthetic-data use here).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = end as i128 - start as i128 + 1;
                if span > u64::MAX as i128 {
                    // Full-width range (e.g. 0..=u64::MAX): every bit
                    // pattern is a valid sample, no bounding needed.
                    return (start as i128 + rng.next_u64() as i128) as $ty;
                }
                (start as i128 + bounded_u64(rng, span as u64) as i128) as $ty
            }
        }
    )*};
}
impl_int_sample_range!(usize, u32, u64, i32, i64);

// Only `f64` on purpose: a second float impl would leave `{float}` literal
// ranges ambiguous under inference (real rand leans on its `SampleUniform`
// machinery here), and the workspace samples no `f32`.
impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // `unit < 1` but the multiply-add can round up to `end` (e.g.
        // 0.8 + ((2⁵³−1)/2⁵³)·0.4 == 1.2 exactly); keep the documented
        // half-open contract by clamping to the largest value below `end`.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. See the crate docs for how this differs from
    /// real `rand`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    /// SplitMix64 step, used to expand the 64-bit seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference
            // implementation, transcribed).
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&y));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let n = rng.gen_range(-10..10i64);
            assert!((-10..10).contains(&n));
        }
    }

    #[test]
    fn integer_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_width_inclusive_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut any_large = false;
        for _ in 0..100 {
            let x = rng.gen_range(0..=u64::MAX);
            any_large |= x > u64::MAX / 2;
            let y = rng.gen_range(i64::MIN..=i64::MAX);
            any_large |= y > 0;
        }
        // A full-width sample must not collapse to the range start.
        assert!(any_large);
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }
}
