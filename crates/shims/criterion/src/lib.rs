//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of the criterion 0.5 API the workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`]/[`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], and [`Bencher::iter`] — backed by a plain
//! `Instant`-based timer instead of criterion's statistical machinery.
//!
//! Each benchmark warms up once, then runs `sample_size` timed iterations
//! (clamped so a single benchmark stays under roughly a second) and prints
//! mean / min / max wall-clock times in a `group/function/param` line
//! compatible with `grep`-based result collection. There is no outlier
//! rejection, bootstrap CI, or HTML report.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{id}"), 100, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a sample size, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `self.name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group. A no-op in the shim; kept for source compatibility.
    pub fn finish(self) {}
}

/// A `group/function/parameter` benchmark label, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: format!("{function}"),
            parameter: format!("{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    requested_samples: usize,
}

/// Cap on the total measured time per benchmark, so shim runs of the full
/// suite stay interactive even when a single iteration is slow.
const TIME_BUDGET: Duration = Duration::from_secs(1);

impl Bencher {
    /// Runs `routine` once to warm up, then repeatedly with timing until
    /// the sample count or the per-benchmark time budget is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.requested_samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        requested_samples: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "{label:<50} mean {:>12?} min {:>12?} max {:>12?} ({} samples)",
        mean,
        min,
        max,
        bencher.samples.len()
    );
}

/// Declares a function running a list of benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counter", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let data = vec![1u64, 2, 3];
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| seen = d.iter().sum())
        });
        assert_eq!(seen, 6);
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(format!("{}", BenchmarkId::new("sort", 100)), "sort/100");
    }
}
