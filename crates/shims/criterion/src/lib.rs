//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of the criterion 0.5 API the workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`]/[`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], and [`Bencher::iter`] — backed by a plain
//! `Instant`-based timer instead of criterion's statistical machinery.
//!
//! Each benchmark warms up once, then runs `sample_size` timed iterations
//! (clamped so a single benchmark stays under a per-benchmark time budget)
//! and prints mean / median ± stddev / min / max wall-clock times plus an
//! IQR outlier count in a `group/function/param` line compatible with
//! `grep`-based result collection. There is no bootstrap CI or HTML report.
//!
//! Two reporting extras beyond plain printing:
//!
//! * **Machine-readable records** — every run appends its stats to
//!   `target/bench-records/BENCH_<binary>.json` (override the directory
//!   with `BENCH_RECORD_DIR`), a JSON array with one object per benchmark,
//!   so the perf trajectory can be collected across commits.
//! * **Quick mode** — passing `--quick` to the bench binary (i.e.
//!   `cargo bench --bench primitives -- --quick`) caps every benchmark at
//!   a handful of samples and a tenth of the time budget, for CI smoke
//!   jobs where only "does it run and report" matters.

use std::fmt;
use std::io::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Cap on the total measured time per benchmark, so shim runs of the full
/// suite stay interactive even when a single iteration is slow.
const TIME_BUDGET: Duration = Duration::from_secs(1);

/// Sample cap applied in `--quick` mode.
const QUICK_SAMPLE_CAP: usize = 5;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: std::env::args().any(|a| a == "--quick"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let quick = self.quick;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            quick,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{id}"), 100, self.quick, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a sample size, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    quick: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.quick,
            &mut f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input under `self.name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.quick,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group. A no-op in the shim; kept for source compatibility.
    pub fn finish(self) {}
}

/// A `group/function/parameter` benchmark label, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: format!("{function}"),
            parameter: format!("{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    requested_samples: usize,
    time_budget: Duration,
}

impl Bencher {
    /// Runs `routine` once to warm up, then repeatedly with timing until
    /// the sample count or the per-benchmark time budget is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.requested_samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > self.time_budget {
                break;
            }
        }
    }
}

/// Summary statistics over one benchmark's samples.
#[derive(Debug, Clone, Copy)]
struct Stats {
    samples: usize,
    mean: Duration,
    median: Duration,
    stddev: Duration,
    min: Duration,
    max: Duration,
    /// Samples outside `[q1 - 1.5·IQR, q3 + 1.5·IQR]`.
    iqr_outliers: usize,
}

/// The p-th (0..=100) percentile of ascending `sorted`, by linear
/// interpolation between closest ranks.
fn percentile_ns(sorted: &[u128], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0] as f64;
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    let fraction = rank - low as f64;
    sorted[low] as f64 + (sorted[high] as f64 - sorted[low] as f64) * fraction
}

fn compute_stats(samples: &[Duration]) -> Stats {
    debug_assert!(!samples.is_empty());
    let mut ns: Vec<u128> = samples.iter().map(Duration::as_nanos).collect();
    ns.sort_unstable();
    let count = ns.len();
    let total: u128 = ns.iter().sum();
    let mean_ns = total as f64 / count as f64;
    let variance = ns
        .iter()
        .map(|&x| {
            let d = x as f64 - mean_ns;
            d * d
        })
        .sum::<f64>()
        / count as f64;
    let q1 = percentile_ns(&ns, 25.0);
    let q3 = percentile_ns(&ns, 75.0);
    let iqr = q3 - q1;
    let (low_fence, high_fence) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let iqr_outliers = ns
        .iter()
        .filter(|&&x| (x as f64) < low_fence || (x as f64) > high_fence)
        .count();
    let from_ns = |x: f64| Duration::from_nanos(x.max(0.0).round() as u64);
    Stats {
        samples: count,
        mean: from_ns(mean_ns),
        median: from_ns(percentile_ns(&ns, 50.0)),
        stddev: from_ns(variance.sqrt()),
        min: Duration::from_nanos(ns[0] as u64),
        max: Duration::from_nanos(ns[count - 1] as u64),
        iqr_outliers,
    }
}

/// One benchmark's stats as a single-line JSON object. Hand-rolled — the
/// offline build has no `serde` — with the label as the only string field.
fn stats_to_json(bench: &str, label: &str, stats: &Stats) -> String {
    fn json_str(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
    format!(
        "{{\"bench\":{},\"label\":{},\"samples\":{},\"mean_ns\":{},\"median_ns\":{},\"stddev_ns\":{},\"min_ns\":{},\"max_ns\":{},\"iqr_outliers\":{}}}",
        json_str(bench),
        json_str(label),
        stats.samples,
        stats.mean.as_nanos(),
        stats.median.as_nanos(),
        stats.stddev.as_nanos(),
        stats.min.as_nanos(),
        stats.max.as_nanos(),
        stats.iqr_outliers,
    )
}

/// Strips cargo's trailing `-<16 hex>` dedup hash from a binary stem, if
/// present.
fn strip_cargo_hash(name: &str) -> &str {
    match name.rsplit_once('-') {
        Some((stem, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            stem
        }
        _ => name,
    }
}

/// The bench binary's stem with cargo's dedup hash removed.
fn bench_binary_name() -> String {
    let name = std::env::args()
        .next()
        .as_deref()
        .map(std::path::Path::new)
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "unknown".to_string());
    strip_cargo_hash(&name).to_string()
}

/// Accumulated records for this process, rewritten to disk after each
/// benchmark so a partial run still leaves a valid JSON file.
static RECORDS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Default record directory: `<target>/bench-records`, derived from the
/// bench executable's location (`<target>/<profile>/deps/<bin>`), because
/// cargo runs benches with the *package* directory as CWD, which for a
/// workspace member is not where `target/` lives.
fn default_record_dir() -> std::path::PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.ancestors().nth(3).map(std::path::Path::to_path_buf))
        .unwrap_or_else(|| std::path::PathBuf::from("target"))
        .join("bench-records")
}

fn append_record(json_line: String) {
    let mut records = RECORDS.lock().expect("bench records lock");
    records.push(json_line);
    let dir = std::env::var_os("BENCH_RECORD_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_record_dir);
    let path = dir.join(format!("BENCH_{}.json", bench_binary_name()));
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        let mut file = std::fs::File::create(&path)?;
        writeln!(file, "[")?;
        for (i, record) in records.iter().enumerate() {
            let comma = if i + 1 < records.len() { "," } else { "" };
            writeln!(file, "  {record}{comma}")?;
        }
        writeln!(file, "]")
    };
    if let Err(err) = write() {
        eprintln!(
            "warning: could not write bench record {}: {err}",
            path.display()
        );
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, quick: bool, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        requested_samples: if quick {
            sample_size.min(QUICK_SAMPLE_CAP)
        } else {
            sample_size
        },
        time_budget: if quick { TIME_BUDGET / 10 } else { TIME_BUDGET },
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} no samples recorded");
        return;
    }
    let stats = compute_stats(&bencher.samples);
    println!(
        "{label:<50} mean {:>11?} median {:>11?} ± {:>9?} min {:>11?} max {:>11?} ({} samples, {} outliers)",
        stats.mean, stats.median, stats.stddev, stats.min, stats.max, stats.samples, stats.iqr_outliers,
    );
    append_record(stats_to_json(&bench_binary_name(), label, &stats));
}

/// Declares a function running a list of benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The record-writing tests deliberately do not override
    // `BENCH_RECORD_DIR`: `std::env::set_var` from concurrent libtest
    // threads races `getenv` elsewhere in the process (UB on glibc).
    // Records land in the default `<target>/bench-records/`, which is
    // harmless.

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counter", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let data = vec![1u64, 2, 3];
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| seen = d.iter().sum())
        });
        assert_eq!(seen, 6);
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(format!("{}", BenchmarkId::new("sort", 100)), "sort/100");
    }

    #[test]
    fn stats_median_stddev_and_outliers() {
        // Nine 10µs samples and one wild 1ms outlier.
        let mut samples = vec![Duration::from_micros(10); 9];
        samples.push(Duration::from_millis(1));
        let stats = compute_stats(&samples);
        assert_eq!(stats.samples, 10);
        assert_eq!(stats.median, Duration::from_micros(10));
        assert_eq!(stats.min, Duration::from_micros(10));
        assert_eq!(stats.max, Duration::from_millis(1));
        assert_eq!(stats.iqr_outliers, 1);
        // mean = (9·10µs + 1000µs) / 10 = 109µs.
        assert_eq!(stats.mean, Duration::from_micros(109));
        // stddev of [10×9, 1000] µs is 297µs.
        assert_eq!(stats.stddev.as_micros(), 297);
    }

    #[test]
    fn stats_uniform_samples_have_no_spread() {
        let samples = vec![Duration::from_micros(50); 7];
        let stats = compute_stats(&samples);
        assert_eq!(stats.mean, Duration::from_micros(50));
        assert_eq!(stats.median, Duration::from_micros(50));
        assert_eq!(stats.stddev, Duration::ZERO);
        assert_eq!(stats.iqr_outliers, 0);
    }

    #[test]
    fn json_record_is_well_formed() {
        let samples = vec![Duration::from_nanos(100), Duration::from_nanos(200)];
        let stats = compute_stats(&samples);
        let json = stats_to_json("primitives", "group/\"fn\"/10", &stats);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"bench\":\"primitives\""));
        assert!(json.contains("\"label\":\"group/\\\"fn\\\"/10\""));
        assert!(json.contains("\"samples\":2"));
        assert!(json.contains("\"mean_ns\":150"));
        assert!(json.contains("\"median_ns\":150"));
        assert!(json.contains("\"min_ns\":100"));
        assert!(json.contains("\"max_ns\":200"));
        assert!(json.contains("\"iqr_outliers\":0"));
    }

    #[test]
    fn binary_name_strips_cargo_hash() {
        // A 16-hex suffix is cargo's dedup hash; anything else is part of
        // the name.
        assert_eq!(
            strip_cargo_hash("primitives-15361f11535712a4"),
            "primitives"
        );
        assert_eq!(strip_cargo_hash("primitives"), "primitives");
        assert_eq!(strip_cargo_hash("end-to-end"), "end-to-end");
        assert_eq!(
            strip_cargo_hash("bench-15361f11535712aZ"),
            "bench-15361f11535712aZ"
        );
    }
}
