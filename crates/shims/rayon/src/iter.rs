//! Lazy, fused parallel iterators.
//!
//! The old shim evaluated every adapter eagerly, materialising a `Vec`
//! between `map`, `filter`, and friends — a chain of k adapters cost k
//! fork–join rounds and k allocations. This module replaces that with
//! rayon-style lazy adapters fused through a consumer chain:
//!
//! * A pipeline is only executed when a terminal operation
//!   ([`ParallelIterator::collect`], [`ParallelIterator::for_each`],
//!   [`ParallelIterator::reduce`], …) calls [`ParallelIterator::drive`]
//!   with a [`Consumer`].
//! * Each adapter implements `drive` by *wrapping the consumer* (a
//!   [`Map`] wraps it in a consumer that maps each element before
//!   forwarding) and delegating to its base, so by the time execution
//!   reaches the base source the whole chain has collapsed into one
//!   composed sequential closure.
//! * The base source (a slice, a `Vec`, a range, or mutable chunks)
//!   splits its index space into contiguous pieces whose boundaries are a
//!   function of the length only, hands them to the work-stealing
//!   executor's split tree (`crate::pool`), and runs the fused closure
//!   once per piece — a chain of k adapters costs **one** split tree and
//!   no intermediate allocation. Which thread runs a piece is decided by
//!   stealing at run time; which elements form a piece never is.
//!
//! Ordering guarantees match the old shim (and rayon): pieces are
//! contiguous and combined in input order, so `collect` preserves order
//! and `fold`/`reduce` see chunk accumulators left to right.
//!
//! [`IndexedParallelIterator`] marks pipelines whose elements still have
//! known positions (sources, [`Zip`], [`Enumerate`]); only those can be
//! zipped or enumerated, mirroring rayon's indexed requirement.

use std::iter::Sum;

use crate::pool;

/// A sequential reducer for one piece of a parallel pipeline. Adapters wrap
/// consumers; base sources call [`Consumer::consume`] once per piece, on
/// worker threads, through a shared reference.
pub trait Consumer<T>: Sync {
    /// Per-piece result, combined by the terminal operation in piece order.
    type Result: Send;
    /// Reduces one piece's elements.
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> Self::Result;
}

/// A lazy parallel iterator: a pipeline description that executes on the
/// persistent pool when a terminal operation is called.
pub trait ParallelIterator: Sized {
    /// Element type of the pipeline.
    type Item: Send;

    /// Executes the pipeline: splits the underlying source into pieces,
    /// runs `consumer` over each piece on the pool, and returns the
    /// per-piece results in input order. This is the only method adapters
    /// implement; everything else is derived.
    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> Vec<C::Result>;

    /// Lazy parallel map.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Lazy parallel filter, preserving input order.
    fn filter<P>(self, pred: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, pred }
    }

    /// Lazy parallel filter-map, preserving input order.
    fn filter_map<U, F>(self, f: F) -> FilterMap<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> Option<U> + Sync + Send,
    {
        FilterMap { base: self, f }
    }

    /// Rayon-style fold: one accumulator per piece, to be combined with
    /// [`ParallelIterator::reduce`].
    fn fold<Acc, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        Acc: Send,
        ID: Fn() -> Acc + Sync + Send,
        F: Fn(Acc, Self::Item) -> Acc + Sync + Send,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    /// Clones each referenced element, like `Iterator::cloned`.
    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        T: 'a + Clone + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Cloned { base: self }
    }

    /// Copies each referenced element, like `Iterator::copied`.
    fn copied<'a, T>(self) -> Copied<Self>
    where
        T: 'a + Copy + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Copied { base: self }
    }

    /// Pairs every element with its index. Requires an indexed pipeline,
    /// as in rayon.
    fn enumerate(self) -> Enumerate<Self>
    where
        Self: IndexedParallelIterator,
    {
        Enumerate { base: self }
    }

    /// Zips with another indexed pipeline, truncating to the shorter one.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        Self: IndexedParallelIterator,
        B: IndexedParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Runs `f` on every element, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.drive(ForEachConsumer { f });
    }

    /// Reduces all elements with `op`, starting each piece from
    /// `identity()`. `op` must be associative for a deterministic result,
    /// as in rayon.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        let partials = self.drive(ReduceConsumer {
            identity: &identity,
            op: &op,
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Sums the elements piece-wise, then sums the piece totals.
    fn sum<S>(self) -> S
    where
        S: Send + Sum<Self::Item> + Sum<S>,
    {
        self.drive(SumConsumer::<S> {
            _marker: std::marker::PhantomData,
        })
        .into_iter()
        .sum()
    }

    /// Minimum element (`None` when empty). Ties resolve to the first
    /// minimum, like `Iterator::min`.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.drive(MinConsumer)
            .into_iter()
            .flatten()
            .reduce(|best, candidate| if candidate < best { candidate } else { best })
    }

    /// Maximum element (`None` when empty). Ties resolve to the last
    /// maximum, like `Iterator::max`.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.drive(MaxConsumer)
            .into_iter()
            .flatten()
            .reduce(|best, candidate| if candidate >= best { candidate } else { best })
    }

    /// Element minimising `key` (`None` when empty); first minimum wins
    /// ties, like `Iterator::min_by_key`.
    fn min_by_key<K, F>(self, key: F) -> Option<Self::Item>
    where
        K: Ord + Send,
        F: Fn(&Self::Item) -> K + Sync + Send,
    {
        self.drive(KeyedExtremumConsumer {
            key: &key,
            min: true,
        })
        .into_iter()
        .flatten()
        .reduce(|best, candidate| {
            if candidate.0 < best.0 {
                candidate
            } else {
                best
            }
        })
        .map(|(_, item)| item)
    }

    /// Element maximising `key` (`None` when empty); last maximum wins
    /// ties, like `Iterator::max_by_key`.
    fn max_by_key<K, F>(self, key: F) -> Option<Self::Item>
    where
        K: Ord + Send,
        F: Fn(&Self::Item) -> K + Sync + Send,
    {
        self.drive(KeyedExtremumConsumer {
            key: &key,
            min: false,
        })
        .into_iter()
        .flatten()
        .reduce(|best, candidate| {
            if candidate.0 >= best.0 {
                candidate
            } else {
                best
            }
        })
        .map(|(_, item)| item)
    }

    /// Number of elements that survive the pipeline.
    fn count(self) -> usize {
        self.drive(CountConsumer).into_iter().sum()
    }

    /// Collects into any `FromIterator` container, in input order.
    fn collect<B: FromIterator<Self::Item>>(self) -> B {
        self.drive(CollectConsumer).into_iter().flatten().collect()
    }
}

/// A pipeline whose elements still have known positions: only these can be
/// split at aligned boundaries, which `zip` and `enumerate` require.
pub trait IndexedParallelIterator: ParallelIterator {
    /// The sequential iterator driving one piece.
    type SeqIter: Iterator<Item = Self::Item> + Send;

    /// Exact number of elements.
    fn len(&self) -> usize;

    /// `true` when the pipeline has no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits the first `len` elements (`len <= self.len()`) into exactly
    /// `pieces` contiguous iterators: piece `i` covers
    /// `[i * ceil(len / pieces), min((i + 1) * ceil(len / pieces), len))`.
    /// Every implementation uses the same boundary formula so zipped sides
    /// stay aligned.
    fn split_into(self, len: usize, pieces: usize) -> Vec<Self::SeqIter>;

    /// The strictest `with_max_len` hint applied anywhere in this
    /// pipeline, propagated through indexed adapters so the hint survives
    /// a later `enumerate`/`zip`/`cloned`/`copied`.
    fn max_len_hint(&self) -> Option<usize> {
        None
    }

    /// Caps pieces at `max_len` elements, mirroring rayon's
    /// `IndexedParallelIterator::with_max_len`. Use it to declare items
    /// *heavy* (each one a whole sub-computation, e.g. one Dijkstra run):
    /// the executor then splits even short inputs — which its cheap-item
    /// heuristic would run inline — down to `max_len`-sized leaves that
    /// work stealing can balance. The piece decomposition stays a
    /// function of `(len, max_len)` only, so determinism across worker
    /// counts is unaffected.
    fn with_max_len(self, max_len: usize) -> WithMaxLen<Self> {
        WithMaxLen {
            base: self,
            max_len: max_len.max(1),
        }
    }
}

/// Piece boundaries shared by every `split_into` implementation.
pub(crate) fn piece_bounds(len: usize, pieces: usize) -> impl Iterator<Item = (usize, usize)> {
    let piece_len = len.div_ceil(pieces.max(1)).max(1);
    (0..pieces).map(move |i| {
        let start = (i * piece_len).min(len);
        let end = ((i + 1) * piece_len).min(len);
        (start, end)
    })
}

/// Executes an indexed pipeline: decide the piece count (honouring any
/// `with_max_len` hint in the chain), split, and deal the pieces to the
/// pool.
fn drive_indexed<S, C>(source: S, consumer: C) -> Vec<C::Result>
where
    S: IndexedParallelIterator,
    C: Consumer<S::Item>,
{
    let len = source.len();
    let pieces = match source.max_len_hint() {
        Some(max_len) => pool::decide_pieces_max_len(len, max_len),
        None => pool::decide_pieces(len),
    };
    let iters = source.split_into(len, pieces);
    consume_pieces(iters, consumer)
}

/// Runs `consumer` over each piece on the pool, results in piece order.
fn consume_pieces<I, C>(pieces: Vec<I>, consumer: C) -> Vec<C::Result>
where
    I: Iterator + Send,
    I::Item: Send,
    C: Consumer<I::Item>,
{
    let consumer = &consumer;
    pool::run_batch_owned(pieces, move |iter| consumer.consume(iter))
}

// ---------------------------------------------------------------------------
// Base sources
// ---------------------------------------------------------------------------

/// Parallel iterator over a borrowed slice (`.par_iter()`).
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceSource<'a, T> {
    type Item = &'a T;
    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> Vec<C::Result> {
        drive_indexed(self, consumer)
    }
}

impl<'a, T: Sync> IndexedParallelIterator for SliceSource<'a, T> {
    type SeqIter = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_into(self, len: usize, pieces: usize) -> Vec<Self::SeqIter> {
        piece_bounds(len, pieces)
            .map(|(start, end)| self.slice[start..end].iter())
            .collect()
    }
}

/// Parallel iterator over an owned `Vec` (`.into_par_iter()`).
pub struct VecSource<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecSource<T> {
    type Item = T;
    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> Vec<C::Result> {
        drive_indexed(self, consumer)
    }
}

impl<T: Send> IndexedParallelIterator for VecSource<T> {
    type SeqIter = std::vec::IntoIter<T>;
    fn len(&self) -> usize {
        self.vec.len()
    }
    fn split_into(mut self, len: usize, pieces: usize) -> Vec<Self::SeqIter> {
        // One pass of moves at the source; the rest of the pipeline is
        // fused, so this is the only materialisation.
        self.vec.truncate(len);
        if pieces <= 1 {
            return vec![self.vec.into_iter()];
        }
        let piece_len = len.div_ceil(pieces).max(1);
        let mut out = Vec::with_capacity(pieces);
        let mut items = self.vec.into_iter();
        for _ in 0..pieces {
            let piece: Vec<T> = items.by_ref().take(piece_len).collect();
            out.push(piece.into_iter());
        }
        out
    }
}

/// Parallel iterator over an integer range (`(a..b).into_par_iter()`).
///
/// A wrapper rather than an impl on `std::ops::Range` itself, so that
/// importing the prelude never makes sequential `.map()`/`.zip()` calls on
/// ranges ambiguous (real rayon wraps for the same reason).
pub struct RangeSource<T> {
    range: std::ops::Range<T>,
}

macro_rules! impl_range_source {
    ($($ty:ty),*) => {$(
        impl ParallelIterator for RangeSource<$ty> {
            type Item = $ty;
            fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> Vec<C::Result> {
                drive_indexed(self, consumer)
            }
        }

        impl IndexedParallelIterator for RangeSource<$ty> {
            type SeqIter = std::ops::Range<$ty>;
            fn len(&self) -> usize {
                if self.range.end > self.range.start {
                    (self.range.end - self.range.start) as usize
                } else {
                    0
                }
            }
            fn split_into(self, len: usize, pieces: usize) -> Vec<Self::SeqIter> {
                piece_bounds(len, pieces)
                    .map(|(start, end)| {
                        (self.range.start + start as $ty)..(self.range.start + end as $ty)
                    })
                    .collect()
            }
        }
    )*};
}
impl_range_source!(usize, u32, u64, i32, i64);

/// Parallel iterator over non-overlapping mutable chunks of a slice
/// (`.par_chunks_mut(size)`), mirroring `rayon::slice::ChunksMut`.
///
/// Indexed (chunk positions are known), so it can be `enumerate`d — the
/// idiom for writing independent output rows in place, e.g. the per-source
/// rows of an all-pairs shortest-path matrix.
pub struct ChunksMutSource<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ChunksMutSource<'a, T> {
    pub(crate) fn new(slice: &'a mut [T], chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        ChunksMutSource { slice, chunk_size }
    }
}

impl<'a, T: Send> ParallelIterator for ChunksMutSource<'a, T> {
    type Item = &'a mut [T];
    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> Vec<C::Result> {
        drive_indexed(self, consumer)
    }
}

impl<'a, T: Send> IndexedParallelIterator for ChunksMutSource<'a, T> {
    type SeqIter = std::slice::ChunksMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }
    fn split_into(self, len: usize, pieces: usize) -> Vec<Self::SeqIter> {
        // `len` counts chunks (possibly truncated by `zip`); pieces are
        // dealt in whole chunks so piece boundaries align with chunk
        // boundaries on every side of a zip.
        let covered = self.slice.len().min(len.saturating_mul(self.chunk_size));
        let (mut head, _) = self.slice.split_at_mut(covered);
        let mut consumed = 0;
        piece_bounds(len, pieces)
            .map(|(start, end)| {
                let lo = (start * self.chunk_size).min(covered);
                let hi = (end * self.chunk_size).min(covered);
                debug_assert_eq!(lo, consumed);
                let (piece, rest) = std::mem::take(&mut head).split_at_mut(hi - lo);
                head = rest;
                consumed = hi;
                piece.chunks_mut(self.chunk_size)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Indexed adapters: with_max_len, enumerate, zip
// ---------------------------------------------------------------------------

/// Lazy `with_max_len`: caps piece sizes, declaring items heavy. See
/// [`IndexedParallelIterator::with_max_len`].
pub struct WithMaxLen<S> {
    base: S,
    max_len: usize,
}

impl<S: IndexedParallelIterator> ParallelIterator for WithMaxLen<S> {
    type Item = S::Item;
    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> Vec<C::Result> {
        drive_indexed(self, consumer)
    }
}

impl<S: IndexedParallelIterator> IndexedParallelIterator for WithMaxLen<S> {
    type SeqIter = S::SeqIter;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_into(self, len: usize, pieces: usize) -> Vec<Self::SeqIter> {
        self.base.split_into(len, pieces)
    }
    fn max_len_hint(&self) -> Option<usize> {
        // Nested hints compose to the strictest one.
        Some(match self.base.max_len_hint() {
            Some(inner) => inner.min(self.max_len),
            None => self.max_len,
        })
    }
}

/// Lazy `enumerate`: pairs elements with their global indices.
pub struct Enumerate<S> {
    base: S,
}

impl<S: IndexedParallelIterator> ParallelIterator for Enumerate<S> {
    type Item = (usize, S::Item);
    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> Vec<C::Result> {
        drive_indexed(self, consumer)
    }
}

impl<S: IndexedParallelIterator> IndexedParallelIterator for Enumerate<S> {
    type SeqIter = std::iter::Zip<std::ops::Range<usize>, S::SeqIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_into(self, len: usize, pieces: usize) -> Vec<Self::SeqIter> {
        let bounds: Vec<(usize, usize)> = piece_bounds(len, pieces).collect();
        self.base
            .split_into(len, pieces)
            .into_iter()
            .zip(bounds)
            .map(|(iter, (start, end))| (start..end).zip(iter))
            .collect()
    }
    fn max_len_hint(&self) -> Option<usize> {
        self.base.max_len_hint()
    }
}

/// Lazy `zip`: pairs two indexed pipelines element-wise, truncated to the
/// shorter side. Both sides split at the same boundaries, so pieces stay
/// aligned.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn drive<C: Consumer<Self::Item>>(self, consumer: C) -> Vec<C::Result> {
        drive_indexed(self, consumer)
    }
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_into(self, len: usize, pieces: usize) -> Vec<Self::SeqIter> {
        self.a
            .split_into(len, pieces)
            .into_iter()
            .zip(self.b.split_into(len, pieces))
            .map(|(a, b)| a.zip(b))
            .collect()
    }
    fn max_len_hint(&self) -> Option<usize> {
        match (self.a.max_len_hint(), self.b.max_len_hint()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (hint, None) | (None, hint) => hint,
        }
    }
}

// ---------------------------------------------------------------------------
// Fused adapters: implemented by wrapping the downstream consumer
// ---------------------------------------------------------------------------

/// Lazy `map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

struct MapConsumer<F, C> {
    f: F,
    inner: C,
}

impl<T, U, F, C> Consumer<T> for MapConsumer<F, C>
where
    U: Send,
    F: Fn(T) -> U + Sync,
    C: Consumer<U>,
{
    type Result = C::Result;
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> C::Result {
        self.inner.consume(iter.map(|x| (self.f)(x)))
    }
}

impl<S, U, F> ParallelIterator for Map<S, F>
where
    S: ParallelIterator,
    U: Send,
    F: Fn(S::Item) -> U + Sync + Send,
{
    type Item = U;
    fn drive<C: Consumer<U>>(self, consumer: C) -> Vec<C::Result> {
        self.base.drive(MapConsumer {
            f: self.f,
            inner: consumer,
        })
    }
}

/// Lazy `filter` adapter.
pub struct Filter<S, P> {
    base: S,
    pred: P,
}

struct FilterConsumer<P, C> {
    pred: P,
    inner: C,
}

impl<T, P, C> Consumer<T> for FilterConsumer<P, C>
where
    P: Fn(&T) -> bool + Sync,
    C: Consumer<T>,
{
    type Result = C::Result;
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> C::Result {
        self.inner.consume(iter.filter(|x| (self.pred)(x)))
    }
}

impl<S, P> ParallelIterator for Filter<S, P>
where
    S: ParallelIterator,
    P: Fn(&S::Item) -> bool + Sync + Send,
{
    type Item = S::Item;
    fn drive<C: Consumer<S::Item>>(self, consumer: C) -> Vec<C::Result> {
        self.base.drive(FilterConsumer {
            pred: self.pred,
            inner: consumer,
        })
    }
}

/// Lazy `filter_map` adapter.
pub struct FilterMap<S, F> {
    base: S,
    f: F,
}

struct FilterMapConsumer<F, C> {
    f: F,
    inner: C,
}

impl<T, U, F, C> Consumer<T> for FilterMapConsumer<F, C>
where
    U: Send,
    F: Fn(T) -> Option<U> + Sync,
    C: Consumer<U>,
{
    type Result = C::Result;
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> C::Result {
        self.inner.consume(iter.filter_map(|x| (self.f)(x)))
    }
}

impl<S, U, F> ParallelIterator for FilterMap<S, F>
where
    S: ParallelIterator,
    U: Send,
    F: Fn(S::Item) -> Option<U> + Sync + Send,
{
    type Item = U;
    fn drive<C: Consumer<U>>(self, consumer: C) -> Vec<C::Result> {
        self.base.drive(FilterMapConsumer {
            f: self.f,
            inner: consumer,
        })
    }
}

/// Lazy rayon-style `fold` adapter: yields one accumulator per piece.
pub struct Fold<S, ID, F> {
    base: S,
    identity: ID,
    fold_op: F,
}

struct FoldConsumer<ID, F, C> {
    identity: ID,
    fold_op: F,
    inner: C,
}

impl<T, Acc, ID, F, C> Consumer<T> for FoldConsumer<ID, F, C>
where
    Acc: Send,
    ID: Fn() -> Acc + Sync,
    F: Fn(Acc, T) -> Acc + Sync,
    C: Consumer<Acc>,
{
    type Result = C::Result;
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> C::Result {
        let acc = iter.fold((self.identity)(), |acc, x| (self.fold_op)(acc, x));
        self.inner.consume(std::iter::once(acc))
    }
}

impl<S, Acc, ID, F> ParallelIterator for Fold<S, ID, F>
where
    S: ParallelIterator,
    Acc: Send,
    ID: Fn() -> Acc + Sync + Send,
    F: Fn(Acc, S::Item) -> Acc + Sync + Send,
{
    type Item = Acc;
    fn drive<C: Consumer<Acc>>(self, consumer: C) -> Vec<C::Result> {
        self.base.drive(FoldConsumer {
            identity: self.identity,
            fold_op: self.fold_op,
            inner: consumer,
        })
    }
}

/// Lazy `cloned` adapter.
pub struct Cloned<S> {
    base: S,
}

struct ClonedConsumer<C> {
    inner: C,
}

impl<'a, T, C> Consumer<&'a T> for ClonedConsumer<C>
where
    T: 'a + Clone + Send + Sync,
    C: Consumer<T>,
{
    type Result = C::Result;
    fn consume<I: Iterator<Item = &'a T>>(&self, iter: I) -> C::Result {
        self.inner.consume(iter.cloned())
    }
}

impl<'a, T, S> ParallelIterator for Cloned<S>
where
    T: 'a + Clone + Send + Sync,
    S: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    fn drive<C: Consumer<T>>(self, consumer: C) -> Vec<C::Result> {
        self.base.drive(ClonedConsumer { inner: consumer })
    }
}

impl<'a, T, S> IndexedParallelIterator for Cloned<S>
where
    T: 'a + Clone + Send + Sync,
    S: IndexedParallelIterator<Item = &'a T>,
{
    type SeqIter = std::iter::Cloned<S::SeqIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_into(self, len: usize, pieces: usize) -> Vec<Self::SeqIter> {
        self.base
            .split_into(len, pieces)
            .into_iter()
            .map(Iterator::cloned)
            .collect()
    }
    fn max_len_hint(&self) -> Option<usize> {
        self.base.max_len_hint()
    }
}

/// Lazy `copied` adapter.
pub struct Copied<S> {
    base: S,
}

struct CopiedConsumer<C> {
    inner: C,
}

impl<'a, T, C> Consumer<&'a T> for CopiedConsumer<C>
where
    T: 'a + Copy + Send + Sync,
    C: Consumer<T>,
{
    type Result = C::Result;
    fn consume<I: Iterator<Item = &'a T>>(&self, iter: I) -> C::Result {
        self.inner.consume(iter.copied())
    }
}

impl<'a, T, S> ParallelIterator for Copied<S>
where
    T: 'a + Copy + Send + Sync,
    S: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    fn drive<C: Consumer<T>>(self, consumer: C) -> Vec<C::Result> {
        self.base.drive(CopiedConsumer { inner: consumer })
    }
}

impl<'a, T, S> IndexedParallelIterator for Copied<S>
where
    T: 'a + Copy + Send + Sync,
    S: IndexedParallelIterator<Item = &'a T>,
{
    type SeqIter = std::iter::Copied<S::SeqIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_into(self, len: usize, pieces: usize) -> Vec<Self::SeqIter> {
        self.base
            .split_into(len, pieces)
            .into_iter()
            .map(Iterator::copied)
            .collect()
    }
    fn max_len_hint(&self) -> Option<usize> {
        self.base.max_len_hint()
    }
}

// ---------------------------------------------------------------------------
// Terminal consumers
// ---------------------------------------------------------------------------

struct ForEachConsumer<F> {
    f: F,
}

impl<T, F: Fn(T) + Sync> Consumer<T> for ForEachConsumer<F> {
    type Result = ();
    fn consume<I: Iterator<Item = T>>(&self, iter: I) {
        iter.for_each(|x| (self.f)(x));
    }
}

struct ReduceConsumer<'a, ID, OP> {
    identity: &'a ID,
    op: &'a OP,
}

impl<T, ID, OP> Consumer<T> for ReduceConsumer<'_, ID, OP>
where
    T: Send,
    ID: Fn() -> T + Sync,
    OP: Fn(T, T) -> T + Sync,
{
    type Result = T;
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> T {
        iter.fold((self.identity)(), |a, b| (self.op)(a, b))
    }
}

struct SumConsumer<S> {
    // `fn() -> S` keeps the consumer `Sync` without requiring `S: Sync`.
    _marker: std::marker::PhantomData<fn() -> S>,
}

impl<T, S> Consumer<T> for SumConsumer<S>
where
    S: Send + Sum<T>,
{
    type Result = S;
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> S {
        iter.sum()
    }
}

struct MinConsumer;

impl<T: Ord + Send> Consumer<T> for MinConsumer {
    type Result = Option<T>;
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> Option<T> {
        iter.min()
    }
}

struct MaxConsumer;

impl<T: Ord + Send> Consumer<T> for MaxConsumer {
    type Result = Option<T>;
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> Option<T> {
        iter.max()
    }
}

struct KeyedExtremumConsumer<'a, F> {
    key: &'a F,
    min: bool,
}

impl<T, K, F> Consumer<T> for KeyedExtremumConsumer<'_, F>
where
    T: Send,
    K: Ord + Send,
    F: Fn(&T) -> K + Sync,
{
    type Result = Option<(K, T)>;
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> Option<(K, T)> {
        let keyed = iter.map(|x| ((self.key)(&x), x));
        if self.min {
            // First minimum wins, like `Iterator::min_by_key`.
            keyed.reduce(|best, candidate| {
                if candidate.0 < best.0 {
                    candidate
                } else {
                    best
                }
            })
        } else {
            // Last maximum wins, like `Iterator::max_by_key`.
            keyed.reduce(|best, candidate| {
                if candidate.0 >= best.0 {
                    candidate
                } else {
                    best
                }
            })
        }
    }
}

struct CountConsumer;

impl<T> Consumer<T> for CountConsumer {
    type Result = usize;
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> usize {
        iter.count()
    }
}

struct CollectConsumer;

impl<T: Send> Consumer<T> for CollectConsumer {
    type Result = Vec<T>;
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> Vec<T> {
        iter.collect()
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type of the resulting iterator.
    type Item: Send;
    /// The pipeline source type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a lazy parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecSource<T>;
    fn into_par_iter(self) -> VecSource<T> {
        VecSource { vec: self }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;
            type Iter = RangeSource<$ty>;
            fn into_par_iter(self) -> Self::Iter {
                RangeSource { range: self }
            }
        }
    )*};
}
impl_range_into_par_iter!(usize, u32, u64, i32, i64);

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`
/// (the trait behind `.par_iter()` on slices and `Vec`s).
pub trait IntoParallelRefIterator<'a> {
    /// Element type of the resulting iterator (a shared reference).
    type Item: Send;
    /// The pipeline source type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterates the elements of `self` by reference.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceSource<'a, T>;
    fn par_iter(&'a self) -> SliceSource<'a, T> {
        SliceSource { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceSource<'a, T>;
    fn par_iter(&'a self) -> SliceSource<'a, T> {
        SliceSource { slice: self }
    }
}
