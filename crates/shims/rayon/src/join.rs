//! The `join` fork–join primitive, mirroring `rayon::join`.
//!
//! `join(a, b)` publishes `b` as a stealable job pointing into this stack
//! frame, runs `a` inline, then reclaims `b`:
//!
//! * **Not stolen** (the common case when every thread is busy): `b` is
//!   popped back off the deque and run inline. Total scheduling cost: one
//!   deque push and one pop — no allocation, no condvar, no result boxing.
//!   This is what makes adaptive splitting cheap enough to apply at every
//!   level of a split tree.
//! * **Stolen**: the caller *helps* until the thief finishes — it steals
//!   and executes other pool jobs, and parks on the pool condvar only when
//!   there is nothing left to steal (`pool::wait_for_latch`). Waiting
//!   never blocks a thread while useful work exists, so nested `join`s on
//!   the same pool cannot deadlock.
//!
//! # Panics
//!
//! Panics propagate like in rayon: if `a` panics, `join` first settles `b`
//! (cancels it if un-stolen, waits for the thief otherwise), then re-raises
//! `a`'s payload; if only `b` panics, its payload is re-raised after `a`
//! completes. If both panic, `a`'s payload wins and `b`'s is dropped.
//!
//! # Safety argument
//!
//! The [`StackJob`] for `b` lives on this frame, and this frame never
//! returns (or unwinds) before the job is either popped back un-executed or
//! its `done` flag is set — so a published [`JobRef`] never dangles. The
//! thief's final action is the `SeqCst` store of `done` (after which it
//! never touches the job again: the post-completion wake-up touches only
//! pool state, which is kept alive by `Arc`s independent of this frame),
//! and the caller reads the result only after an `Acquire` load of `done`
//! observes `true`, so the result write happens-before the read.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::pool::{self, JobRef, PoolState};

/// Runs `oper_a` and `oper_b` potentially in parallel and returns both
/// results. See the module docs for scheduling and panic semantics; on a
/// single-threaded configuration both closures run sequentially inline.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match pool::dispatch_pool() {
        Some(pool) => join_in(&pool, oper_a, oper_b),
        None => {
            let ra = oper_a();
            let rb = oper_b();
            (ra, rb)
        }
    }
}

/// [`join`] against an already-resolved pool (saves the dispatch lookup on
/// the split-tree hot path).
pub(crate) fn join_in<A, B, RA, RB>(pool: &Arc<PoolState>, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(oper_b);
    // SAFETY: this frame pins `job_b` until it is popped back or done
    // (every path below guarantees one of the two before returning or
    // unwinding).
    let ref_b = unsafe { job_b.as_job_ref() };
    pool::push_job(pool, ref_b);

    let ra = match catch_unwind(AssertUnwindSafe(oper_a)) {
        Ok(ra) => ra,
        Err(payload) => {
            if !pool::pop_job_if(pool, &ref_b) {
                // Stolen: the thief holds a pointer into this frame, so
                // we must not unwind past it until the job completes.
                pool::wait_for_latch(pool, &job_b.done);
            }
            // Un-stolen `b` is cancelled: popped and dropped unexecuted.
            resume_unwind(payload);
        }
    };

    if pool::pop_job_if(pool, &ref_b) {
        // Fast path — nobody stole `b`: run it inline, panics propagate
        // directly (the job is out of every deque, nothing references it).
        let rb = job_b.run_inline();
        (ra, rb)
    } else {
        pool::wait_for_latch(pool, &job_b.done);
        // SAFETY: `done` was observed `true` with Acquire ordering, so the
        // thief's result/panic write happens-before this read, and nobody
        // else touches the job anymore.
        match unsafe { job_b.take_outcome() } {
            Ok(rb) => (ra, rb),
            Err(payload) => resume_unwind(payload),
        }
    }
}

/// A fork–join job allocated on the forking frame's stack.
struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<R>>,
    panic: UnsafeCell<Option<Box<dyn Any + Send>>>,
    /// Completion flag: set (`SeqCst`) as the thief's final touch of this
    /// memory; `pool::wait_for_latch` blocks on it and `PoolState::park`
    /// re-checks it while committing to sleep.
    done: AtomicBool,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> Self {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            panic: UnsafeCell::new(None),
            done: AtomicBool::new(false),
        }
    }

    /// # Safety
    /// The caller must keep `self` alive until the job is executed or
    /// reclaimed via [`pool::pop_job_if`].
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self as *const Self as *const (), Self::execute_erased)
    }

    /// Entry point for thieves, reached through [`JobRef::execute`].
    ///
    /// # Safety
    /// Called at most once per job, while the owning frame pins it.
    unsafe fn execute_erased(data: *const (), pool: &PoolState) {
        let job = &*(data as *const Self);
        let f = (*job.f.get()).take().expect("stack job executed once");
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(result) => *job.result.get() = Some(result),
            Err(payload) => *job.panic.get() = Some(payload),
        }
        job.done.store(true, Ordering::SeqCst);
        // Wake a caller possibly parked on this flag. Touches only pool
        // state — the job's frame may be gone the instant `done` is set.
        pool.wake_all();
    }

    /// Runs the closure on the current thread (un-stolen fast path).
    /// Panics propagate directly.
    fn run_inline(self) -> R {
        let f = self.f.into_inner().expect("stack job executed once");
        f()
    }

    /// # Safety
    /// Only after `done` was observed `true` with at least Acquire
    /// ordering; consumes the outcome.
    unsafe fn take_outcome(&self) -> Result<R, Box<dyn Any + Send>> {
        if let Some(payload) = (*self.panic.get()).take() {
            return Err(payload);
        }
        Ok((*self.result.get())
            .take()
            .expect("completed stack job stored its result"))
    }
}
