//! Parallel comparison sorts for `par_sort_by` / `par_sort_unstable_by`.
//!
//! The algorithm is a parallel merge sort shaped around the pool's
//! batch-of-tasks primitive and the constraint that `T` is only `Send` (no
//! `Clone`/`Copy`, so elements can only be moved via swaps):
//!
//! 1. **Run sort** — the slice is split into one contiguous run per worker
//!    and each run is sorted in place, in parallel, with the std sort
//!    (stable or unstable to match the caller).
//! 2. **Index merge** — sorted runs are merged pairwise into *index*
//!    vectors (`order[k]` = position in the slice of the k-th smallest
//!    element). Each round merges adjacent pairs in parallel; `log2(runs)`
//!    rounds produce one permutation covering the whole slice. Ties take
//!    the left (earlier) run's element first, which makes the stable
//!    variant stable end to end.
//! 3. **Permutation apply** — the permutation is inverted and applied with
//!    cycle-following swaps, O(n) swaps and no comparator calls.
//!
//! A comparator panic unwinds through steps 1–2 while the slice holds an
//! unspecified permutation of its original elements (std sorts and the
//! read-only merges never duplicate or lose elements), matching rayon's
//! contract. The permutation apply runs no user code, so it cannot panic.

use std::cmp::Ordering;

use crate::pool;

/// Below this length (or on a single-threaded pool) the std sorts are used
/// directly: they are highly optimised and the merge machinery only pays
/// for itself once several workers sort runs concurrently.
pub(crate) const MIN_PAR_SORT_LEN: usize = 4096;

/// Sorts `v` by `cmp` on the current pool. `stable` selects the std sort
/// used for the per-run pass; the index merge preserves run order either
/// way, so stability is exactly that of the run sort.
///
/// The parallel path is taken only when the pool *and the hardware* offer
/// parallelism: on a single-core machine an oversubscribed pool (e.g.
/// `RAYON_NUM_THREADS=4` on 1-CPU CI) can only add merge overhead, so the
/// std sorts are used regardless of the configured worker count.
pub(crate) fn par_merge_sort_by<T, F>(v: &mut [T], cmp: &F, stable: bool)
where
    T: Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    // The core-count probe is uncached by std on Linux (sched_getaffinity
    // + cgroup reads); cache it — sorts run once per TMFG round.
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let cores = *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let threads = pool::effective_parallelism();
    if threads <= 1 || cores <= 1 || v.len() < MIN_PAR_SORT_LEN {
        if stable {
            v.sort_by(cmp);
        } else {
            v.sort_unstable_by(cmp);
        }
        return;
    }
    par_merge_sort_impl(v, cmp, stable, threads);
}

/// The ungated parallel merge sort. Split out so tests (and only tests)
/// can exercise the parallel machinery even on single-core CI machines,
/// where [`par_merge_sort_by`] deliberately falls back to std sorts.
pub(crate) fn par_merge_sort_impl<T, F>(v: &mut [T], cmp: &F, stable: bool, threads: usize)
where
    T: Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = v.len();
    if threads <= 1 || n < 2 {
        if stable {
            v.sort_by(cmp);
        } else {
            v.sort_unstable_by(cmp);
        }
        return;
    }

    // ---- 1. sort one run per worker, in parallel ----
    let run_len = n.div_ceil(threads).max(MIN_PAR_SORT_LEN / 2);
    pool::run_batch_owned(v.chunks_mut(run_len).collect(), |run: &mut [T]| {
        if stable {
            run.sort_by(cmp);
        } else {
            run.sort_unstable_by(cmp);
        }
    });

    // ---- 2. merge runs pairwise into a permutation of indices ----
    // A run paired with its merge partner; the last run of an odd round
    // has none and passes through.
    type RunPair = (Vec<usize>, Option<Vec<usize>>);
    let mut runs: Vec<Vec<usize>> = (0..n.div_ceil(run_len))
        .map(|r| (r * run_len..((r + 1) * run_len).min(n)).collect())
        .collect();
    let v_read: &[T] = v;
    while runs.len() > 1 {
        let mut pairs: Vec<RunPair> = Vec::new();
        let mut drain = runs.drain(..);
        while let Some(left) = drain.next() {
            pairs.push((left, drain.next()));
        }
        drop(drain);
        runs = pool::run_batch_owned(pairs, |(left, right): RunPair| match right {
            Some(right) => merge_indices(v_read, &left, &right, cmp),
            None => left,
        });
    }
    let order = runs.pop().expect("non-empty slice has one final run");

    // ---- 3. apply the permutation in place ----
    apply_order(v, &order);
}

/// Merges two sorted index runs over `v` into one sorted index vector.
/// Ties take from `left` first, preserving stability.
fn merge_indices<T, F>(v: &[T], left: &[usize], right: &[usize], cmp: &F) -> Vec<usize>
where
    F: Fn(&T, &T) -> Ordering,
{
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        if cmp(&v[right[j]], &v[left[i]]) == Ordering::Less {
            out.push(right[j]);
            j += 1;
        } else {
            out.push(left[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    out
}

/// Rearranges `v` so that `v_new[k] = v_old[order[k]]`, using
/// cycle-following swaps on the inverse permutation.
fn apply_order<T>(v: &mut [T], order: &[usize]) {
    // inverse[src] = dest: where the element currently at `src` must go.
    let mut inverse = vec![0usize; order.len()];
    for (dest, &src) in order.iter().enumerate() {
        inverse[src] = dest;
    }
    for i in 0..v.len() {
        while inverse[i] != i {
            let j = inverse[i];
            v.swap(i, j);
            inverse.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The hardware gate in `par_merge_sort_by` means the public path may
    // legitimately use std sorts on single-core CI machines, so the
    // parallel machinery is exercised here through `par_merge_sort_impl`
    // directly, under an installed (possibly oversubscribed) pool.

    fn with_pool<R>(threads: usize, op: impl FnOnce() -> R) -> R {
        crate::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(op)
    }

    #[test]
    fn parallel_path_matches_std_large() {
        let mut v: Vec<i64> = (0..50_000)
            .map(|i| (i * 2_654_435_761_i64) % 10_007)
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        with_pool(4, || {
            par_merge_sort_impl(&mut v, &|a, b| a.cmp(b), false, 4)
        });
        assert_eq!(v, expected);
    }

    #[test]
    fn parallel_path_is_stable() {
        let mut v: Vec<(i64, usize)> = (0..30_000).map(|i| ((i as i64 * 31) % 10, i)).collect();
        with_pool(4, || {
            par_merge_sort_impl(&mut v, &|a, b| a.0.cmp(&b.0), true, 4)
        });
        for pair in v.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            if pair[0].0 == pair[1].0 {
                assert!(pair[0].1 < pair[1].1, "stability violated: {pair:?}");
            }
        }
    }

    #[test]
    fn parallel_path_propagates_comparator_panic() {
        let mut v: Vec<i64> = (0..20_000).rev().collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_pool(4, || {
                par_merge_sort_impl(
                    &mut v,
                    &|a: &i64, b: &i64| {
                        if *a == 13 && *b != 13 {
                            panic!("comparator panic");
                        }
                        a.cmp(b)
                    },
                    false,
                    4,
                )
            })
        }));
        assert!(caught.is_err());
        // The slice still holds a permutation of the original elements.
        let mut recovered = v.clone();
        recovered.sort_unstable();
        assert_eq!(recovered, (0..20_000).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_path_tiny_inputs() {
        let mut empty: Vec<i64> = Vec::new();
        par_merge_sort_impl(&mut empty, &|a: &i64, b: &i64| a.cmp(b), true, 4);
        assert!(empty.is_empty());
        let mut one = vec![9i64];
        par_merge_sort_impl(&mut one, &|a, b| a.cmp(b), false, 4);
        assert_eq!(one, vec![9]);
        let mut few = vec![3i64, 1, 2];
        with_pool(4, || {
            par_merge_sort_impl(&mut few, &|a, b| a.cmp(b), true, 4)
        });
        assert_eq!(few, vec![1, 2, 3]);
    }

    #[test]
    fn merge_prefers_left_on_ties() {
        let v = [(1, 'a'), (1, 'b'), (0, 'c')];
        // left run: indices 0 (key 1); right run: indices 2, 1 (keys 0, 1).
        let merged = merge_indices(&v, &[0], &[2, 1], &|a, b| a.0.cmp(&b.0));
        assert_eq!(merged, vec![2, 0, 1]);
    }

    #[test]
    fn apply_order_permutes_in_place() {
        let mut v = vec!['a', 'b', 'c', 'd'];
        apply_order(&mut v, &[2, 0, 3, 1]);
        assert_eq!(v, vec!['c', 'a', 'd', 'b']);
    }

    #[test]
    fn apply_order_identity_and_reversal() {
        let mut v: Vec<usize> = (0..100).collect();
        let identity: Vec<usize> = (0..100).collect();
        apply_order(&mut v, &identity);
        assert_eq!(v, identity);
        let reversal: Vec<usize> = (0..100).rev().collect();
        apply_order(&mut v, &reversal);
        assert_eq!(v, reversal);
    }
}
