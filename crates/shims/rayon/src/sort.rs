//! Buffer-based parallel merge sort for `par_sort_by` /
//! `par_sort_unstable_by`.
//!
//! The PR 2 implementation merged sorted runs into *index* vectors
//! (`order[k]` = slice position of the k-th smallest element) and applied
//! the final permutation with cycle-following swaps. That kept `T` move-
//! only but cost `O(n log runs)` extra index traffic and allocations, and
//! — because the merge phase read the slice through shared references
//! across workers — forced `T: Sync` on the public sorts, a documented
//! divergence from real rayon. This version merges *elements* through a
//! scratch buffer instead, and needs only `T: Send`:
//!
//! 1. **Run decomposition** — the slice is cut into runs at boundaries
//!    that are a function of the length **only** (never the worker
//!    count), so the sort is byte-for-byte deterministic across
//!    `RAYON_NUM_THREADS` and across steals.
//! 2. **Recursive sort via [`crate::join`]** — each node sorts its two
//!    halves (leaves use the std sorts in place, stable or unstable to
//!    match the caller) and then merges them.
//! 3. **Buffer-based parallel merge** — a node merges its two sorted
//!    halves into the matching range of one shared scratch buffer, then
//!    memcpy-moves the range back. The merge splits the *larger* run at
//!    its midpoint, binary-searches the partner for the matching split
//!    (ties keep left-run elements first, so the stable variant is stable
//!    end to end), and recurses over the two independent sub-merges via
//!    `join`; small sub-merges run sequentially.
//!
//! Every sub-problem owns *disjoint* ranges of the slice and the buffer,
//! so closures carry raw range pointers ([`SendPtr`]) rather than shared
//! slices — that disjointness (not `Sync`) is what makes cross-thread
//! access sound, exactly as in rayon's own sort internals.
//!
//! A comparator panic unwinds while the slice holds an unspecified
//! permutation of its original elements, matching rayon's contract: the
//! std run sorts guarantee it for leaves, and a merge writes only the
//! scratch buffer until it completes (the copy-back runs no user code).
//! The scratch buffer is plain capacity (length zero) and is deallocated
//! without dropping elements on every path.

use std::cmp::Ordering;
use std::ptr;

use pfg_audit::{DisjointWriteAudit, SendPtr};

use crate::pool;

/// Below this length (or on a single-threaded pool) the std sorts are used
/// directly: they are highly optimised and the merge machinery only pays
/// for itself once several workers sort runs concurrently.
pub(crate) const MIN_PAR_SORT_LEN: usize = 4096;

/// Target elements per leaf run. Boundaries derived from this depend only
/// on the input length, keeping the sort deterministic across worker
/// counts (see the module docs).
const RUN_TARGET_LEN: usize = MIN_PAR_SORT_LEN / 2;

/// Cap on the number of leaf runs, bounding split-tree depth on huge
/// inputs while leaving ample stealing slack for any plausible core count.
const MAX_RUNS: usize = 64;

/// Sub-merges at or below this many elements run sequentially.
const MERGE_SEQ_LEN: usize = 4096;

/// Sorts `v` by `cmp` on the current pool. `stable` selects the std sort
/// used for the leaf runs; the merge keeps left-run elements first on
/// ties, so stability is exactly that of the run sort.
///
/// The parallel path is taken only when the pool *and the hardware* offer
/// parallelism: on a single-core machine an oversubscribed pool (e.g.
/// `RAYON_NUM_THREADS=4` on 1-CPU CI) could only add merge overhead, so
/// the std sorts are used regardless of the configured worker count.
pub(crate) fn par_merge_sort_by<T, F>(v: &mut [T], cmp: &F, stable: bool)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if pool::effective_parallelism() <= 1
        || pool::hardware_parallelism() <= 1
        || v.len() < MIN_PAR_SORT_LEN
    {
        if stable {
            v.sort_by(cmp);
        } else {
            v.sort_unstable_by(cmp);
        }
        return;
    }
    par_merge_sort_impl(v, cmp, stable);
}

/// The ungated parallel merge sort. Split out so tests (and only tests)
/// can exercise the parallel machinery even on single-core CI machines,
/// where [`par_merge_sort_by`] deliberately falls back to std sorts.
pub(crate) fn par_merge_sort_impl<T, F>(v: &mut [T], cmp: &F, stable: bool)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = v.len();
    let runs = n.div_ceil(RUN_TARGET_LEN).clamp(1, MAX_RUNS);
    if runs < 2 {
        if stable {
            v.sort_by(cmp);
        } else {
            v.sort_unstable_by(cmp);
        }
        return;
    }
    let run_len = n.div_ceil(runs);
    // Scratch capacity only: length stays 0, so dropping `buf` deallocates
    // raw memory without dropping any `T` (merges move elements through it
    // bitwise and always move them back before completing).
    let mut buf: Vec<T> = Vec::with_capacity(n);
    let base = SendPtr::new(v.as_mut_ptr());
    let scratch = SendPtr::new(buf.as_mut_ptr());
    let audits = SortAudits {
        base: DisjointWriteAudit::ranges("sort slice"),
        scratch: DisjointWriteAudit::ranges("sort scratch"),
    };
    sort_runs(base, scratch, n, run_len, 0, runs, cmp, stable, &audits);
}

/// Shadow-write registries for the two buffers the sort writes: the slice
/// itself (leaf run sorts, copy-backs) and the scratch buffer (merge
/// output ranges). Claims are scoped to the writing phase, so temporally
/// nested ownership — a parent node reusing its completed children's
/// ranges — audits cleanly while concurrent overlap panics under
/// `--cfg pfg_racecheck`. (`SendPtr` itself is the shared wrapper from
/// `pfg_audit`; the disjointness the closures rely on is exactly what
/// these registries check.)
struct SortAudits {
    base: DisjointWriteAudit,
    scratch: DisjointWriteAudit,
}

/// Sorts the element range covered by leaf runs `[run_lo, run_hi)`:
/// recursively sorts both halves (in parallel via `join`), then merges
/// them through the scratch buffer.
#[allow(clippy::too_many_arguments)]
fn sort_runs<T, F>(
    base: SendPtr<T>,
    scratch: SendPtr<T>,
    n: usize,
    run_len: usize,
    run_lo: usize,
    run_hi: usize,
    cmp: &F,
    stable: bool,
    audits: &SortAudits,
) where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let lo = (run_lo * run_len).min(n);
    let hi = (run_hi * run_len).min(n);
    if run_hi - run_lo == 1 {
        let _claim = audits.base.claim_range(lo, hi);
        // SAFETY: this call has exclusive access to `[lo, hi)` (disjoint
        // leaf ranges), and `base` points at `n >= hi` valid elements.
        let run = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
        if stable {
            run.sort_by(cmp);
        } else {
            run.sort_unstable_by(cmp);
        }
        return;
    }
    let run_mid = run_lo + (run_hi - run_lo) / 2;
    let mid = (run_mid * run_len).min(n);
    crate::join(
        || {
            sort_runs(
                base, scratch, n, run_len, run_lo, run_mid, cmp, stable, audits,
            )
        },
        || {
            sort_runs(
                base, scratch, n, run_len, run_mid, run_hi, cmp, stable, audits,
            )
        },
    );
    // SAFETY: both halves of `[lo, hi)` are sorted and exclusively ours;
    // the matching scratch range is disjoint from every other node's.
    unsafe {
        par_merge(
            base.get().add(lo),
            mid - lo,
            base.get().add(mid),
            hi - mid,
            scratch.get().add(lo),
            cmp,
            audits,
            lo,
        );
        // The merge moved `[lo, hi)` into the scratch range; move it back.
        // No user code runs here, so this cannot unwind half-done.
        let _claim = audits.base.claim_range(lo, hi);
        ptr::copy_nonoverlapping(scratch.get().add(lo), base.get().add(lo), hi - lo);
    }
}

/// Merges the sorted runs `left[..left_len]` and `right[..right_len]` into
/// `out[..left_len + right_len]`, splitting the larger run at its midpoint
/// and recursing over the two independent sub-merges via `join`. Ties take
/// left-run elements first (stability).
///
/// # Safety
/// The caller must have exclusive access to all three ranges, and `out`
/// must not overlap the inputs. `out_off` is the absolute scratch offset
/// of `out` (audit bookkeeping only).
#[allow(clippy::too_many_arguments)]
unsafe fn par_merge<T, F>(
    left: *mut T,
    left_len: usize,
    right: *mut T,
    right_len: usize,
    out: *mut T,
    cmp: &F,
    audits: &SortAudits,
    out_off: usize,
) where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if left_len + right_len <= MERGE_SEQ_LEN {
        let _claim = audits
            .scratch
            .claim_range(out_off, out_off + left_len + right_len);
        seq_merge(left, left_len, right, right_len, out, cmp);
        return;
    }
    // Split the larger run at its midpoint and binary-search the partner:
    // elements equal to the pivot stay ordered left-run-first.
    let (left_at, right_at) = if left_len >= right_len {
        let left_at = left_len / 2;
        let pivot = &*left.add(left_at);
        let right_run = std::slice::from_raw_parts(right, right_len);
        // Strictly-less: right-run elements equal to the pivot sort after
        // it, i.e. into the second sub-merge.
        let right_at = right_run.partition_point(|x| cmp(x, pivot) == Ordering::Less);
        (left_at, right_at)
    } else {
        let right_at = right_len / 2;
        let pivot = &*right.add(right_at);
        let left_run = std::slice::from_raw_parts(left, left_len);
        // Less-or-equal: left-run elements equal to the pivot sort before
        // it, i.e. into the first sub-merge.
        let left_at = left_run.partition_point(|x| cmp(x, pivot) != Ordering::Greater);
        (left_at, right_at)
    };
    let (l, r, o) = (SendPtr::new(left), SendPtr::new(right), SendPtr::new(out));
    crate::join(
        move || {
            // SAFETY: `[0, left_at)` × `[0, right_at)` → out `[0, left_at
            // + right_at)` is disjoint from the sibling's ranges.
            unsafe {
                par_merge(
                    l.get(),
                    left_at,
                    r.get(),
                    right_at,
                    o.get(),
                    cmp,
                    audits,
                    out_off,
                )
            }
        },
        move || {
            // SAFETY: the complementary ranges, equally disjoint.
            unsafe {
                par_merge(
                    l.get().add(left_at),
                    left_len - left_at,
                    r.get().add(right_at),
                    right_len - right_at,
                    o.get().add(left_at + right_at),
                    cmp,
                    audits,
                    out_off + left_at + right_at,
                )
            }
        },
    );
}

/// Sequential two-run merge by bitwise moves. Ties take `left` first.
///
/// # Safety
/// As for [`par_merge`]. Elements are duplicated bitwise into `out`; the
/// caller must treat `out` as the owner afterwards (the copy-back in
/// [`sort_runs`] restores single ownership to the slice).
unsafe fn seq_merge<T, F>(
    left: *mut T,
    left_len: usize,
    right: *mut T,
    right_len: usize,
    out: *mut T,
    cmp: &F,
) where
    F: Fn(&T, &T) -> Ordering,
{
    let (mut l, mut r, mut o) = (0, 0, out);
    while l < left_len && r < right_len {
        if cmp(&*right.add(r), &*left.add(l)) == Ordering::Less {
            ptr::copy_nonoverlapping(right.add(r), o, 1);
            r += 1;
        } else {
            ptr::copy_nonoverlapping(left.add(l), o, 1);
            l += 1;
        }
        o = o.add(1);
    }
    ptr::copy_nonoverlapping(left.add(l), o, left_len - l);
    ptr::copy_nonoverlapping(right.add(r), o.add(left_len - l), right_len - r);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    // The hardware gate in `par_merge_sort_by` means the public path may
    // legitimately use std sorts on single-core CI machines, so the
    // parallel machinery is exercised here through `par_merge_sort_impl`
    // directly, under an installed (possibly oversubscribed) pool.

    fn with_pool<R>(threads: usize, op: impl FnOnce() -> R) -> R {
        crate::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(op)
    }

    #[test]
    fn parallel_path_matches_std_large() {
        let mut v: Vec<i64> = (0..50_000)
            .map(|i| (i * 2_654_435_761_i64) % 10_007)
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        with_pool(4, || par_merge_sort_impl(&mut v, &|a, b| a.cmp(b), false));
        assert_eq!(v, expected);
    }

    #[test]
    fn parallel_path_is_stable() {
        let mut v: Vec<(i64, usize)> = (0..30_000).map(|i| ((i as i64 * 31) % 10, i)).collect();
        with_pool(4, || {
            par_merge_sort_impl(&mut v, &|a, b| a.0.cmp(&b.0), true)
        });
        for pair in v.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            if pair[0].0 == pair[1].0 {
                assert!(pair[0].1 < pair[1].1, "stability violated: {pair:?}");
            }
        }
    }

    #[test]
    fn parallel_path_sorts_send_only_elements() {
        // `Cell<i64>` is `Send` but not `Sync` — the bound real rayon has
        // and the PR 2 index-merge sort could not meet. The merge phase
        // must stay correct with zero shared references to the elements.
        let mut v: Vec<Cell<i64>> = (0..40_000)
            .map(|i| Cell::new((i * 48_271) % 65_537))
            .collect();
        with_pool(4, || {
            par_merge_sort_impl(&mut v, &|a, b| a.get().cmp(&b.get()), true)
        });
        let got: Vec<i64> = v.iter().map(Cell::get).collect();
        let mut expected: Vec<i64> = (0..40_000).map(|i| (i * 48_271) % 65_537).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn parallel_path_deterministic_across_worker_counts() {
        let input: Vec<(i64, usize)> = (0..60_000).map(|i| ((i as i64 * 131) % 257, i)).collect();
        let mut reference = input.clone();
        with_pool(1, || {
            par_merge_sort_impl(&mut reference, &|a, b| a.0.cmp(&b.0), false)
        });
        for threads in [2, 4, 8] {
            let mut v = input.clone();
            with_pool(threads, || {
                par_merge_sort_impl(&mut v, &|a, b| a.0.cmp(&b.0), false)
            });
            assert_eq!(v, reference, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_path_propagates_comparator_panic() {
        let mut v: Vec<i64> = (0..20_000).rev().collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_pool(4, || {
                par_merge_sort_impl(
                    &mut v,
                    &|a: &i64, b: &i64| {
                        if *a == 13 && *b != 13 {
                            panic!("comparator panic");
                        }
                        a.cmp(b)
                    },
                    false,
                )
            })
        }));
        assert!(caught.is_err());
        // The slice still holds a permutation of the original elements.
        let mut recovered = v.clone();
        recovered.sort_unstable();
        assert_eq!(recovered, (0..20_000).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_path_no_leaks_with_owned_elements() {
        // Boxed elements through the full parallel path: Miri-style double
        // drops or leaks would abort/fail under the allocator checks in
        // debug runs, and the value check catches any lost element.
        let mut v: Vec<Box<i64>> = (0..10_000).map(|i| Box::new((i * 7_919) % 1_000)).collect();
        with_pool(4, || par_merge_sort_impl(&mut v, &|a, b| a.cmp(b), true));
        let mut expected: Vec<i64> = (0..10_000).map(|i| (i * 7_919) % 1_000).collect();
        expected.sort();
        assert_eq!(v.iter().map(|b| **b).collect::<Vec<_>>(), expected);
    }

    #[test]
    fn parallel_path_tiny_inputs() {
        let mut empty: Vec<i64> = Vec::new();
        par_merge_sort_impl(&mut empty, &|a: &i64, b: &i64| a.cmp(b), true);
        assert!(empty.is_empty());
        let mut one = vec![9i64];
        par_merge_sort_impl(&mut one, &|a, b| a.cmp(b), false);
        assert_eq!(one, vec![9]);
        let mut few = vec![3i64, 1, 2];
        with_pool(4, || par_merge_sort_impl(&mut few, &|a, b| a.cmp(b), true));
        assert_eq!(few, vec![1, 2, 3]);
    }

    #[test]
    fn seq_merge_prefers_left_on_ties() {
        let mut left = [(1, 'l')];
        let mut right = [(0, 'r'), (1, 'r')];
        let mut out: Vec<std::mem::MaybeUninit<(i32, char)>> = Vec::with_capacity(3);
        // SAFETY: exclusive stack arrays, out has capacity 3.
        let merged: Vec<(i32, char)> = unsafe {
            seq_merge(
                left.as_mut_ptr(),
                left.len(),
                right.as_mut_ptr(),
                right.len(),
                out.as_mut_ptr().cast(),
                &|a: &(i32, char), b: &(i32, char)| a.0.cmp(&b.0),
            );
            (0..3)
                .map(|i| out.as_ptr().cast::<(i32, char)>().add(i).read())
                .collect()
        };
        assert_eq!(merged, vec![(0, 'r'), (1, 'l'), (1, 'r')]);
    }
}
