//! The persistent thread-pool executor behind every parallel operation.
//!
//! The shim used to spawn fresh scoped threads on every adapter call (one
//! `std::thread::scope` round per `map`/`for_each`), which taxed fine-grained
//! fork–join hot loops such as TMFG gain recomputation. This module replaces
//! that with pools of long-lived workers that park on a condvar between
//! rounds, so a fork–join round costs a queue push plus wake-ups instead of
//! thread creation and teardown.
//!
//! # Architecture
//!
//! * [`PoolState`] — the shared state of one pool: a FIFO of [`Batch`]es,
//!   a condvar workers park on, and the worker count.
//! * A **batch** is one fork–join round: `total` tasks indexed `0..total`,
//!   dealt to whichever threads show up via an atomic claim counter
//!   (chunked task dealing — tasks are claimed one at a time, so a slow
//!   task does not stall the siblings behind a static partition).
//! * The **caller always helps**: after enqueueing a batch it claims and
//!   runs tasks itself until none are left unclaimed, then blocks on the
//!   batch's completion condvar for stragglers still running on workers.
//!   This makes every batch complete even with zero pool workers, which is
//!   what makes nested parallelism (a task running a nested batch on the
//!   same pool) deadlock-free: waiting only ever happens on strictly
//!   deeper batches.
//! * **Panic propagation**: worker-side panics are caught, the first
//!   payload is stashed, and the batch still counts down to completion;
//!   the caller re-raises the payload with `resume_unwind` once the batch
//!   is done, mirroring the old scoped-thread `join().expect(..)` behavior
//!   without poisoning the pool (workers survive and keep serving).
//! * The **global pool** is built lazily on first use, sized by the
//!   `RAYON_NUM_THREADS` environment variable when set (like real rayon),
//!   otherwise by `std::thread::available_parallelism`.
//! * [`install`](crate::ThreadPool::install) scopes a *caller-owned* pool
//!   onto the current thread via a thread-local: while the closure runs,
//!   every parallel operation on this thread (and, transitively, on that
//!   pool's workers) dispatches to that pool instead of the global one.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Minimum number of items before a parallel operation bothers dispatching
/// to the pool; below this the round-trip cost dominates the work.
pub(crate) const MIN_PAR_LEN: usize = 512;

/// Tasks dealt per worker in one batch. More pieces than workers gives the
/// claim counter room to load-balance uneven tasks; the piece count stays a
/// deterministic function of input length and worker count, so chunk-local
/// results (e.g. `fold` accumulators) are reproducible run to run.
const PIECES_PER_WORKER: usize = 4;

/// Minimum items per dealt piece, so piece bookkeeping never outweighs the
/// per-piece work.
const MIN_PIECE_LEN: usize = 128;

thread_local! {
    /// The pool that parallel operations on this thread dispatch to.
    /// `Some` inside [`crate::ThreadPool::install`] and on pool workers;
    /// `None` means "use the global pool".
    static CURRENT_POOL: RefCell<Option<Arc<PoolState>>> = const { RefCell::new(None) };
}

/// Shared state of one thread pool.
pub(crate) struct PoolState {
    /// Pending fork–join rounds, oldest first. Exhausted batches (all tasks
    /// claimed) are popped lazily by whoever finds them at the front.
    queue: Mutex<VecDeque<Arc<Batch>>>,
    /// Parks idle workers; notified on every batch push and on shutdown.
    work_cv: Condvar,
    /// Parallelism this pool was built for. Only `num_threads - 1` worker
    /// threads exist — the batch caller always helps, taking the last
    /// slot, so `num_threads` threads compute concurrently.
    pub(crate) num_threads: usize,
    /// Set by [`ThreadPool`](crate::ThreadPool) drop; workers exit once the
    /// queue is drained.
    shutdown: AtomicBool,
}

/// One fork–join round: `total` tasks dealt through an atomic claim counter.
struct Batch {
    /// Type-erased task runner; `runner(i)` runs task `i` and never unwinds
    /// (panics are caught and stashed inside the typed closure).
    ///
    /// The pointee lives on the stack frame of [`run_batch`], which blocks
    /// until `done == total`, so the pointer never dangles while reachable:
    /// a worker only dereferences it between a successful claim and the
    /// matching `done` increment.
    runner: RunnerPtr,
    total: usize,
    /// Next unclaimed task index; claims at or past `total` fail.
    next: AtomicUsize,
    /// Completed task count, paired with `done_cv` for the caller's wait.
    done: Mutex<usize>,
    done_cv: Condvar,
}

struct RunnerPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is a `Sync` closure shared for the duration of the
// batch; `run_batch` keeps it alive until every task has completed (see the
// field docs on `Batch::runner`).
unsafe impl Send for RunnerPtr {}
unsafe impl Sync for RunnerPtr {}

impl Batch {
    /// Claims the next task index, or `None` when all are claimed.
    fn claim(&self) -> Option<usize> {
        // Opportunistic check so exhausted batches don't keep bumping the
        // counter from every worker that peeks at them.
        if self.next.load(Ordering::Relaxed) >= self.total {
            return None;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }

    /// Runs one claimed task and counts it done, waking the caller when it
    /// was the last one.
    fn run_one(&self, i: usize) {
        // SAFETY: `i` was claimed, so the batch is not yet complete and
        // `run_batch` is still pinning the pointee (see `runner` docs).
        unsafe { (*self.runner.0)(i) };
        let mut done = self.done.lock().expect("batch done lock");
        *done += 1;
        if *done == self.total {
            self.done_cv.notify_all();
        }
    }
}

impl PoolState {
    /// Creates a pool advertising `num_threads` of parallelism, spawning
    /// `num_threads - 1` parked workers: the batch caller always helps, so
    /// it occupies the remaining slot and the number of threads computing
    /// concurrently equals `num_threads` (not `num_threads + 1`).
    pub(crate) fn spawn(num_threads: usize) -> (Arc<Self>, Vec<std::thread::JoinHandle<()>>) {
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            num_threads,
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..num_threads.saturating_sub(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name("rayon-shim-worker".into())
                    .spawn(move || worker_loop(state))
                    .expect("spawn rayon-shim worker")
            })
            .collect();
        (state, workers)
    }

    /// Tells workers to exit once the queue is drained and wakes them.
    /// The flag is stored while holding the queue mutex: a worker holds
    /// that mutex from its last shutdown check until it parks on the
    /// condvar, so the store either happens-before the check or the
    /// notify finds the worker already parked — no missed wakeup.
    pub(crate) fn shut_down(&self) {
        let _queue = self.queue.lock().expect("pool queue lock");
        self.shutdown.store(true, Ordering::Release);
        self.work_cv.notify_all();
    }
}

fn worker_loop(state: Arc<PoolState>) {
    // Nested parallel operations inside tasks dispatch back to this pool.
    CURRENT_POOL.with(|c| *c.borrow_mut() = Some(Arc::clone(&state)));
    loop {
        let batch = {
            let mut queue = state.queue.lock().expect("pool queue lock");
            loop {
                // Drop exhausted batches from the front; their tasks may
                // still be finishing on other threads, but there is nothing
                // left to claim.
                while queue.front().is_some_and(|b| b.exhausted()) {
                    queue.pop_front();
                }
                if let Some(batch) = queue.front() {
                    break Arc::clone(batch);
                }
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = state.work_cv.wait(queue).expect("pool queue wait");
            }
        };
        while let Some(i) = batch.claim() {
            batch.run_one(i);
        }
    }
}

/// The pool the current thread's parallel operations dispatch to: the
/// innermost installed pool if any, otherwise the lazily-built global pool.
/// `None` means "run inline" (single-threaded configuration).
fn dispatch_pool() -> Option<Arc<PoolState>> {
    if let Some(pool) = CURRENT_POOL.with(|c| c.borrow().clone()) {
        return (pool.num_threads > 1).then_some(pool);
    }
    if global_size() <= 1 {
        return None;
    }
    Some(Arc::clone(global_pool()))
}

/// Worker count parallel operations split across on this thread.
pub(crate) fn effective_parallelism() -> usize {
    CURRENT_POOL
        .with(|c| c.borrow().as_ref().map(|p| p.num_threads))
        .unwrap_or_else(global_size)
}

/// Sets `pool` as the current thread's dispatch target for the duration of
/// `op`, restoring the previous target even if `op` unwinds.
pub(crate) fn with_pool<R>(pool: &Arc<PoolState>, op: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<PoolState>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_POOL.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(CURRENT_POOL.with(|c| c.borrow_mut().replace(Arc::clone(pool))));
    op()
}

/// The default worker count: `RAYON_NUM_THREADS` when set to a positive
/// integer (as in real rayon, `0` and garbage fall back to the detected
/// parallelism), otherwise `available_parallelism`.
pub(crate) fn global_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| resolve_num_threads(std::env::var("RAYON_NUM_THREADS").ok().as_deref()))
}

/// Resolves a `RAYON_NUM_THREADS`-style override against the machine's
/// available parallelism. Factored out of [`global_size`] so the parsing is
/// unit-testable without racing the process-wide cache.
pub(crate) fn resolve_num_threads(env_value: Option<&str>) -> usize {
    match env_value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// The process-wide pool used when no [`crate::ThreadPool`] is installed.
/// Its workers are detached and live for the rest of the process.
fn global_pool() -> &'static Arc<PoolState> {
    static GLOBAL: OnceLock<Arc<PoolState>> = OnceLock::new();
    GLOBAL.get_or_init(|| PoolState::spawn(global_size()).0)
}

/// How many pieces a parallel operation over `len` items should be dealt
/// as. `1` means "run inline, skip the pool".
pub(crate) fn decide_pieces(len: usize) -> usize {
    let threads = effective_parallelism();
    if threads <= 1 || len < MIN_PAR_LEN {
        return 1;
    }
    (threads * PIECES_PER_WORKER)
        .min(len.div_ceil(MIN_PIECE_LEN))
        .max(1)
}

/// Like [`run_batch`], but deals the *owned* `items` out to the tasks:
/// task `i` receives `items[i]` by value. Results come back in item order.
pub(crate) fn run_batch_owned<T, R, F>(items: Vec<T>, task: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(task).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    run_batch(slots.len(), move |i| {
        let item = slots[i]
            .lock()
            .expect("item slot lock")
            .take()
            .expect("each item is claimed exactly once");
        task(item)
    })
}

/// Runs `task(0..total)` across the current pool, returning the results in
/// task order. The calling thread enqueues one batch, helps run it, and
/// blocks until every task has completed. The first panicking task's payload
/// is re-raised on the caller once the batch is done.
pub(crate) fn run_batch<R, F>(total: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let pool = match dispatch_pool() {
        Some(pool) if total > 1 => pool,
        _ => return (0..total).map(task).collect(),
    };

    let results: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let runner = |i: usize| match catch_unwind(AssertUnwindSafe(|| task(i))) {
        Ok(result) => *results[i].lock().expect("result slot lock") = Some(result),
        Err(payload) => {
            let mut slot = panic_slot.lock().expect("panic slot lock");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    };
    let runner: &(dyn Fn(usize) + Sync) = &runner;
    // SAFETY: lifetime erasure only; this frame blocks until `done == total`
    // below, after which no thread dereferences the pointer again (workers
    // touch it only between a successful claim and the `done` increment).
    let runner: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(runner) };
    let batch = Arc::new(Batch {
        runner: RunnerPtr(runner as *const _),
        total,
        next: AtomicUsize::new(0),
        done: Mutex::new(0),
        done_cv: Condvar::new(),
    });
    {
        let mut queue = pool.queue.lock().expect("pool queue lock");
        queue.push_back(Arc::clone(&batch));
    }
    pool.work_cv.notify_all();

    // Help: the caller is one of the computing threads.
    while let Some(i) = batch.claim() {
        batch.run_one(i);
    }
    // Wait for stragglers claimed by workers.
    let mut done = batch.done.lock().expect("batch done lock");
    while *done < total {
        done = batch.done_cv.wait(done).expect("batch done wait");
    }
    drop(done);

    if let Some(payload) = panic_slot.lock().expect("panic slot lock").take() {
        resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("completed task wrote its result")
        })
        .collect()
}
