//! The work-stealing executor behind every parallel operation.
//!
//! Two designs preceded this one. The original shim spawned fresh scoped
//! threads per adapter call; PR 2 replaced that with a persistent pool fed
//! through one shared FIFO of batches, where every round was dealt as
//! `4 × workers` pieces behind an atomic claim counter and each piece's
//! result landed in a `Mutex<Option<R>>` box. That removed the spawn cost
//! but kept three taxes: every piece paid a mutex lock on the shared
//! `done` counter, the piece count was a static function of the worker
//! count (so one slow piece gated its round and `fold` grouping changed
//! with `RAYON_NUM_THREADS`), and every round woke every worker.
//!
//! This module is the third design: a rayon-style work-stealing executor.
//!
//! # Architecture
//!
//! * **Per-worker lock-free Chase–Lev deques.** Each worker owns a deque
//!   ([`WorkerDeque`]): the owner pushes and pops at the *bottom* (LIFO,
//!   so a worker dives depth-first into its own subtree and the
//!   just-pushed half is still cache-hot when popped), thieves steal from
//!   the *top* (FIFO, so a thief takes the *oldest* — largest — pending
//!   subtree). The buffer is the real Chase–Lev growable circular array
//!   with the C11 orderings of Lê et al. (CGO '13): owner push and
//!   non-last pop are lock-free (no CAS, no lock — one `SeqCst` fence on
//!   the pop path), and a CAS on `top` arbitrates only the contended
//!   cases, a steal and the owner's pop of the *last* element. An earlier
//!   revision used a mutex-guarded ring here ("uncontended on the owner
//!   fast path"); profiling fine-grained rounds showed the owner still
//!   paid an atomic RMW + unlock per tree node and every steal serialised
//!   against the owner, which is exactly the tax the Chase–Lev array
//!   removes. The memory-ordering argument lives on [`WorkerDeque`].
//!   Threads that are not pool workers (the caller of a parallel
//!   operation) push to and pop from a shared mutex-guarded **injector**
//!   deque — rarely touched (once per batch, not per tree node), so it
//!   keeps the trivially-sound lock.
//! * **Fork–join via [`crate::join`]** (see `join.rs`): `join(a, b)`
//!   publishes `b` as a stealable [`JobRef`] pointing into the caller's
//!   stack, runs `a` inline, then either pops `b` back (not stolen: run it
//!   inline, no synchronisation at all) or — if a thief took it — *helps*:
//!   it steals and executes other jobs until `b`'s completion flag is set,
//!   parking on the pool condvar only when there is nothing left to steal.
//!   No thread ever blocks while useful work exists, which is what makes
//!   nested parallelism deadlock-free: every job published by a frame is
//!   either executed by that frame or by a thief it waits for.
//! * **Adaptive splitting, deterministic decomposition.** A parallel
//!   operation over `n` items is split by *recursive halving* into
//!   [`decide_pieces`]`(n)` leaf pieces — a function of `n` **only** (the
//!   static `PIECES_PER_WORKER` tuning of the FIFO design is gone). The
//!   split tree adapts to load at run time — a subtree is only distributed
//!   if a thief actually steals it; unstolen halves are popped back and
//!   run inline at the cost of one deque push/pop — while the *leaf
//!   boundaries* and the left-to-right combine order never change. Fold
//!   accumulators and float sums are therefore byte-for-byte reproducible
//!   across runs *and* across worker counts (stealing may reorder
//!   execution, never results); under the FIFO design they changed with
//!   `RAYON_NUM_THREADS`.
//! * **`MaybeUninit` result slots.** [`run_batch`] writes each leaf result
//!   into a [`MaybeUninit`] slot ([`Slots`]); the join tree executes every
//!   leaf exactly once, and join completion publishes the write before the
//!   caller reads it, so no per-slot `Mutex` is needed (the FIFO design
//!   boxed every result and every dealt item in one). Per-slot "written"
//!   flags exist only so the panic path can drop the results that were
//!   produced before the unwind.
//! * **Panic propagation.** A panicking task is caught on the thief, the
//!   payload is stashed in the job, and [`crate::join`] re-raises it on
//!   the caller after the sibling subtree has settled. Pending jobs of an
//!   unwinding `join` that were *not* stolen are cancelled (popped and
//!   dropped unexecuted). Workers survive; the pool keeps serving.
//! * **Targeted wake-ups.** Sleepers park on one pool condvar. Publishing
//!   a job wakes at most one worker, and only if some worker is actually
//!   asleep and no previous wake is still in flight ([`PoolState::
//!   wake_for_work`]); job completion wakes all sleepers so a caller
//!   waiting on that job's flag re-checks it ([`PoolState::wake_all`]).
//!   The FIFO design's `notify_all` per round — every worker woken for
//!   every batch — is gone, which is most visible on fine-grained rounds.
//! * The **global pool** is built lazily on first use, sized by
//!   `RAYON_NUM_THREADS` when set to a positive integer (like real
//!   rayon), otherwise by the cached hardware probe
//!   [`hardware_parallelism`]. [`crate::ThreadPool::install`] scopes a
//!   caller-owned pool onto the current thread via the same thread-local
//!   context the workers use.

use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::join::join_in;

/// Minimum number of items before a parallel operation bothers dispatching
/// to the pool; below this the dispatch cost dominates the work.
pub(crate) const MIN_PAR_LEN: usize = 512;

/// Minimum items per leaf piece of the split tree, so leaf bookkeeping
/// never outweighs the per-leaf work.
const MIN_PIECE_LEN: usize = 128;

/// Cap on the leaf count of one operation's split tree. Well above any
/// plausible worker count, so stealing always has slack; bounded because
/// every tree node costs one deque push/pop even when nothing is stolen,
/// which measurably taxes large cheap-per-item rounds (the executor bench
/// regressed ~25% at 128 leaves before this was tightened from 256).
const MAX_PIECES: usize = 64;

/// Steal attempts (each a scan over every deque, with a `yield_now`
/// between rounds) a thread waiting on a join flag makes before parking.
const WAIT_SPIN_ROUNDS: usize = 32;

/// Idle scan rounds a worker makes before parking. Deliberately small:
/// a parked worker costs nothing, a spinning one steals CPU from the
/// threads that have real work (pathological on single-core hosts).
const WORKER_SPIN_ROUNDS: usize = 4;

thread_local! {
    /// What the current thread *is* to the executor: a pool worker (which
    /// pool, which deque), a thread running under
    /// [`crate::ThreadPool::install`], or (when `None`) an unaffiliated
    /// thread that dispatches to the global pool.
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Thread → pool affiliation, kept in [`CTX`].
enum Ctx {
    /// A worker thread of `pool`, owning `pool.workers[index]`.
    Worker(Arc<PoolState>, usize),
    /// A thread inside [`crate::ThreadPool::install`] of `pool` (pushes
    /// go to the pool's injector, not to a worker deque).
    External(Arc<PoolState>),
}

impl Ctx {
    fn pool(&self) -> &Arc<PoolState> {
        match self {
            Ctx::Worker(pool, _) | Ctx::External(pool) => pool,
        }
    }
}

/// A type-erased pointer to a job living on some thread's stack frame.
///
/// The pointee is pinned by that frame until the job is either executed
/// (its completion flag set) or popped back unexecuted; `JobRef`s are
/// therefore always dereferenceable while they sit in a deque (see
/// `join.rs` for the pinning argument).
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const (), &PoolState),
}

// SAFETY: a JobRef is a pointer plus fn pointer; the pointee is only ever
// accessed through `execute`, whose exactly-once discipline is enforced by
// the deques (an executed job is never re-enqueued).
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// `data` must outlive every use of the returned `JobRef`, and
    /// `execute_fn` must be callable exactly once on it.
    pub(crate) unsafe fn new(
        data: *const (),
        execute_fn: unsafe fn(*const (), &PoolState),
    ) -> Self {
        JobRef { data, execute_fn }
    }

    /// Same stack job? (Pointer identity; a live frame address is never
    /// shared by two pending jobs, see `pop_job_if`.)
    fn same_as(&self, other: &JobRef) -> bool {
        std::ptr::eq(self.data, other.data)
            && std::ptr::fn_addr_eq(self.execute_fn, other.execute_fn)
    }

    /// # Safety
    /// Must be called exactly once, while the pointee is still pinned.
    pub(crate) unsafe fn execute(self, pool: &PoolState) {
        (self.execute_fn)(self.data, pool)
    }
}

/// Initial capacity (slots) of a worker deque's circular buffer. Grows by
/// doubling; 64 covers every split tree this executor produces
/// ([`MAX_PIECES`] = 64 leaves ⇒ at most ~6 simultaneously pending jobs
/// per worker), so growth only triggers under deeply nested operations.
const DEQUE_INITIAL_CAP: usize = 64;

/// One storage cell of a [`Buffer`]. A [`JobRef`] is two pointer-sized
/// words (data pointer + fn pointer), stored as two *independent* relaxed
/// atomics — there is no double-word atomic here, and none is needed: a
/// reader's loads are only *trusted* after validation (the owner's
/// fence-then-`top`-load, or a thief's winning CAS on `top`) proves the
/// cell could not have been overwritten between the loads; losers discard
/// whatever possibly-torn pair they read. The `seq` word is a monotone
/// per-deque push ticket that lets the racecheck build assert each
/// published job is consumed exactly once (see [`WorkerDeque::audit`]);
/// it costs one relaxed store per push and is dead weight otherwise —
/// measured in the executor round-trip bench as noise next to the
/// removed lock traffic.
struct Slot {
    data: AtomicPtr<()>,
    exec: AtomicPtr<()>,
    seq: AtomicUsize,
}

/// The growable circular array behind a [`WorkerDeque`]. `cap` is always a
/// power of two so index wrap is a mask. Cells are addressed by *absolute*
/// deque index (`bottom`/`top` never wrap; they are monotone over the pool
/// lifetime modulo owner pop/push reuse), masked into the buffer.
struct Buffer {
    mask: usize,
    slots: Box<[Slot]>,
}

impl Buffer {
    fn alloc(cap: usize) -> *mut Buffer {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| Slot {
                data: AtomicPtr::new(std::ptr::null_mut()),
                exec: AtomicPtr::new(std::ptr::null_mut()),
                seq: AtomicUsize::new(0),
            })
            .collect();
        Box::into_raw(Box::new(Buffer {
            mask: cap - 1,
            slots,
        }))
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    fn slot(&self, index: isize) -> &Slot {
        &self.slots[index as usize & self.mask]
    }

    /// Stores `job` at absolute index `index` (owner only; relaxed stores
    /// are published by the subsequent `Release` store of `bottom` or of
    /// the buffer pointer).
    fn write(&self, index: isize, job: JobRef, seq: usize) {
        let slot = self.slot(index);
        slot.data.store(job.data.cast_mut(), Ordering::Relaxed);
        slot.exec
            .store(job.execute_fn as *mut (), Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Relaxed);
    }

    /// Loads the cell at absolute index `index`. The result is
    /// speculative — callers must validate (see [`Slot`]) before trusting
    /// the pair.
    fn read(&self, index: isize) -> (JobRef, usize) {
        let slot = self.slot(index);
        let data = slot.data.load(Ordering::Relaxed) as *const ();
        let exec = slot.exec.load(Ordering::Relaxed);
        let seq = slot.seq.load(Ordering::Relaxed);
        type ExecFn = unsafe fn(*const (), &PoolState);
        // SAFETY: transmuting a data pointer back to the fn pointer it was
        // cast from in `write`; validation (CAS win / owner fence) proves
        // the pair is the coherent value of one `write` before use.
        let execute_fn: ExecFn = unsafe { std::mem::transmute::<*mut (), ExecFn>(exec) };
        (JobRef { data, execute_fn }, seq)
    }
}

/// Outcome of [`WorkerDeque::steal`].
enum Steal {
    /// No job visible at the top of the deque.
    Empty,
    /// Lost the CAS race for the top job to the owner or another thief;
    /// the deque may still hold work — caller decides whether to rescan.
    Retry,
    /// Won the top job.
    Success(JobRef),
}

/// One worker's lock-free Chase–Lev deque: the owner pushes and pops at
/// `bottom`, thieves steal at `top`, over a growable circular [`Buffer`].
///
/// # Memory-ordering argument (Lê et al., CGO '13, Fig. 1)
///
/// * **`push`** writes the cell (relaxed) and then `Release`-stores
///   `bottom + 1`; a thief's `Acquire` load of `bottom` that observes the
///   new value therefore also observes the cell write. The `Acquire` load
///   of `top` in `push` only bounds the occupancy check for growth.
/// * **`take`** (owner pop) `Relaxed`-stores the decremented `bottom`,
///   then a **`SeqCst` fence**, then loads `top`. A concurrent `steal`
///   loads `top`, then a **`SeqCst` fence**, then loads `bottom`. The two
///   fences give a total order: either the owner's `bottom` decrement is
///   visible to the thief (which then sees `top >= bottom` and backs off
///   the last element), or the thief's `top` increment (its CAS) is
///   visible to the owner (which then sees the smaller window). Both
///   seeing a one-element window falls through to the CAS on `top`, which
///   arbitrates — exactly one of them wins the last element.
/// * **Cell reads are speculative.** A thief reads the cell *before* its
///   CAS; the value is only trusted if the CAS on `top` succeeds, which
///   proves `top` never moved past the cell, and the owner cannot have
///   overwritten it: overwriting absolute index `i` in the *same* buffer
///   requires `bottom - top >= cap`, which triggers growth into a *new*
///   buffer instead (capacity doubling ⇒ the live window never wraps onto
///   itself).
/// * **Growth** copies the live window `[top, bottom)` into a
///   twice-as-large buffer at the same absolute indices and publishes the
///   new buffer pointer with `Release` (thieves load it `Acquire`, so a
///   thief that sees the new buffer sees the copies). The old buffer is
///   *retired, not freed*: a stale thief may still hold its pointer and
///   read a cell from it — the cell it validates via CAS still holds the
///   correct value there (copies don't mutate the source) — so retired
///   buffers stay allocated in [`WorkerDeque::retired`] until the deque
///   drops with the pool.
///
/// # Racecheck hook
///
/// Every push tickets the job with a monotone per-deque sequence number;
/// every successful claim (owner pop or winning steal) registers that
/// ticket with a [`pfg_audit::DisjointWriteAudit::sparse_cells`] registry.
/// Under `--cfg pfg_racecheck` a broken ordering that lets two threads
/// claim one published job panics with both claim sites; in normal builds
/// the registry is zero-sized and the calls compile out.
struct WorkerDeque {
    /// Next absolute index the owner pushes at. Decremented (then mostly
    /// restored) during `take`.
    bottom: AtomicIsize,
    /// Absolute index of the oldest live job; advanced only by the CAS in
    /// `steal`/last-element `take`.
    top: AtomicIsize,
    /// Current circular buffer; swapped (never mutated in place) on grow.
    buffer: AtomicPtr<Buffer>,
    /// Superseded buffers, kept allocated until drop so stale thieves can
    /// finish their speculative reads (see the module ordering argument).
    /// Locked only by the owner on grow — never on a hot path. The `Box`
    /// is load-bearing, not indirection for its own sake: stale thieves
    /// hold raw `*mut Buffer` pointers to these exact allocations, so the
    /// `Vec` growing must never move a retired `Buffer`.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<Buffer>>>,
    /// Monotone push ticket counter (owner-incremented, relaxed).
    push_seq: AtomicUsize,
    /// Exactly-once claim registry over push tickets (racecheck builds).
    audit: pfg_audit::DisjointWriteAudit,
}

impl WorkerDeque {
    fn new() -> Self {
        WorkerDeque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::alloc(DEQUE_INITIAL_CAP)),
            retired: Mutex::new(Vec::new()),
            push_seq: AtomicUsize::new(0),
            audit: pfg_audit::DisjointWriteAudit::sparse_cells("worker deque claims"),
        }
    }

    /// Owner-only: publishes `job` at the bottom of the deque.
    fn push(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        // SAFETY: `buffer` always points at a live allocation (swapped
        // buffers are retired, not freed, until drop).
        unsafe {
            if b - t >= (*buf).cap() as isize {
                buf = self.grow(buf, t, b);
            }
            let seq = self.push_seq.fetch_add(1, Ordering::Relaxed);
            (*buf).write(b, job, seq);
        }
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pops the most recently pushed job still in the deque
    /// (LIFO). Lock-free; a CAS happens only when taking the last element
    /// races a thief.
    fn take(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: live buffer (see `push`); `t <= b` proves index `b`
        // holds a published job only we can overwrite.
        let (job, seq) = unsafe { (*buf).read(b) };
        if t == b {
            // Last element: race thieves for it via the `top` CAS.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if !won {
                return None;
            }
        }
        self.audit.write_once(seq);
        Some(job)
    }

    /// Any thread: tries to steal the oldest job (FIFO).
    fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = self.buffer.load(Ordering::Acquire);
        // SAFETY: live buffer; the read is speculative and only trusted if
        // the CAS below wins (see the ordering argument on the type).
        let (job, seq) = unsafe { (*buf).read(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        self.audit.write_once(seq);
        Steal::Success(job)
    }

    /// Owner-only: doubles the buffer, copying the live window `[t, b)` to
    /// the same absolute indices, publishes it, and retires the old one.
    ///
    /// # Safety
    /// `old` must be the deque's current buffer and the caller must be the
    /// deque's owner (sole writer of `buffer` and the cells).
    unsafe fn grow(&self, old: *mut Buffer, t: isize, b: isize) -> *mut Buffer {
        let new = Buffer::alloc((*old).cap() * 2);
        for i in t..b {
            let (job, seq) = (*old).read(i);
            (*new).write(i, job, seq);
        }
        self.buffer.store(new, Ordering::Release);
        self.retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Box::from_raw(old));
        new
    }
}

impl Drop for WorkerDeque {
    fn drop(&mut self) {
        // SAFETY: exclusive access; the current buffer was produced by
        // `Buffer::alloc` and never freed elsewhere (`retired` holds the
        // superseded ones and drops them with the Vec).
        unsafe { drop(Box::from_raw(*self.buffer.get_mut())) };
    }
}

/// Shared state of one thread pool.
pub(crate) struct PoolState {
    /// Deque for jobs published by non-worker threads (operation callers).
    /// Same ownership discipline as a worker deque: the publisher pops at
    /// the back, everyone else steals from the front.
    injector: Mutex<VecDeque<JobRef>>,
    /// One deque per worker thread; `num_threads - 1` entries (the caller
    /// of an operation always helps, taking the last parallelism slot).
    workers: Vec<WorkerDeque>,
    /// Guards the park/wake handshake (never held while working).
    sleep_lock: Mutex<()>,
    /// Parks idle workers and join-waiters out of work to steal.
    sleep_cv: Condvar,
    /// Number of threads currently parked (or committed to parking) on
    /// `sleep_cv`. Publishers skip the wake syscall when this is zero.
    sleepers: AtomicUsize,
    /// 1 while a work wake-up is in flight (notified but the woken thread
    /// has not rescanned yet); throttles redundant `notify_one`s when jobs
    /// are published faster than workers wake.
    pending_wake: AtomicUsize,
    /// Jobs sitting in deques, not yet claimed. Parking threads re-check
    /// this after registering as sleepers, closing the lost-wakeup race.
    pending_jobs: AtomicUsize,
    /// Parallelism this pool was built for. Only `num_threads - 1` worker
    /// threads exist — the batch caller always helps, taking the last
    /// slot, so `num_threads` threads compute concurrently.
    pub(crate) num_threads: usize,
    /// Set by [`crate::ThreadPool`] drop; workers exit once out of work.
    shutdown: AtomicBool,
    /// Seeded steal-order perturbation; `None` (the default) keeps the
    /// deterministic round-robin scan and costs one branch per steal scan.
    chaos: Option<Chaos>,
}

/// Steal-order chaos mode: with a seed set (via
/// [`crate::ThreadPoolBuilder::chaos_seed`] or, for the global pool, the
/// `PFG_CHAOS_SEED` environment variable), every steal scan draws from a
/// seeded counter-based hash to (a) rotate and optionally reverse the
/// victim scan order and (b) inject a `yield_now` at the steal point about
/// a quarter of the time. This perturbs which thief wins each race and in
/// what order subtrees migrate — exactly the schedule dimension the
/// executor's determinism contract says results must be invariant to — so
/// the racecheck/chaos suites can stress many distinct steal orders
/// reproducibly (same seed → same perturbation *sequence*; thread timing
/// still varies, which is the point). Results must stay byte-identical
/// because decomposition is a function of input length only.
struct Chaos {
    seed: u64,
    /// Global draw counter: each steal scan consumes one ticket, so the
    /// perturbation sequence is a pure function of (seed, arrival order).
    ticket: AtomicUsize,
}

impl Chaos {
    fn new(seed: u64) -> Self {
        Chaos {
            seed,
            ticket: AtomicUsize::new(0),
        }
    }

    /// The next perturbation word: splitmix64 over (seed, ticket).
    fn next(&self) -> u64 {
        let t = self.ticket.fetch_add(1, Ordering::Relaxed) as u64;
        let mut z = self
            .seed
            .wrapping_add(t.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl PoolState {
    /// Creates a pool advertising `num_threads` of parallelism, spawning
    /// `num_threads - 1` parked workers: the operation caller always
    /// helps, so it occupies the remaining slot and the number of threads
    /// computing concurrently equals `num_threads`.
    pub(crate) fn spawn(
        num_threads: usize,
        chaos_seed: Option<u64>,
    ) -> (Arc<Self>, Vec<std::thread::JoinHandle<()>>) {
        let worker_count = num_threads.saturating_sub(1);
        let state = Arc::new(PoolState {
            injector: Mutex::new(VecDeque::new()),
            workers: (0..worker_count).map(|_| WorkerDeque::new()).collect(),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            pending_wake: AtomicUsize::new(0),
            pending_jobs: AtomicUsize::new(0),
            num_threads,
            shutdown: AtomicBool::new(false),
            chaos: chaos_seed.map(Chaos::new),
        });
        let handles = (0..worker_count)
            .map(|index| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-worker-{index}"))
                    .spawn(move || worker_loop(state, index))
                    .expect("spawn rayon-shim worker")
            })
            .collect();
        (state, handles)
    }

    /// Wakes at most one sleeping worker to come steal newly published
    /// work. Skipped entirely (no lock, no syscall) when nobody sleeps or
    /// a previous work wake-up is still in flight.
    fn wake_for_work(&self) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        if self.pending_wake.swap(1, Ordering::Relaxed) == 1 {
            return;
        }
        let _guard = self.sleep_lock.lock().expect("pool sleep lock");
        self.sleep_cv.notify_one();
    }

    /// Wakes every sleeper. Used on job completion (the thread waiting on
    /// that job's flag must re-check it — `notify_one` could wake an
    /// unrelated worker instead) and on shutdown.
    pub(crate) fn wake_all(&self) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        let _guard = self.sleep_lock.lock().expect("pool sleep lock");
        self.sleep_cv.notify_all();
    }

    /// Parks the current thread until any wake-up, unless work or the
    /// monitored condition appeared while committing to sleep. `done`
    /// is the join flag a waiter is blocked on (`None` for idle workers).
    ///
    /// Lost-wakeup freedom: the sleeper increments `sleepers` *before*
    /// re-checking `pending_jobs`/`done` (all `SeqCst`), and publishers
    /// store those *before* loading `sleepers`; in every interleaving the
    /// sleeper either sees the update and skips the wait, or the publisher
    /// sees `sleepers > 0` and notifies — and since the sleeper holds
    /// `sleep_lock` from the re-check until the wait begins, the notify
    /// cannot land in between.
    fn park(&self, done: Option<&AtomicBool>) {
        let guard = self.sleep_lock.lock().expect("pool sleep lock");
        // A parking thread just scanned every deque and found nothing, so
        // any wake-up still "in flight" has been serviced or expired:
        // clear the throttle on *entry* as well as on exit. Without the
        // entry clear, a publisher racing a waker-less park exit could
        // set the flag, notify an empty wait set, and leave the stale 1
        // suppressing every future work wake-up (silently degrading the
        // pool to inline execution).
        self.pending_wake.store(0, Ordering::Relaxed);
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let must_wait = self.pending_jobs.load(Ordering::SeqCst) == 0
            && !self.shutdown.load(Ordering::SeqCst)
            && done.is_none_or(|d| !d.load(Ordering::SeqCst));
        if must_wait {
            // Spurious wakes are fine: every caller re-checks its
            // condition in a loop around `park`.
            drop(self.sleep_cv.wait(guard).expect("pool sleep wait"));
        } else {
            drop(guard);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        self.pending_wake.store(0, Ordering::Relaxed);
    }

    /// Tells workers to exit once out of work, and wakes them.
    pub(crate) fn shut_down(&self) {
        let _guard = self.sleep_lock.lock().expect("pool sleep lock");
        self.shutdown.store(true, Ordering::SeqCst);
        self.sleep_cv.notify_all();
    }
}

/// Publishes `job` where thieves can find it: the current worker's own
/// deque when the calling thread is a worker of `pool`, else the pool's
/// injector.
pub(crate) fn push_job(pool: &Arc<PoolState>, job: JobRef) {
    let pushed_local = CTX.with(|c| match &*c.borrow() {
        Some(Ctx::Worker(p, i)) if Arc::ptr_eq(p, pool) => {
            p.workers[*i].push(job);
            true
        }
        _ => false,
    });
    if !pushed_local {
        pool.injector
            .lock()
            .expect("pool injector lock")
            .push_back(job);
    }
    pool.pending_jobs.fetch_add(1, Ordering::SeqCst);
    pool.wake_for_work();
}

/// Pops `job` back from where [`push_job`] put it, if it is still there
/// (i.e. no thief stole it). Returns `true` on success.
///
/// Matching is by pointer identity, which is unambiguous: a `JobRef` only
/// sits in a deque while its stack frame is pinned inside `join`, and a
/// frame never hosts two pending jobs at the same address, so an address
/// match *is* the job we pushed. LIFO discipline means our job is at the
/// bottom unless it was stolen (deeper pushes have already been popped by
/// the time we look) — so on the worker path we `take` unconditionally
/// and check identity after: the popped job is either ours or the deque
/// had already lost ours to a thief, in which case whatever `take`
/// returned belongs to an *outer* pinned frame and is pushed straight
/// back (bottom position is unchanged by a take-then-push pair, so the
/// restore is invisible to thieves' FIFO order).
pub(crate) fn pop_job_if(pool: &Arc<PoolState>, job: &JobRef) -> bool {
    let deque = CTX.with(|c| match &*c.borrow() {
        Some(Ctx::Worker(p, i)) if Arc::ptr_eq(p, pool) => Some(*i),
        _ => None,
    });
    let popped = match deque {
        Some(i) => match pool.workers[i].take() {
            Some(bottom) if bottom.same_as(job) => true,
            Some(other) => {
                // Ours was stolen; `other` is an outer frame's pending job.
                pool.workers[i].push(other);
                false
            }
            None => false,
        },
        None => {
            let mut jobs = pool.injector.lock().expect("pool injector lock");
            if jobs.back().is_some_and(|back| back.same_as(job)) {
                jobs.pop_back();
                true
            } else {
                false
            }
        }
    };
    if popped {
        pool.pending_jobs.fetch_sub(1, Ordering::SeqCst);
    }
    popped
}

/// Claims one job for the current thread: own deque back first (dive into
/// our own subtree, cache-hot), then the injector front, then the other
/// workers' deque fronts in round-robin order starting after our own slot
/// (deterministic scan; the *outcome* of racing thieves is timing-
/// dependent either way, and decomposition determinism makes that
/// invisible in results).
fn find_work(pool: &PoolState, own_index: Option<usize>) -> Option<JobRef> {
    if let Some(i) = own_index {
        if let Some(job) = pool.workers[i].take() {
            pool.pending_jobs.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
    }
    if let Some(job) = pool
        .injector
        .lock()
        .expect("pool injector lock")
        .pop_front()
    {
        pool.pending_jobs.fetch_sub(1, Ordering::SeqCst);
        return Some(job);
    }
    let k = pool.workers.len();
    // Chaos mode perturbs the scan: random rotation, optional reversal,
    // and an injected yield at the steal point so racing thieves swap
    // arrival order (see [`Chaos`]). Default: round-robin after own slot.
    let (start, reversed) = match (&pool.chaos, k) {
        (Some(chaos), 1..) => {
            let r = chaos.next();
            if r & 3 == 0 {
                std::thread::yield_now();
            }
            ((r >> 2) as usize % k, r & 2 == 0)
        }
        _ => (own_index.map_or(0, |i| i + 1), false),
    };
    for offset in 0..k {
        let target = if reversed {
            (start + k - offset) % k
        } else {
            (start + offset) % k
        };
        if own_index == Some(target) {
            continue;
        }
        // A lost CAS (`Retry`) is treated like empty and the scan moves to
        // the next victim: the job went to *someone*, so progress was
        // made, and every caller of `find_work` already loops — `None`
        // with `pending_jobs > 0` never parks (see `park`'s re-check).
        if let Steal::Success(job) = pool.workers[target].steal() {
            pool.pending_jobs.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
    }
    None
}

/// Blocks until `done` is set, *helping* in the meantime: steals and
/// executes other jobs (which is what keeps nested `join`s deadlock-free
/// and cores busy), spins briefly when there is nothing to steal, and
/// parks on the pool condvar past [`WAIT_SPIN_ROUNDS`]. Job completion
/// wakes all sleepers, so the flag is always re-checked promptly.
pub(crate) fn wait_for_latch(pool: &Arc<PoolState>, done: &AtomicBool) {
    let own_index = CTX.with(|c| match &*c.borrow() {
        Some(Ctx::Worker(p, i)) if Arc::ptr_eq(p, pool) => Some(*i),
        _ => None,
    });
    let mut idle_rounds = 0;
    while !done.load(Ordering::Acquire) {
        if let Some(job) = find_work(pool, own_index) {
            // SAFETY: the job came from a deque, so its frame is pinned
            // and it has not been executed yet.
            unsafe { job.execute(pool) };
            idle_rounds = 0;
        } else if idle_rounds < WAIT_SPIN_ROUNDS {
            std::thread::yield_now();
            idle_rounds += 1;
        } else {
            pool.park(Some(done));
        }
    }
}

fn worker_loop(state: Arc<PoolState>, index: usize) {
    // Parallel operations inside tasks dispatch back to this pool, and
    // `push_job` routes this thread's pushes to its own deque.
    CTX.with(|c| *c.borrow_mut() = Some(Ctx::Worker(Arc::clone(&state), index)));
    let mut idle_rounds = 0;
    loop {
        if let Some(job) = find_work(&state, Some(index)) {
            // SAFETY: as in `wait_for_latch`.
            unsafe { job.execute(&state) };
            idle_rounds = 0;
            continue;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if idle_rounds < WORKER_SPIN_ROUNDS {
            std::thread::yield_now();
            idle_rounds += 1;
        } else {
            state.park(None);
            idle_rounds = 0;
        }
    }
}

/// The pool the current thread's parallel operations dispatch to: the
/// innermost installed pool (or this worker's own pool), otherwise the
/// lazily-built global pool. `None` means "run inline" (single-threaded
/// configuration).
pub(crate) fn dispatch_pool() -> Option<Arc<PoolState>> {
    if let Some(pool) = CTX.with(|c| c.borrow().as_ref().map(|ctx| Arc::clone(ctx.pool()))) {
        return (pool.num_threads > 1).then_some(pool);
    }
    if global_size() <= 1 {
        return None;
    }
    Some(Arc::clone(global_pool()))
}

/// Worker count parallel operations split across on this thread.
pub(crate) fn effective_parallelism() -> usize {
    CTX.with(|c| c.borrow().as_ref().map(|ctx| ctx.pool().num_threads))
        .unwrap_or_else(global_size)
}

/// Sets `pool` as the current thread's dispatch target for the duration of
/// `op`, restoring the previous target even if `op` unwinds.
pub(crate) fn with_pool<R>(pool: &Arc<PoolState>, op: impl FnOnce() -> R) -> R {
    struct Restore(Option<Ctx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CTX.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(CTX.with(|c| c.borrow_mut().replace(Ctx::External(Arc::clone(pool)))));
    op()
}

/// The machine's available parallelism, probed once per process. The std
/// probe is uncached on Linux (`sched_getaffinity` + cgroup reads), so
/// both the global pool size and the sort's hardware gate share this.
pub(crate) fn hardware_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The default worker count: `RAYON_NUM_THREADS` when set to a positive
/// integer (as in real rayon, `0` and garbage fall back to the detected
/// parallelism), otherwise [`hardware_parallelism`].
pub(crate) fn global_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| resolve_num_threads(std::env::var("RAYON_NUM_THREADS").ok().as_deref()))
}

/// Resolves a `RAYON_NUM_THREADS`-style override against the machine's
/// available parallelism. Factored out of [`global_size`] so the parsing is
/// unit-testable without racing the process-wide cache.
pub(crate) fn resolve_num_threads(env_value: Option<&str>) -> usize {
    match env_value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => hardware_parallelism(),
    }
}

/// The global pool's chaos seed: `PFG_CHAOS_SEED` when set to an integer
/// (read once, like `RAYON_NUM_THREADS`), otherwise off. Lets the CI
/// chaos matrix stress the whole test binary's steal orders without
/// touching call sites.
pub(crate) fn global_chaos_seed() -> Option<u64> {
    static SEED: OnceLock<Option<u64>> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("PFG_CHAOS_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
    })
}

/// The process-wide pool used when no [`crate::ThreadPool`] is installed.
/// Its workers are detached and live for the rest of the process.
fn global_pool() -> &'static Arc<PoolState> {
    static GLOBAL: OnceLock<Arc<PoolState>> = OnceLock::new();
    GLOBAL.get_or_init(|| PoolState::spawn(global_size(), global_chaos_seed()).0)
}

/// How many leaf pieces a parallel operation over `len` items splits into.
/// `1` means "run inline, skip the pool".
///
/// The piece count is a function of `len` **only** — never of the worker
/// count — so leaf boundaries, `fold` accumulator grouping and
/// left-to-right combine order are identical for every
/// `RAYON_NUM_THREADS` (including 1, whose single worker walks the same
/// piece tree inline) and unaffected by stealing. An earlier revision let
/// single-threaded configurations skip the split and fold with one
/// accumulator; the chaos-determinism suite caught that as a byte-level
/// divergence between `RAYON_NUM_THREADS=1` and every parallel run, so
/// the worker count no longer participates at all.
pub(crate) fn decide_pieces(len: usize) -> usize {
    if len < MIN_PAR_LEN {
        return 1;
    }
    len.div_ceil(MIN_PIECE_LEN).clamp(1, MAX_PIECES)
}

/// [`decide_pieces`] under a `with_max_len(max_len)` hint: every piece
/// holds at most `max_len` items. The hint declares the items *heavy*
/// (e.g. one full Dijkstra per item), so the [`MIN_PAR_LEN`] cheap-item
/// gate and the [`MAX_PIECES`] bookkeeping cap both yield to it; the
/// result is still a function of `(len, max_len)` only, preserving
/// cross-worker-count determinism.
pub(crate) fn decide_pieces_max_len(len: usize, max_len: usize) -> usize {
    if len < 2 {
        return 1;
    }
    decide_pieces(len).max(len.div_ceil(max_len.max(1)))
}

/// Write-once result slots shared across the split tree: slot `i` is
/// written by whichever thread executes leaf `i`, exactly once.
///
/// The `written` flags are *not* a synchronisation protocol — the join
/// tree already guarantees exactly-once execution and publishes writes to
/// the caller (each completed job's `done` flag is an Acquire/Release
/// edge) — they exist so the panic path can drop exactly the results that
/// were produced before the unwind.
struct Slots<R> {
    data: Vec<UnsafeCell<MaybeUninit<R>>>,
    written: Vec<AtomicBool>,
    /// Shadow-write registry for the exactly-once contract (checked under
    /// `--cfg pfg_racecheck`, zero-sized otherwise).
    audit: pfg_audit::DisjointWriteAudit,
}

// SAFETY: slots are written by at most one thread each (exactly-once leaf
// execution) and only read after a happens-before edge; `R: Send` lets the
// value move across the writing thread.
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    fn new(n: usize) -> Self {
        Slots {
            data: (0..n)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            written: (0..n).map(|_| AtomicBool::new(false)).collect(),
            audit: pfg_audit::DisjointWriteAudit::cells("pool result slots", n),
        }
    }

    /// # Safety
    /// Each index may be written at most once, by the thread executing
    /// leaf `i`.
    unsafe fn write(&self, i: usize, value: R) {
        self.audit.write_once(i);
        (*self.data[i].get()).write(value);
        self.written[i].store(true, Ordering::Release);
    }

    /// Takes all results, in slot order. Panics if any slot was skipped
    /// (cannot happen after a non-panicking batch).
    fn into_vec(mut self) -> Vec<R> {
        let data = std::mem::take(&mut self.data);
        let written = std::mem::take(&mut self.written);
        data.into_iter()
            .zip(written)
            .map(|(cell, flag)| {
                assert!(flag.into_inner(), "completed batch wrote every slot");
                // SAFETY: the flag confirms the slot was written.
                unsafe { cell.into_inner().assume_init() }
            })
            .collect()
    }
}

impl<R> Drop for Slots<R> {
    fn drop(&mut self) {
        // Non-empty only on the panic path (`into_vec` takes the vectors).
        for (cell, flag) in self.data.iter_mut().zip(&self.written) {
            if flag.load(Ordering::Acquire) {
                // SAFETY: flag says written; we have exclusive access.
                unsafe { cell.get_mut().assume_init_drop() };
            }
        }
    }
}

/// Owned items dealt to the split tree: leaf `i` takes `items[i]` by value,
/// exactly once. The `taken` flags let the unwind path drop exactly the
/// items that were never consumed (leaves cancelled by a panic elsewhere).
struct ItemSlots<T> {
    data: Vec<UnsafeCell<MaybeUninit<T>>>,
    taken: Vec<AtomicBool>,
    /// Exactly-once take registry, mirroring [`Slots::audit`].
    audit: pfg_audit::DisjointWriteAudit,
}

// SAFETY: as for `Slots` — exactly-once access per slot with a
// happens-before edge back to the owner.
unsafe impl<T: Send> Sync for ItemSlots<T> {}

impl<T> ItemSlots<T> {
    fn new(items: Vec<T>) -> Self {
        let n = items.len();
        ItemSlots {
            data: items
                .into_iter()
                .map(|x| UnsafeCell::new(MaybeUninit::new(x)))
                .collect(),
            taken: (0..n).map(|_| AtomicBool::new(false)).collect(),
            audit: pfg_audit::DisjointWriteAudit::cells("pool item slots", n),
        }
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    /// # Safety
    /// Each index may be taken at most once, by the thread executing
    /// leaf `i`.
    unsafe fn take(&self, i: usize) -> T {
        self.audit.write_once(i);
        self.taken[i].store(true, Ordering::Release);
        (*self.data[i].get()).assume_init_read()
    }
}

impl<T> Drop for ItemSlots<T> {
    fn drop(&mut self) {
        for (cell, flag) in self.data.iter_mut().zip(&self.taken) {
            if !flag.load(Ordering::Acquire) {
                // SAFETY: never taken, so the slot still owns the item.
                unsafe { cell.get_mut().assume_init_drop() };
            }
        }
    }
}

/// Runs `task(0..total)` across the current pool, returning the results in
/// task order. The calling thread executes the split tree itself, publishing
/// stealable halves as it descends (see the module docs); it returns once
/// every leaf has completed. The first panicking leaf's payload (in tree
/// order) is re-raised on the caller after in-flight siblings settle.
pub(crate) fn run_batch<R, F>(total: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let pool = match dispatch_pool() {
        Some(pool) if total > 1 => pool,
        _ => return (0..total).map(task).collect(),
    };
    let slots = Slots::new(total);
    exec_leaves(&pool, &slots, &task, 0, total);
    slots.into_vec()
}

/// Recursive halving over leaf indices `[lo, hi)`: each level publishes
/// the right half as a stealable job and runs the left half inline.
fn exec_leaves<R, F>(pool: &Arc<PoolState>, slots: &Slots<R>, task: &F, lo: usize, hi: usize)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if hi - lo == 1 {
        let value = task(lo);
        // SAFETY: leaf `lo` executes exactly once (binary tree over
        // disjoint index ranges).
        unsafe { slots.write(lo, value) };
        return;
    }
    let mid = lo + (hi - lo) / 2;
    join_in(
        pool,
        || exec_leaves(pool, slots, task, lo, mid),
        || exec_leaves(pool, slots, task, mid, hi),
    );
}

/// Like [`run_batch`], but deals the *owned* `items` out to the tasks:
/// leaf `i` receives `items[i]` by value. Results come back in item order.
pub(crate) fn run_batch_owned<T, R, F>(items: Vec<T>, task: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 || dispatch_pool().is_none() {
        return items.into_iter().map(task).collect();
    }
    let slots = ItemSlots::new(items);
    let total = slots.len();
    // SAFETY: `run_batch` invokes the closure exactly once per index.
    run_batch(total, |i| task(unsafe { slots.take(i) }))
}
