//! The work-stealing executor behind every parallel operation.
//!
//! Two designs preceded this one. The original shim spawned fresh scoped
//! threads per adapter call; PR 2 replaced that with a persistent pool fed
//! through one shared FIFO of batches, where every round was dealt as
//! `4 × workers` pieces behind an atomic claim counter and each piece's
//! result landed in a `Mutex<Option<R>>` box. That removed the spawn cost
//! but kept three taxes: every piece paid a mutex lock on the shared
//! `done` counter, the piece count was a static function of the worker
//! count (so one slow piece gated its round and `fold` grouping changed
//! with `RAYON_NUM_THREADS`), and every round woke every worker.
//!
//! This module is the third design: a rayon-style work-stealing executor.
//!
//! # Architecture
//!
//! * **Per-worker lock-free Chase–Lev deques.** Each worker owns a deque
//!   ([`Deque`]): the owner pushes and pops at the *bottom* (LIFO,
//!   so a worker dives depth-first into its own subtree and the
//!   just-pushed half is still cache-hot when popped), thieves steal from
//!   the *top* (FIFO, so a thief takes the *oldest* — largest — pending
//!   subtree). The buffer is the real Chase–Lev growable circular array
//!   with the C11 orderings of Lê et al. (CGO '13): owner push and
//!   non-last pop are lock-free (no CAS, no lock — one `SeqCst` fence on
//!   the pop path), and a CAS on `top` arbitrates only the contended
//!   cases, a steal and the owner's pop of the *last* element. An earlier
//!   revision used a mutex-guarded ring here ("uncontended on the owner
//!   fast path"); profiling fine-grained rounds showed the owner still
//!   paid an atomic RMW + unlock per tree node and every steal serialised
//!   against the owner, which is exactly the tax the Chase–Lev array
//!   removes. The deque (and the sleeper handshake below) live in
//!   [`crate::protocol`], generic over an atomics trait: this module
//!   instantiates them with real `std::sync::atomic` types
//!   ([`StdPlatform`], monomorphized — same machine code as before the
//!   extraction), while `pfg_model` instantiates the *same* code with
//!   model atomics and exhaustively explores its bounded interleavings.
//!   The memory-ordering argument lives on [`Deque`].
//!   Threads that are not pool workers (the caller of a parallel
//!   operation) push to and pop from a shared mutex-guarded **injector**
//!   deque — rarely touched (once per batch, not per tree node), so it
//!   keeps the trivially-sound lock.
//! * **Fork–join via [`crate::join`]** (see `join.rs`): `join(a, b)`
//!   publishes `b` as a stealable [`JobRef`] pointing into the caller's
//!   stack, runs `a` inline, then either pops `b` back (not stolen: run it
//!   inline, no synchronisation at all) or — if a thief took it — *helps*:
//!   it steals and executes other jobs until `b`'s completion flag is set,
//!   parking on the pool condvar only when there is nothing left to steal.
//!   No thread ever blocks while useful work exists, which is what makes
//!   nested parallelism deadlock-free: every job published by a frame is
//!   either executed by that frame or by a thief it waits for.
//! * **Adaptive splitting, deterministic decomposition.** A parallel
//!   operation over `n` items is split by *recursive halving* into
//!   [`decide_pieces`]`(n)` leaf pieces — a function of `n` **only** (the
//!   static `PIECES_PER_WORKER` tuning of the FIFO design is gone). The
//!   split tree adapts to load at run time — a subtree is only distributed
//!   if a thief actually steals it; unstolen halves are popped back and
//!   run inline at the cost of one deque push/pop — while the *leaf
//!   boundaries* and the left-to-right combine order never change. Fold
//!   accumulators and float sums are therefore byte-for-byte reproducible
//!   across runs *and* across worker counts (stealing may reorder
//!   execution, never results); under the FIFO design they changed with
//!   `RAYON_NUM_THREADS`.
//! * **`MaybeUninit` result slots.** [`run_batch`] writes each leaf result
//!   into a [`MaybeUninit`] slot ([`Slots`]); the join tree executes every
//!   leaf exactly once, and join completion publishes the write before the
//!   caller reads it, so no per-slot `Mutex` is needed (the FIFO design
//!   boxed every result and every dealt item in one). Per-slot "written"
//!   flags exist only so the panic path can drop the results that were
//!   produced before the unwind.
//! * **Panic propagation.** A panicking task is caught on the thief, the
//!   payload is stashed in the job, and [`crate::join`] re-raises it on
//!   the caller after the sibling subtree has settled. Pending jobs of an
//!   unwinding `join` that were *not* stolen are cancelled (popped and
//!   dropped unexecuted). Workers survive; the pool keeps serving.
//! * **Targeted wake-ups.** Sleepers park on one pool condvar. Publishing
//!   a job wakes at most one worker, and only if some worker is actually
//!   asleep and no previous wake is still in flight
//!   ([`SleepWake::wake_for_work`]); job completion wakes all sleepers so a
//!   caller waiting on that job's flag re-checks it
//!   ([`SleepWake::wake_all`]).
//!   The FIFO design's `notify_all` per round — every worker woken for
//!   every batch — is gone, which is most visible on fine-grained rounds.
//! * The **global pool** is built lazily on first use, sized by
//!   `RAYON_NUM_THREADS` when set to a positive integer (like real
//!   rayon), otherwise by the cached hardware probe
//!   [`hardware_parallelism`]. [`crate::ThreadPool::install`] scopes a
//!   caller-owned pool onto the current thread via the same thread-local
//!   context the workers use.

use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::join::join_in;
use crate::protocol::deque::{Deque, Steal};
use crate::protocol::sleep::SleepWake;
use crate::protocol::{MutationSpec, SlotPayload, StdParker, StdPlatform};

/// Minimum number of items before a parallel operation bothers dispatching
/// to the pool; below this the dispatch cost dominates the work.
pub(crate) const MIN_PAR_LEN: usize = 512;

/// Minimum items per leaf piece of the split tree, so leaf bookkeeping
/// never outweighs the per-leaf work.
const MIN_PIECE_LEN: usize = 128;

/// Cap on the leaf count of one operation's split tree. Well above any
/// plausible worker count, so stealing always has slack; bounded because
/// every tree node costs one deque push/pop even when nothing is stolen,
/// which measurably taxes large cheap-per-item rounds (the executor bench
/// regressed ~25% at 128 leaves before this was tightened from 256).
const MAX_PIECES: usize = 64;

/// Steal attempts (each a scan over every deque, with a `yield_now`
/// between rounds) a thread waiting on a join flag makes before parking.
const WAIT_SPIN_ROUNDS: usize = 32;

/// Idle scan rounds a worker makes before parking. Deliberately small:
/// a parked worker costs nothing, a spinning one steals CPU from the
/// threads that have real work (pathological on single-core hosts).
const WORKER_SPIN_ROUNDS: usize = 4;

thread_local! {
    /// What the current thread *is* to the executor: a pool worker (which
    /// pool, which deque), a thread running under
    /// [`crate::ThreadPool::install`], or (when `None`) an unaffiliated
    /// thread that dispatches to the global pool.
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Thread → pool affiliation, kept in [`CTX`].
enum Ctx {
    /// A worker thread of `pool`, owning `pool.workers[index]`.
    Worker(Arc<PoolState>, usize),
    /// A thread inside [`crate::ThreadPool::install`] of `pool` (pushes
    /// go to the pool's injector, not to a worker deque).
    External(Arc<PoolState>),
}

impl Ctx {
    fn pool(&self) -> &Arc<PoolState> {
        match self {
            Ctx::Worker(pool, _) | Ctx::External(pool) => pool,
        }
    }
}

/// A type-erased pointer to a job living on some thread's stack frame.
///
/// The pointee is pinned by that frame until the job is either executed
/// (its completion flag set) or popped back unexecuted; `JobRef`s are
/// therefore always dereferenceable while they sit in a deque (see
/// `join.rs` for the pinning argument).
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const (), &PoolState),
}

// SAFETY: a JobRef is a pointer plus fn pointer; the pointee is only ever
// accessed through `execute`, whose exactly-once discipline is enforced by
// the deques (an executed job is never re-enqueued).
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// `data` must outlive every use of the returned `JobRef`, and
    /// `execute_fn` must be callable exactly once on it.
    pub(crate) unsafe fn new(
        data: *const (),
        execute_fn: unsafe fn(*const (), &PoolState),
    ) -> Self {
        JobRef { data, execute_fn }
    }

    /// Same stack job? (Pointer identity; a live frame address is never
    /// shared by two pending jobs, see `pop_job_if`.)
    fn same_as(&self, other: &JobRef) -> bool {
        std::ptr::eq(self.data, other.data)
            && std::ptr::fn_addr_eq(self.execute_fn, other.execute_fn)
    }

    /// # Safety
    /// Must be called exactly once, while the pointee is still pinned.
    pub(crate) unsafe fn execute(self, pool: &PoolState) {
        (self.execute_fn)(self.data, pool)
    }
}

/// Initial capacity (slots) of a worker deque's circular buffer. Grows by
/// doubling; 64 covers every split tree this executor produces
/// ([`MAX_PIECES`] = 64 leaves ⇒ at most ~6 simultaneously pending jobs
/// per worker), so growth only triggers under deeply nested operations.
const DEQUE_INITIAL_CAP: usize = 64;

/// One worker deque: the generic Chase–Lev protocol of
/// [`crate::protocol::deque`] instantiated with real `std::sync::atomic`
/// types and [`JobRef`] payloads. The memory-ordering argument lives on
/// [`Deque`]; the payload-cell story (two independent relaxed pointer
/// words, validated before trust) lives on `JobCell` below.
type WorkerDeque = Deque<StdPlatform, JobRef>;

/// Storage for one [`JobRef`] in a deque cell. A `JobRef` is two
/// pointer-sized words (data pointer + fn pointer), stored as two
/// *independent* relaxed atomics — there is no double-word atomic here,
/// and none is needed: a reader's loads are only *trusted* after
/// validation (the owner's fence-then-`top`-load, or a thief's winning
/// CAS on `top`) proves the cell could not have been overwritten between
/// the loads; losers discard whatever possibly-torn pair they read.
pub(crate) struct JobCell {
    data: AtomicPtr<()>,
    exec: AtomicPtr<()>,
}

impl SlotPayload<StdPlatform> for JobRef {
    type Cell = JobCell;

    fn empty_cell() -> JobCell {
        JobCell {
            data: AtomicPtr::new(std::ptr::null_mut()),
            exec: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    fn write_cell(cell: &JobCell, job: JobRef) {
        cell.data.store(job.data.cast_mut(), Ordering::Relaxed);
        cell.exec
            .store(job.execute_fn as *mut (), Ordering::Relaxed);
    }

    fn read_cell(cell: &JobCell) -> JobRef {
        let data = cell.data.load(Ordering::Relaxed) as *const ();
        let exec = cell.exec.load(Ordering::Relaxed);
        type ExecFn = unsafe fn(*const (), &PoolState);
        // SAFETY: transmuting a data pointer back to the fn pointer it was
        // cast from in `write_cell`; validation (CAS win / owner fence)
        // proves the pair is the coherent value of one write before use.
        let execute_fn: ExecFn = unsafe { std::mem::transmute::<*mut (), ExecFn>(exec) };
        JobRef { data, execute_fn }
    }

    fn poison_cell(_cell: &JobCell) {
        // Unreachable in production: the `free_on_grow` mutation that
        // poisons cells is compile-time `false` outside the model build.
    }
}

/// Shared state of one thread pool.
pub(crate) struct PoolState {
    /// Deque for jobs published by non-worker threads (operation callers).
    /// Same ownership discipline as a worker deque: the publisher pops at
    /// the back, everyone else steals from the front.
    injector: Mutex<VecDeque<JobRef>>,
    /// One deque per worker thread; `num_threads - 1` entries (the caller
    /// of an operation always helps, taking the last parallelism slot).
    workers: Vec<WorkerDeque>,
    /// The sleeper/pending-wake handshake ([`SleepWake`], instantiated
    /// with std atomics and the mutex + condvar [`StdParker`]): who is
    /// parked, whether a work wake-up is in flight, how many published
    /// jobs are unclaimed, and the shutdown flag.
    sleep: SleepWake<StdPlatform, StdParker>,
    /// Parallelism this pool was built for. Only `num_threads - 1` worker
    /// threads exist — the batch caller always helps, taking the last
    /// slot, so `num_threads` threads compute concurrently.
    pub(crate) num_threads: usize,
    /// Seeded steal-order perturbation; `None` (the default) keeps the
    /// deterministic round-robin scan and costs one branch per steal scan.
    chaos: Option<Chaos>,
}

/// Steal-order chaos mode: with a seed set (via
/// [`crate::ThreadPoolBuilder::chaos_seed`] or, for the global pool, the
/// `PFG_CHAOS_SEED` environment variable), every steal scan draws from a
/// seeded counter-based hash to (a) rotate and optionally reverse the
/// victim scan order and (b) inject a `yield_now` at the steal point about
/// a quarter of the time. This perturbs which thief wins each race and in
/// what order subtrees migrate — exactly the schedule dimension the
/// executor's determinism contract says results must be invariant to — so
/// the racecheck/chaos suites can stress many distinct steal orders
/// reproducibly (same seed → same perturbation *sequence*; thread timing
/// still varies, which is the point). Results must stay byte-identical
/// because decomposition is a function of input length only.
struct Chaos {
    seed: u64,
    /// Global draw counter: each steal scan consumes one ticket, so the
    /// perturbation sequence is a pure function of (seed, arrival order).
    ticket: AtomicUsize,
}

impl Chaos {
    fn new(seed: u64) -> Self {
        Chaos {
            seed,
            ticket: AtomicUsize::new(0),
        }
    }

    /// The next perturbation word: splitmix64 over (seed, ticket).
    fn next(&self) -> u64 {
        let t = self.ticket.fetch_add(1, Ordering::Relaxed) as u64;
        let mut z = self
            .seed
            .wrapping_add(t.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl PoolState {
    /// Creates a pool advertising `num_threads` of parallelism, spawning
    /// `num_threads - 1` parked workers: the operation caller always
    /// helps, so it occupies the remaining slot and the number of threads
    /// computing concurrently equals `num_threads`.
    pub(crate) fn spawn(
        num_threads: usize,
        chaos_seed: Option<u64>,
    ) -> (Arc<Self>, Vec<std::thread::JoinHandle<()>>) {
        let worker_count = num_threads.saturating_sub(1);
        let state = Arc::new(PoolState {
            injector: Mutex::new(VecDeque::new()),
            workers: (0..worker_count)
                .map(|_| WorkerDeque::new(DEQUE_INITIAL_CAP, MutationSpec::none()))
                .collect(),
            sleep: SleepWake::new(MutationSpec::none()),
            num_threads,
            chaos: chaos_seed.map(Chaos::new),
        });
        let handles = (0..worker_count)
            .map(|index| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-worker-{index}"))
                    .spawn(move || worker_loop(state, index))
                    .expect("spawn rayon-shim worker")
            })
            .collect();
        (state, handles)
    }

    /// Wakes every sleeper (forwarded to [`SleepWake::wake_all`]). Used
    /// on job completion: the thread waiting on that job's flag must
    /// re-check it, and a single `notify_one` could wake an unrelated
    /// worker instead.
    pub(crate) fn wake_all(&self) {
        self.sleep.wake_all();
    }

    /// Tells workers to exit once out of work, and wakes them.
    pub(crate) fn shut_down(&self) {
        self.sleep.shut_down();
    }
}

/// Publishes `job` where thieves can find it: the current worker's own
/// deque when the calling thread is a worker of `pool`, else the pool's
/// injector.
pub(crate) fn push_job(pool: &Arc<PoolState>, job: JobRef) {
    // Announce before the push: once the job is in a deque a thief can
    // claim it, and `claimed()` must never outrun the matching count
    // (`pending_jobs` would wrap to `usize::MAX` and pin the parking
    // re-check open — see `SleepWake::announce`).
    pool.sleep.announce();
    let pushed_local = CTX.with(|c| match &*c.borrow() {
        Some(Ctx::Worker(p, i)) if Arc::ptr_eq(p, pool) => {
            p.workers[*i].push(job);
            true
        }
        _ => false,
    });
    if !pushed_local {
        pool.injector
            .lock()
            .expect("pool injector lock")
            .push_back(job);
    }
    pool.sleep.wake_for_work();
}

/// Pops `job` back from where [`push_job`] put it, if it is still there
/// (i.e. no thief stole it). Returns `true` on success.
///
/// Matching is by pointer identity, which is unambiguous: a `JobRef` only
/// sits in a deque while its stack frame is pinned inside `join`, and a
/// frame never hosts two pending jobs at the same address, so an address
/// match *is* the job we pushed. LIFO discipline means our job is at the
/// bottom unless it was stolen (deeper pushes have already been popped by
/// the time we look) — so on the worker path we `take` unconditionally
/// and check identity after: the popped job is either ours or the deque
/// had already lost ours to a thief, in which case whatever `take`
/// returned belongs to an *outer* pinned frame and is pushed straight
/// back (bottom position is unchanged by a take-then-push pair, so the
/// restore is invisible to thieves' FIFO order).
pub(crate) fn pop_job_if(pool: &Arc<PoolState>, job: &JobRef) -> bool {
    let deque = CTX.with(|c| match &*c.borrow() {
        Some(Ctx::Worker(p, i)) if Arc::ptr_eq(p, pool) => Some(*i),
        _ => None,
    });
    let popped = match deque {
        Some(i) => match pool.workers[i].take() {
            Some(bottom) if bottom.same_as(job) => true,
            Some(other) => {
                // Ours was stolen; `other` is an outer frame's pending job.
                pool.workers[i].push(other);
                false
            }
            None => false,
        },
        None => {
            let mut jobs = pool.injector.lock().expect("pool injector lock");
            if jobs.back().is_some_and(|back| back.same_as(job)) {
                jobs.pop_back();
                true
            } else {
                false
            }
        }
    };
    if popped {
        pool.sleep.claimed();
    }
    popped
}

/// Claims one job for the current thread: own deque back first (dive into
/// our own subtree, cache-hot), then the injector front, then the other
/// workers' deque fronts in round-robin order starting after our own slot
/// (deterministic scan; the *outcome* of racing thieves is timing-
/// dependent either way, and decomposition determinism makes that
/// invisible in results).
fn find_work(pool: &PoolState, own_index: Option<usize>) -> Option<JobRef> {
    if let Some(i) = own_index {
        if let Some(job) = pool.workers[i].take() {
            pool.sleep.claimed();
            return Some(job);
        }
    }
    if let Some(job) = pool
        .injector
        .lock()
        .expect("pool injector lock")
        .pop_front()
    {
        pool.sleep.claimed();
        return Some(job);
    }
    let k = pool.workers.len();
    // Chaos mode perturbs the scan: random rotation, optional reversal,
    // and an injected yield at the steal point so racing thieves swap
    // arrival order (see [`Chaos`]). Default: round-robin after own slot.
    let (start, reversed) = match (&pool.chaos, k) {
        (Some(chaos), 1..) => {
            let r = chaos.next();
            if r & 3 == 0 {
                std::thread::yield_now();
            }
            ((r >> 2) as usize % k, r & 2 == 0)
        }
        _ => (own_index.map_or(0, |i| i + 1), false),
    };
    for offset in 0..k {
        let target = if reversed {
            (start + k - offset) % k
        } else {
            (start + offset) % k
        };
        if own_index == Some(target) {
            continue;
        }
        // A lost CAS (`Retry`) is treated like empty and the scan moves to
        // the next victim: the job went to *someone*, so progress was
        // made, and every caller of `find_work` already loops — `None`
        // with `pending_jobs > 0` never parks (see `park`'s re-check).
        if let Steal::Success(job) = pool.workers[target].steal() {
            pool.sleep.claimed();
            return Some(job);
        }
    }
    None
}

/// Blocks until `done` is set, *helping* in the meantime: steals and
/// executes other jobs (which is what keeps nested `join`s deadlock-free
/// and cores busy), spins briefly when there is nothing to steal, and
/// parks on the pool condvar past [`WAIT_SPIN_ROUNDS`]. Job completion
/// wakes all sleepers, so the flag is always re-checked promptly.
pub(crate) fn wait_for_latch(pool: &Arc<PoolState>, done: &AtomicBool) {
    let own_index = CTX.with(|c| match &*c.borrow() {
        Some(Ctx::Worker(p, i)) if Arc::ptr_eq(p, pool) => Some(*i),
        _ => None,
    });
    let mut idle_rounds = 0;
    while !done.load(Ordering::Acquire) {
        if let Some(job) = find_work(pool, own_index) {
            // SAFETY: the job came from a deque, so its frame is pinned
            // and it has not been executed yet.
            unsafe { job.execute(pool) };
            idle_rounds = 0;
        } else if idle_rounds < WAIT_SPIN_ROUNDS {
            std::thread::yield_now();
            idle_rounds += 1;
        } else {
            pool.sleep.park(Some(done));
        }
    }
}

fn worker_loop(state: Arc<PoolState>, index: usize) {
    // Parallel operations inside tasks dispatch back to this pool, and
    // `push_job` routes this thread's pushes to its own deque.
    CTX.with(|c| *c.borrow_mut() = Some(Ctx::Worker(Arc::clone(&state), index)));
    let mut idle_rounds = 0;
    loop {
        if let Some(job) = find_work(&state, Some(index)) {
            // SAFETY: as in `wait_for_latch`.
            unsafe { job.execute(&state) };
            idle_rounds = 0;
            continue;
        }
        if state.sleep.is_shut_down() {
            return;
        }
        if idle_rounds < WORKER_SPIN_ROUNDS {
            std::thread::yield_now();
            idle_rounds += 1;
        } else {
            state.sleep.park(None);
            idle_rounds = 0;
        }
    }
}

/// The pool the current thread's parallel operations dispatch to: the
/// innermost installed pool (or this worker's own pool), otherwise the
/// lazily-built global pool. `None` means "run inline" (single-threaded
/// configuration).
pub(crate) fn dispatch_pool() -> Option<Arc<PoolState>> {
    if let Some(pool) = CTX.with(|c| c.borrow().as_ref().map(|ctx| Arc::clone(ctx.pool()))) {
        return (pool.num_threads > 1).then_some(pool);
    }
    if global_size() <= 1 {
        return None;
    }
    Some(Arc::clone(global_pool()))
}

/// Worker count parallel operations split across on this thread.
pub(crate) fn effective_parallelism() -> usize {
    CTX.with(|c| c.borrow().as_ref().map(|ctx| ctx.pool().num_threads))
        .unwrap_or_else(global_size)
}

/// Sets `pool` as the current thread's dispatch target for the duration of
/// `op`, restoring the previous target even if `op` unwinds.
pub(crate) fn with_pool<R>(pool: &Arc<PoolState>, op: impl FnOnce() -> R) -> R {
    struct Restore(Option<Ctx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CTX.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(CTX.with(|c| c.borrow_mut().replace(Ctx::External(Arc::clone(pool)))));
    op()
}

/// The machine's available parallelism, probed once per process. The std
/// probe is uncached on Linux (`sched_getaffinity` + cgroup reads), so
/// both the global pool size and the sort's hardware gate share this.
pub(crate) fn hardware_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The default worker count: `RAYON_NUM_THREADS` when set to a positive
/// integer (as in real rayon, `0` and garbage fall back to the detected
/// parallelism), otherwise [`hardware_parallelism`].
pub(crate) fn global_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| resolve_num_threads(std::env::var("RAYON_NUM_THREADS").ok().as_deref()))
}

/// Resolves a `RAYON_NUM_THREADS`-style override against the machine's
/// available parallelism. Factored out of [`global_size`] so the parsing is
/// unit-testable without racing the process-wide cache.
pub(crate) fn resolve_num_threads(env_value: Option<&str>) -> usize {
    match env_value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => hardware_parallelism(),
    }
}

/// The global pool's chaos seed: `PFG_CHAOS_SEED` when set to an integer
/// (read once, like `RAYON_NUM_THREADS`), otherwise off. Lets the CI
/// chaos matrix stress the whole test binary's steal orders without
/// touching call sites.
pub(crate) fn global_chaos_seed() -> Option<u64> {
    static SEED: OnceLock<Option<u64>> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("PFG_CHAOS_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
    })
}

/// The process-wide pool used when no [`crate::ThreadPool`] is installed.
/// Its workers are detached and live for the rest of the process.
fn global_pool() -> &'static Arc<PoolState> {
    static GLOBAL: OnceLock<Arc<PoolState>> = OnceLock::new();
    GLOBAL.get_or_init(|| PoolState::spawn(global_size(), global_chaos_seed()).0)
}

/// How many leaf pieces a parallel operation over `len` items splits into.
/// `1` means "run inline, skip the pool".
///
/// The piece count is a function of `len` **only** — never of the worker
/// count — so leaf boundaries, `fold` accumulator grouping and
/// left-to-right combine order are identical for every
/// `RAYON_NUM_THREADS` (including 1, whose single worker walks the same
/// piece tree inline) and unaffected by stealing. An earlier revision let
/// single-threaded configurations skip the split and fold with one
/// accumulator; the chaos-determinism suite caught that as a byte-level
/// divergence between `RAYON_NUM_THREADS=1` and every parallel run, so
/// the worker count no longer participates at all.
pub(crate) fn decide_pieces(len: usize) -> usize {
    if len < MIN_PAR_LEN {
        return 1;
    }
    len.div_ceil(MIN_PIECE_LEN).clamp(1, MAX_PIECES)
}

/// [`decide_pieces`] under a `with_max_len(max_len)` hint: every piece
/// holds at most `max_len` items. The hint declares the items *heavy*
/// (e.g. one full Dijkstra per item), so the [`MIN_PAR_LEN`] cheap-item
/// gate and the [`MAX_PIECES`] bookkeeping cap both yield to it; the
/// result is still a function of `(len, max_len)` only, preserving
/// cross-worker-count determinism.
pub(crate) fn decide_pieces_max_len(len: usize, max_len: usize) -> usize {
    if len < 2 {
        return 1;
    }
    decide_pieces(len).max(len.div_ceil(max_len.max(1)))
}

/// Write-once result slots shared across the split tree: slot `i` is
/// written by whichever thread executes leaf `i`, exactly once.
///
/// The `written` flags are *not* a synchronisation protocol — the join
/// tree already guarantees exactly-once execution and publishes writes to
/// the caller (each completed job's `done` flag is an Acquire/Release
/// edge) — they exist so the panic path can drop exactly the results that
/// were produced before the unwind.
struct Slots<R> {
    data: Vec<UnsafeCell<MaybeUninit<R>>>,
    written: Vec<AtomicBool>,
    /// Shadow-write registry for the exactly-once contract (checked under
    /// `--cfg pfg_racecheck`, zero-sized otherwise).
    audit: pfg_audit::DisjointWriteAudit,
}

// SAFETY: slots are written by at most one thread each (exactly-once leaf
// execution) and only read after a happens-before edge; `R: Send` lets the
// value move across the writing thread.
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    fn new(n: usize) -> Self {
        Slots {
            data: (0..n)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            written: (0..n).map(|_| AtomicBool::new(false)).collect(),
            audit: pfg_audit::DisjointWriteAudit::cells("pool result slots", n),
        }
    }

    /// # Safety
    /// Each index may be written at most once, by the thread executing
    /// leaf `i`.
    unsafe fn write(&self, i: usize, value: R) {
        self.audit.write_once(i);
        (*self.data[i].get()).write(value);
        self.written[i].store(true, Ordering::Release);
    }

    /// Takes all results, in slot order. Panics if any slot was skipped
    /// (cannot happen after a non-panicking batch).
    fn into_vec(mut self) -> Vec<R> {
        let data = std::mem::take(&mut self.data);
        let written = std::mem::take(&mut self.written);
        data.into_iter()
            .zip(written)
            .map(|(cell, flag)| {
                assert!(flag.into_inner(), "completed batch wrote every slot");
                // SAFETY: the flag confirms the slot was written.
                unsafe { cell.into_inner().assume_init() }
            })
            .collect()
    }
}

impl<R> Drop for Slots<R> {
    fn drop(&mut self) {
        // Non-empty only on the panic path (`into_vec` takes the vectors).
        for (cell, flag) in self.data.iter_mut().zip(&self.written) {
            if flag.load(Ordering::Acquire) {
                // SAFETY: flag says written; we have exclusive access.
                unsafe { cell.get_mut().assume_init_drop() };
            }
        }
    }
}

/// Owned items dealt to the split tree: leaf `i` takes `items[i]` by value,
/// exactly once. The `taken` flags let the unwind path drop exactly the
/// items that were never consumed (leaves cancelled by a panic elsewhere).
struct ItemSlots<T> {
    data: Vec<UnsafeCell<MaybeUninit<T>>>,
    taken: Vec<AtomicBool>,
    /// Exactly-once take registry, mirroring [`Slots::audit`].
    audit: pfg_audit::DisjointWriteAudit,
}

// SAFETY: as for `Slots` — exactly-once access per slot with a
// happens-before edge back to the owner.
unsafe impl<T: Send> Sync for ItemSlots<T> {}

impl<T> ItemSlots<T> {
    fn new(items: Vec<T>) -> Self {
        let n = items.len();
        ItemSlots {
            data: items
                .into_iter()
                .map(|x| UnsafeCell::new(MaybeUninit::new(x)))
                .collect(),
            taken: (0..n).map(|_| AtomicBool::new(false)).collect(),
            audit: pfg_audit::DisjointWriteAudit::cells("pool item slots", n),
        }
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    /// # Safety
    /// Each index may be taken at most once, by the thread executing
    /// leaf `i`.
    unsafe fn take(&self, i: usize) -> T {
        self.audit.write_once(i);
        self.taken[i].store(true, Ordering::Release);
        (*self.data[i].get()).assume_init_read()
    }
}

impl<T> Drop for ItemSlots<T> {
    fn drop(&mut self) {
        for (cell, flag) in self.data.iter_mut().zip(&self.taken) {
            if !flag.load(Ordering::Acquire) {
                // SAFETY: never taken, so the slot still owns the item.
                unsafe { cell.get_mut().assume_init_drop() };
            }
        }
    }
}

/// Runs `task(0..total)` across the current pool, returning the results in
/// task order. The calling thread executes the split tree itself, publishing
/// stealable halves as it descends (see the module docs); it returns once
/// every leaf has completed. The first panicking leaf's payload (in tree
/// order) is re-raised on the caller after in-flight siblings settle.
pub(crate) fn run_batch<R, F>(total: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let pool = match dispatch_pool() {
        Some(pool) if total > 1 => pool,
        _ => return (0..total).map(task).collect(),
    };
    let slots = Slots::new(total);
    exec_leaves(&pool, &slots, &task, 0, total);
    slots.into_vec()
}

/// Recursive halving over leaf indices `[lo, hi)`: each level publishes
/// the right half as a stealable job and runs the left half inline.
fn exec_leaves<R, F>(pool: &Arc<PoolState>, slots: &Slots<R>, task: &F, lo: usize, hi: usize)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if hi - lo == 1 {
        let value = task(lo);
        // SAFETY: leaf `lo` executes exactly once (binary tree over
        // disjoint index ranges).
        unsafe { slots.write(lo, value) };
        return;
    }
    let mid = lo + (hi - lo) / 2;
    join_in(
        pool,
        || exec_leaves(pool, slots, task, lo, mid),
        || exec_leaves(pool, slots, task, mid, hi),
    );
}

/// Like [`run_batch`], but deals the *owned* `items` out to the tasks:
/// leaf `i` receives `items[i]` by value. Results come back in item order.
pub(crate) fn run_batch_owned<T, R, F>(items: Vec<T>, task: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 || dispatch_pool().is_none() {
        return items.into_iter().map(task).collect();
    }
    let slots = ItemSlots::new(items);
    let total = slots.len();
    // SAFETY: `run_batch` invokes the closure exactly once per index.
    run_batch(total, |i| task(unsafe { slots.take(i) }))
}
