//! Offline stand-in for the `rayon` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim provides the *subset* of the rayon 1.x API that the workspace
//! actually uses, implemented on `std::thread::scope`. Parallelism is real:
//! eager combinators (`map`, `filter`, `for_each`, `fold`, `sum`) split
//! their input into one contiguous chunk per worker thread and evaluate the
//! user closure concurrently. The fork–join work-stealing scheduler of real
//! rayon is *not* reproduced — each adapter is a single fork–join round —
//! but the observable semantics (ordering, determinism of `collect`, the
//! `fold`/`reduce` contract) match rayon for the associative operations the
//! algorithms rely on.
//!
//! Supported surface:
//!
//! * [`prelude`] — [`IntoParallelIterator`], [`IntoParallelRefIterator`]
//!   (`par_iter`), [`ParallelSliceMut`] (`par_sort_by`,
//!   `par_sort_unstable_by`);
//! * [`ParIter`] — `map`, `filter`, `enumerate`, `zip`, `cloned`,
//!   `for_each`, `fold`, `reduce`, `sum`, `min`, `max`, `min_by_key`,
//!   `max_by_key`, `count`, `collect`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] — `num_threads`, `build`,
//!   `install` (install scopes an override of the worker count via a
//!   thread-local, which the eager adapters consult when splitting);
//! * [`current_num_threads`].
//!
//! When the swap to the real crates-io rayon happens, delete this crate and
//! point the `[workspace.dependencies]` entry at the registry version; no
//! downstream source changes should be needed.

use std::cell::Cell;
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;

/// Minimum number of items before an eager adapter bothers spawning worker
/// threads; below this the per-thread spawn cost dominates.
const MIN_PAR_LEN: usize = 512;

thread_local! {
    /// Per-thread override of the worker count, set by [`ThreadPool::install`].
    static NUM_THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel adapters will split across: the
/// innermost [`ThreadPool::install`] override if one is active, otherwise
/// the machine's available parallelism.
pub fn current_num_threads() -> usize {
    NUM_THREADS_OVERRIDE.with(|o| match o.get() {
        Some(n) => n,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    })
}

/// Splits `items` into one contiguous chunk per worker and runs `work` on
/// each chunk on its own scoped thread, returning one result per chunk in
/// input order. Small inputs run as a single sequential `work` call. The
/// calling thread's worker-count override (from [`ThreadPool::install`]) is
/// propagated into the workers, so nested adapter calls respect the
/// enclosing pool instead of falling back to machine parallelism.
fn run_chunked<T, R, W>(items: Vec<T>, work: W) -> Vec<R>
where
    T: Send,
    R: Send,
    W: Fn(Vec<T>) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n < MIN_PAR_LEN {
        return vec![work(items)];
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let inherited = NUM_THREADS_OVERRIDE.with(|o| o.get());
    let work = &work;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    // Fresh thread, dies with the scope: set, never restore.
                    NUM_THREADS_OVERRIDE.with(|o| o.set(inherited));
                    work(chunk)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    })
}

/// Applies `f` to every element concurrently, preserving input order.
fn par_apply<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let f = &f;
    let per_chunk = run_chunked(items, move |chunk| {
        chunk.into_iter().map(f).collect::<Vec<U>>()
    });
    let mut out = Vec::with_capacity(n);
    for part in per_chunk {
        out.extend(part);
    }
    out
}

/// Folds each worker chunk with its own accumulator, mirroring rayon's
/// `fold` contract (one accumulator per split, to be combined with an
/// associative `reduce`).
fn par_fold_chunks<T, Acc, ID, F>(items: Vec<T>, identity: ID, fold_op: F) -> Vec<Acc>
where
    T: Send,
    Acc: Send,
    ID: Fn() -> Acc + Sync,
    F: Fn(Acc, T) -> Acc + Sync,
{
    let identity = &identity;
    let fold_op = &fold_op;
    run_chunked(items, move |chunk| {
        chunk.into_iter().fold(identity(), fold_op)
    })
}

/// An eagerly evaluated parallel iterator over an in-memory sequence.
///
/// Unlike rayon's lazy adapters, every combinator that takes a user closure
/// runs it immediately (in parallel) and materialises the result, so chains
/// of adapters cost one pass each. This is a deliberate simplicity/perf
/// trade-off for the shim; see the crate docs.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map, preserving input order.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: par_apply(self.items, f),
        }
    }

    /// Parallel filter, preserving input order.
    pub fn filter<P: Fn(&T) -> bool + Sync>(self, pred: P) -> ParIter<T> {
        let flagged = par_apply(self.items, |x| {
            let keep = pred(&x);
            (x, keep)
        });
        ParIter {
            items: flagged
                .into_iter()
                .filter_map(|(x, keep)| keep.then_some(x))
                .collect(),
        }
    }

    /// Parallel filter-map, preserving input order.
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: par_apply(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Pairs every element with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Zips with another parallel iterator, truncating to the shorter one.
    pub fn zip<B: Send>(self, other: ParIter<B>) -> ParIter<(T, B)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Runs `f` on every element concurrently.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_apply(self.items, f);
    }

    /// Rayon-style fold: one accumulator per parallel chunk. Combine the
    /// resulting accumulators with [`ParIter::reduce`].
    pub fn fold<Acc, ID, F>(self, identity: ID, fold_op: F) -> ParIter<Acc>
    where
        Acc: Send,
        ID: Fn() -> Acc + Sync,
        F: Fn(Acc, T) -> Acc + Sync,
    {
        ParIter {
            items: par_fold_chunks(self.items, identity, fold_op),
        }
    }

    /// Reduces all elements with `op`, starting from `identity()`.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> T
    where
        ID: Fn() -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Sums the elements. Sequential in the shim: summation is
    /// memory-bandwidth bound, so the win from splitting it is negligible
    /// next to the parallel `map` that typically precedes it.
    pub fn sum<S>(self) -> S
    where
        S: Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Minimum element (`None` when empty). Ties resolve like `Iterator::min`.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().min()
    }

    /// Maximum element (`None` when empty). Ties resolve like `Iterator::max`.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// Element minimising `key` (`None` when empty).
    pub fn min_by_key<K: Ord, F: Fn(&T) -> K + Sync>(self, key: F) -> Option<T> {
        self.items.into_iter().min_by_key(|x| key(x))
    }

    /// Element maximising `key` (`None` when empty).
    pub fn max_by_key<K: Ord, F: Fn(&T) -> K + Sync>(self, key: F) -> Option<T> {
        self.items.into_iter().max_by_key(|x| key(x))
    }

    /// Number of elements.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Collects into any `FromIterator` container, in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<T: Clone + Send + Sync> ParIter<&T> {
    /// Clones each referenced element, like `Iterator::cloned`.
    pub fn cloned(self) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().cloned().collect(),
        }
    }
}

impl<T: Copy + Send + Sync> ParIter<&T> {
    /// Copies each referenced element, like `Iterator::copied`.
    pub fn copied(self) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().copied().collect(),
        }
    }
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type of the resulting iterator.
    type Item: Send;
    /// Converts `self` into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;
            fn into_par_iter(self) -> ParIter<$ty> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_into_par_iter!(usize, u32, u64, i32, i64);

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`
/// (the trait behind `.par_iter()` on slices and `Vec`s).
pub trait IntoParallelRefIterator<'a> {
    /// Element type of the resulting iterator (a shared reference).
    type Item: Send;
    /// Iterates the elements of `self` by reference.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel sorting on mutable slices, mirroring `rayon::slice::ParallelSliceMut`.
///
/// The shim sorts sequentially — `std`'s sorts are already highly optimised
/// and the workspace gates its calls behind a size threshold. Replacing this
/// with a parallel merge sort is tracked on the ROADMAP.
pub trait ParallelSliceMut<T: Send> {
    /// Stable sort by comparator (sequential in the shim).
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
    /// Unstable sort by comparator (sequential in the shim).
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        self.sort_by(cmp);
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        self.sort_unstable_by(cmp);
    }
}

/// The traits needed for `.par_iter()`, `.into_par_iter()` and
/// `.par_sort_by(...)` method syntax.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

/// Error returned by [`ThreadPoolBuilder::build`]. The shim cannot actually
/// fail to build a pool, so this is never constructed, but the type keeps
/// `Result`-based call sites source-compatible with real rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count. `0` means "use available parallelism", as in
    /// real rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool. Infallible in the shim, but kept `Result`-typed for
    /// source compatibility.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A scoped worker-count context, mirroring `rayon::ThreadPool`.
///
/// The shim has no persistent workers; [`ThreadPool::install`] simply runs
/// the closure on the calling thread with [`current_num_threads`] overridden
/// to this pool's size, which the eager adapters consult when splitting.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count as the parallelism level.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        // Restore the previous override even if `op` unwinds, so a caught
        // panic cannot leave a stale worker count on this thread.
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                NUM_THREADS_OVERRIDE.with(|o| o.set(self.0));
            }
        }
        let _restore = Restore(NUM_THREADS_OVERRIDE.with(|o| o.replace(Some(self.num_threads))));
        op()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_preserves_order() {
        let v: Vec<usize> = (0..5_000).collect();
        let kept: Vec<usize> = v.into_par_iter().filter(|&x| x % 3 == 0).collect();
        assert_eq!(kept, (0..5_000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_matches_sequential_sum() {
        let v: Vec<u64> = (0..100_000).collect();
        let total = v
            .par_iter()
            .fold(|| 0u64, |acc, &x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..100_000u64).sum());
    }

    #[test]
    fn sum_and_zip() {
        let a: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..10_000).map(|i| (i * 2) as f64).collect();
        let dot: f64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        let expected: f64 = (0..10_000).map(|i| (i * i * 2) as f64).sum();
        assert!((dot - expected).abs() < 1e-6);
    }

    #[test]
    fn for_each_visits_every_element() {
        let counter = AtomicUsize::new(0);
        (0..20_000usize).into_par_iter().for_each(|_| {
            counter.fetch_add(1, AtomicOrdering::Relaxed);
        });
        assert_eq!(counter.load(AtomicOrdering::Relaxed), 20_000);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(nested.install(current_num_threads), 2);
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn install_override_propagates_into_worker_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        // Large enough to force the chunked parallel path.
        let observed: Vec<usize> = pool.install(|| {
            (0..10_000usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(observed.iter().all(|&t| t == 3), "workers saw {:?}", {
            let mut distinct = observed.clone();
            distinct.sort_unstable();
            distinct.dedup();
            distinct
        });
    }

    #[test]
    fn install_restores_override_after_panic() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let caught = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn par_sort_matches_std() {
        let mut v: Vec<i64> = (0..10_000).map(|i| (i * 7919) % 1000).collect();
        let mut expected = v.clone();
        expected.sort();
        v.par_sort_by(|a, b| a.cmp(b));
        assert_eq!(v, expected);
    }
}
