//! Offline stand-in for the `rayon` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim provides the *subset* of the rayon 1.x API that the workspace
//! actually uses. Since PR 4 it is built on a **work-stealing executor**
//! with **lazy, fused adapters**:
//!
//! * `pool` (internal) — per-worker deques (push/pop local, steal remote)
//!   plus a shared injector for non-worker callers. A parallel operation
//!   is split by recursive halving into pieces whose boundaries depend on
//!   the input length **only**; halves are published as stealable jobs and
//!   reclaimed inline when nobody steals them, so granularity adapts to
//!   load while `fold`/`collect` results stay byte-for-byte identical
//!   across multi-threaded worker counts and steals. Worker panics are
//!   caught and
//!   re-raised on the caller, and the workers survive.
//!   `RAYON_NUM_THREADS` pins the global worker count (as in real rayon).
//! * [`join`] — the rayon fork–join primitive. `join(a, b)` publishes `b`
//!   as a stealable job, runs `a`, and either pops `b` back (one deque
//!   push/pop, no synchronisation) or helps — steals other jobs — until
//!   the thief finishes. Waiting threads never block while work exists,
//!   which keeps arbitrarily nested `join`s deadlock-free.
//! * [`iter`] — rayon-style lazy adapters. `map`/`filter`/`filter_map`/
//!   `enumerate`/`zip`/`cloned`/`copied`/`fold`/`with_max_len` fuse into
//!   a single parallel pass executed when a terminal operation
//!   (`collect`, `for_each`, `reduce`, `sum`, `min`/`max`(`_by_key`),
//!   `count`) runs — a chain of k adapters costs one split tree and no
//!   intermediate allocations.
//! * `sort` (internal) — a buffer-based parallel merge sort behind
//!   [`ParallelSliceMut::par_sort_by`] / `par_sort_unstable_by`: std run
//!   sorts at the leaves, `join`-recursive merges that split the larger
//!   run at its midpoint and binary-search the partner, moving elements
//!   through one scratch buffer. Requires only `T: Send`, like real rayon
//!   (the PR 2 index-merge sort needed `T: Sync` as well). Taken only
//!   when both the pool and the hardware offer parallelism
//!   (oversubscription cannot win at sorting).
//!
//! Observable semantics match rayon for the operations the algorithms rely
//! on: `collect` preserves input order, `fold`/`reduce` see one
//! accumulator per contiguous piece combined left to right, `par_sort_by`
//! is stable — and every one of those results is deterministic across
//! runs *and* across all multi-threaded worker counts (stealing may
//! reorder execution, never results). A single-threaded configuration
//! runs fully inline — plain sequential semantics with one accumulator —
//! so float-reduction grouping (and hence bits) can differ between one
//! thread and several, exactly as before; `collect` and the sorts agree
//! across *all* counts.
//!
//! Supported surface:
//!
//! * [`prelude`] — [`IntoParallelIterator`], [`IntoParallelRefIterator`]
//!   (`par_iter`), [`ParallelIterator`], [`IndexedParallelIterator`],
//!   [`ParallelSliceMut`] (`par_sort_by`, `par_sort_unstable_by`,
//!   `par_chunks_mut`);
//! * [`join`];
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] — `num_threads`, `build`,
//!   `install` (scopes all parallel work of the closure — including
//!   nested work on the pool's own workers — onto a caller-owned pool);
//! * [`current_num_threads`].
//!
//! When the swap to the real crates-io rayon happens, delete this crate and
//! point the `[workspace.dependencies]` entry at the registry version; no
//! downstream source changes should be needed.

use std::cmp::Ordering;
use std::fmt;

pub mod iter;
mod join;
mod pool;
pub mod protocol;
mod sort;

pub use join::join;

pub use iter::{
    IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
};

/// Number of worker threads parallel operations split across on the current
/// thread: the innermost [`ThreadPool::install`] pool's size if one is
/// active (or if running on one of its workers), otherwise the global
/// pool's size (`RAYON_NUM_THREADS` when set, else the machine's available
/// parallelism).
pub fn current_num_threads() -> usize {
    pool::effective_parallelism()
}

/// Parallel operations on mutable slices, mirroring
/// `rayon::slice::ParallelSliceMut`. `T: Send` is the only element bound,
/// as in real rayon (the PR 2 sort additionally required `T: Sync`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel stable sort by comparator.
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
    /// Parallel unstable sort by comparator.
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
    /// Parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` elements (the last chunk may be shorter), in order.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero, as in real rayon.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> iter::ChunksMutSource<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        sort::par_merge_sort_by(self, &cmp, true);
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        sort::par_merge_sort_by(self, &cmp, false);
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> iter::ChunksMutSource<'_, T> {
        iter::ChunksMutSource::new(self, chunk_size)
    }
}

/// The traits needed for `.par_iter()`, `.into_par_iter()`, the adapter
/// methods and `.par_sort_by(...)` method syntax.
pub mod prelude {
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
    pub use crate::ParallelSliceMut;
}

/// Error returned by [`ThreadPoolBuilder::build`]. The shim cannot actually
/// fail to build a pool, so this is never constructed, but the type keeps
/// `Result`-based call sites source-compatible with real rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
    chaos_seed: Option<u64>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count. `0` means "use the default" (the
    /// `RAYON_NUM_THREADS` override or the available parallelism), as in
    /// real rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Enables steal-order chaos mode (shim extension, not in real rayon):
    /// every steal scan rotates/reverses its victim order and sometimes
    /// yields at the steal point, driven by a splitmix64 stream over
    /// `(seed, draw index)`. Used by the concurrency-audit suites to
    /// stress many schedules while asserting results stay byte-identical;
    /// the global pool takes its seed from `PFG_CHAOS_SEED` instead.
    pub fn chaos_seed(mut self, seed: u64) -> Self {
        self.chaos_seed = Some(seed);
        self
    }

    /// Builds the pool, spawning its workers. Infallible in the shim, but
    /// kept `Result`-typed for source compatibility.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => pool::global_size(),
            Some(n) => n,
        };
        let (state, workers) = pool::PoolState::spawn(n, self.chaos_seed);
        Ok(ThreadPool { state, workers })
    }
}

/// A caller-owned pool of persistent workers, mirroring `rayon::ThreadPool`.
///
/// Workers are spawned by [`ThreadPoolBuilder::build`], park on the pool's
/// condvar while idle, and are joined when the pool is dropped.
pub struct ThreadPool {
    state: std::sync::Arc<pool::PoolState>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.state.num_threads)
            .finish()
    }
}

impl ThreadPool {
    /// Runs `op` with this pool as the dispatch target: every parallel
    /// operation started by `op` on this thread (and nested operations on
    /// this pool's workers) executes on this pool's workers, with the
    /// calling thread helping. The previous dispatch target is restored
    /// when `op` returns, even by unwinding.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        pool::with_pool(&self.state, op)
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.state.num_threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.state.shut_down();
        for worker in self.workers.drain(..) {
            // A worker that panicked outside a task (a shim bug, not a user
            // panic — those are caught) surfaces here at the latest.
            worker.join().expect("rayon-shim worker exited cleanly");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

    /// A pool large enough to exercise real parallelism even on the
    /// single-core CI machine (oversubscription is fine for correctness
    /// tests).
    fn test_pool() -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(4).build().unwrap()
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = test_pool().install(|| v.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chaos_pools_keep_results_byte_identical() {
        // The chaos mode may only perturb *scheduling*: decomposition is a
        // function of input length alone, so a float fold — the most
        // order-sensitive primitive — must come out bitwise equal to the
        // undisturbed pool's result under every seed.
        let v: Vec<f64> = (0..30_000).map(|i| (i as f64 * 0.1).sin()).collect();
        let sum_under = |pool: ThreadPool| {
            pool.install(|| {
                v.par_iter()
                    .map(|&x| x * 1.000001 + 0.5)
                    .fold(|| 0.0f64, |acc, x| acc + x)
                    .reduce(|| 0.0f64, |a, b| a + b)
            })
        };
        let reference = sum_under(test_pool());
        for seed in [1u64, 2, 3, 0xDEAD_BEEF] {
            let chaotic = ThreadPoolBuilder::new()
                .num_threads(4)
                .chaos_seed(seed)
                .build()
                .unwrap();
            assert_eq!(
                sum_under(chaotic).to_bits(),
                reference.to_bits(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn adapter_chain_fuses_and_preserves_order() {
        let v: Vec<usize> = (0..20_000).collect();
        let got: Vec<(usize, usize)> = test_pool().install(|| {
            v.par_iter()
                .copied()
                .filter(|&x| x % 3 == 0)
                .map(|x| (x, x * x))
                .collect()
        });
        let expected: Vec<(usize, usize)> = (0..20_000)
            .filter(|&x| x % 3 == 0)
            .map(|x| (x, x * x))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn filter_preserves_order() {
        let v: Vec<usize> = (0..5_000).collect();
        let kept: Vec<usize> =
            test_pool().install(|| v.into_par_iter().filter(|&x| x % 3 == 0).collect());
        assert_eq!(kept, (0..5_000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_matches_sequential() {
        let got: Vec<usize> = test_pool().install(|| {
            (0..30_000usize)
                .into_par_iter()
                .filter_map(|x| (x % 7 == 0).then_some(x / 7))
                .collect()
        });
        let expected: Vec<usize> = (0..30_000)
            .filter_map(|x| (x % 7 == 0).then_some(x / 7))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn fold_reduce_matches_sequential_sum() {
        let v: Vec<u64> = (0..100_000).collect();
        let total = test_pool().install(|| {
            v.par_iter()
                .fold(|| 0u64, |acc, &x| acc + x)
                .reduce(|| 0, |a, b| a + b)
        });
        assert_eq!(total, (0..100_000u64).sum());
    }

    #[test]
    fn sum_and_zip() {
        let a: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..10_000).map(|i| (i * 2) as f64).collect();
        let dot: f64 =
            test_pool().install(|| a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum());
        let expected: f64 = (0..10_000).map(|i| (i * i * 2) as f64).sum();
        assert!((dot - expected).abs() < 1e-6);
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let a: Vec<u32> = (0..10_000).collect();
        let b: Vec<u32> = (0..7_531).collect();
        let pairs: Vec<(u32, u32)> =
            test_pool().install(|| a.par_iter().copied().zip(b.par_iter().copied()).collect());
        assert_eq!(pairs.len(), 7_531);
        assert!(pairs.iter().all(|&(x, y)| x == y));
    }

    #[test]
    fn enumerate_yields_global_indices() {
        let v: Vec<u32> = (0..25_000).map(|i| i * 3).collect();
        let ok = test_pool().install(|| {
            v.par_iter()
                .enumerate()
                .map(|(i, &x)| x as usize == i * 3)
                .fold(|| true, |a, b| a && b)
                .reduce(|| true, |a, b| a && b)
        });
        assert!(ok);
    }

    #[test]
    fn min_max_and_keyed_variants() {
        let v: Vec<i64> = (0..40_000).map(|i| (i * 48_271) % 65_537).collect();
        let pool = test_pool();
        assert_eq!(
            pool.install(|| v.par_iter().copied().min()),
            v.iter().copied().min()
        );
        assert_eq!(
            pool.install(|| v.par_iter().copied().max()),
            v.iter().copied().max()
        );
        assert_eq!(
            pool.install(|| v.par_iter().max_by_key(|&&x| x)),
            v.iter().max_by_key(|&&x| x)
        );
        assert_eq!(
            pool.install(|| v.par_iter().min_by_key(|&&x| x)),
            v.iter().min_by_key(|&&x| x)
        );
        assert_eq!(
            pool.install(|| v.par_iter().filter(|&&x| x % 2 == 0).count()),
            v.iter().filter(|&&x| x % 2 == 0).count()
        );
    }

    #[test]
    fn empty_and_tiny_pipelines() {
        let empty: Vec<u64> = Vec::new();
        let collected: Vec<u64> = empty.par_iter().copied().collect();
        assert!(collected.is_empty());
        assert_eq!(empty.par_iter().copied().min(), None);
        assert_eq!(empty.par_iter().count(), 0);
        let one = [42u64];
        assert_eq!(one.par_iter().copied().sum::<u64>(), 42);
    }

    #[test]
    fn for_each_visits_every_element() {
        let counter = AtomicUsize::new(0);
        test_pool().install(|| {
            (0..20_000usize).into_par_iter().for_each(|_| {
                counter.fetch_add(1, AtomicOrdering::Relaxed);
            });
        });
        assert_eq!(counter.load(AtomicOrdering::Relaxed), 20_000);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(nested.install(current_num_threads), 2);
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn install_override_propagates_into_worker_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        // Large enough to force the parallel path.
        let observed: Vec<usize> = pool.install(|| {
            (0..10_000usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(observed.iter().all(|&t| t == 3), "workers saw {:?}", {
            let mut distinct = observed.clone();
            distinct.sort_unstable();
            distinct.dedup();
            distinct
        });
    }

    #[test]
    fn install_restores_override_after_panic() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"))
        }));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn panic_in_worker_task_propagates_and_pool_survives() {
        let pool = test_pool();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..10_000usize).into_par_iter().for_each(|i| {
                    if i == 7_777 {
                        panic!("task panic");
                    }
                });
            })
        }));
        assert!(caught.is_err());
        // The pool keeps serving after a propagated panic.
        let sum: usize = pool.install(|| (0..10_000usize).into_par_iter().sum());
        assert_eq!(sum, (0..10_000).sum());
    }

    #[test]
    fn nested_parallelism_completes_and_matches_sequential() {
        let pool = test_pool();
        let totals: Vec<u64> = pool.install(|| {
            (0..4u64)
                .into_par_iter()
                .map(|block| {
                    (0..50_000u64)
                        .into_par_iter()
                        .map(|x| x + block)
                        .sum::<u64>()
                })
                .collect()
        });
        let expected: Vec<u64> = (0..4u64)
            .map(|block| (0..50_000u64).map(|x| x + block).sum())
            .collect();
        assert_eq!(totals, expected);
    }

    #[test]
    fn concurrent_installs_from_multiple_threads() {
        let handles: Vec<_> = (0..3)
            .map(|t| {
                std::thread::spawn(move || {
                    let pool = ThreadPoolBuilder::new().num_threads(t + 2).build().unwrap();
                    pool.install(|| {
                        assert_eq!(current_num_threads(), t + 2);
                        (0..60_000u64).into_par_iter().map(|x| x * 2).sum::<u64>()
                    })
                })
            })
            .collect();
        let expected: u64 = (0..60_000u64).map(|x| x * 2).sum();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), expected);
        }
    }

    #[test]
    fn par_sort_matches_std() {
        let mut v: Vec<i64> = (0..10_000).map(|i| (i * 7_919) % 1_000).collect();
        let mut expected = v.clone();
        expected.sort();
        test_pool().install(|| v.par_sort_by(|a, b| a.cmp(b)));
        assert_eq!(v, expected);
    }

    #[test]
    fn par_sort_unstable_matches_std_large() {
        let mut v: Vec<i64> = (0..50_000)
            .map(|i| (i * 2_654_435_761_i64) % 10_007)
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        test_pool().install(|| v.par_sort_unstable_by(|a, b| a.cmp(b)));
        assert_eq!(v, expected);
    }

    #[test]
    fn par_sort_is_stable() {
        // Many duplicate keys; payloads record the original order.
        let mut v: Vec<(i64, usize)> = (0..30_000).map(|i| ((i as i64 * 31) % 10, i)).collect();
        test_pool().install(|| v.par_sort_by(|a, b| a.0.cmp(&b.0)));
        for pair in v.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            if pair[0].0 == pair[1].0 {
                assert!(pair[0].1 < pair[1].1, "stability violated: {pair:?}");
            }
        }
    }

    #[test]
    fn par_sort_empty_and_single_element() {
        let mut empty: Vec<i64> = Vec::new();
        empty.par_sort_by(|a, b| a.cmp(b));
        assert!(empty.is_empty());
        empty.par_sort_unstable_by(|a, b| a.cmp(b));
        assert!(empty.is_empty());
        let mut one = vec![9i64];
        one.par_sort_by(|a, b| a.cmp(b));
        assert_eq!(one, vec![9]);
        one.par_sort_unstable_by(|a, b| a.cmp(b));
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn par_sort_propagates_comparator_panic() {
        let pool = test_pool();
        let mut v: Vec<i64> = (0..20_000).rev().collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                v.par_sort_unstable_by(|a, b| {
                    if *a == 13 && *b != 13 {
                        panic!("comparator panic");
                    }
                    a.cmp(b)
                })
            })
        }));
        assert!(caught.is_err());
        // The slice still holds a permutation of the original elements.
        let mut recovered = v.clone();
        recovered.sort_unstable();
        assert_eq!(recovered, (0..20_000).collect::<Vec<_>>());
    }
}
