//! The sleeper/pending-wake handshake, generic over the atomic platform.
//!
//! Moved verbatim-in-logic from `pool.rs` (where the fields lived
//! directly on `PoolState`); the only additions are the [`MutationSpec`]
//! hook on the park entry clear and the [`Parker`] indirection (a
//! mutex + condvar pair in production, the model scheduler's blocking
//! primitive under `--cfg pfg_model`, where a lost wakeup surfaces as a
//! detected deadlock instead of a hang).

use std::sync::atomic::Ordering;

use super::{AtomicCell, AtomicInt, MutationSpec, Parker, Platform, WakeKind};

/// Shared sleep/wake state of one pool: who is parked, whether a work
/// wake-up is in flight, and how many published jobs are unclaimed.
///
/// # Lost-wakeup freedom
///
/// The sleeper increments `sleepers` *before* re-checking
/// `pending_jobs`/`done` (all `SeqCst`), and publishers store those
/// *before* loading `sleepers`; in every interleaving the sleeper either
/// sees the update and skips the wait, or the publisher sees
/// `sleepers > 0` and notifies — and since the sleeper holds the parker
/// lock from the re-check until the wait begins, the notify cannot land
/// in between. Under `--cfg pfg_model` this argument is exhaustively
/// checked, including the PR 4 raced-wake scenario the
/// `skip_park_entry_clear` mutation reintroduces.
pub struct SleepWake<P: Platform, K: Parker> {
    /// The park/notify substrate (never held while working).
    parker: K,
    /// Number of threads currently parked (or committed to parking).
    /// Publishers skip the wake syscall when this is zero.
    sleepers: P::AtomicUsize,
    /// 1 while a work wake-up is in flight (notified but the woken thread
    /// has not rescanned yet); throttles redundant `notify_one`s when jobs
    /// are published faster than workers wake.
    pending_wake: P::AtomicUsize,
    /// Jobs sitting in deques, not yet claimed. Parking threads re-check
    /// this after registering as sleepers, closing the lost-wakeup race.
    pending_jobs: P::AtomicUsize,
    /// Set on shutdown; workers exit once out of work.
    shutdown: P::AtomicBool,
    /// Seeded weakenings for the model's mutation suite; compile-time
    /// all-`false` outside `--cfg pfg_model`.
    mutation: MutationSpec,
}

impl<P: Platform, K: Parker> SleepWake<P, K> {
    pub fn new(mutation: MutationSpec) -> Self {
        SleepWake {
            parker: K::new(),
            sleepers: P::AtomicUsize::new(0),
            pending_wake: P::AtomicUsize::new(0),
            pending_jobs: P::AtomicUsize::new(0),
            shutdown: P::AtomicBool::new(false),
            mutation,
        }
    }

    /// A job is *about to be* published: account for it **before** it
    /// becomes claimable. Callers must `announce` strictly before pushing
    /// the job where another thread can steal it, and call
    /// [`wake_for_work`](Self::wake_for_work) after the push.
    ///
    /// The order is load-bearing: the model checker found that counting
    /// after the push lets a racing claim run `claimed()` first, wrapping
    /// `pending_jobs` from 0 to `usize::MAX` — after which the parking
    /// re-check (`pending_jobs == 0`) never passes and idle workers spin
    /// instead of sleeping. Announce-then-push makes every `claimed()`
    /// follow its own `announce()` (a claim needs the push, the push needs
    /// the announce), so the counter never goes negative.
    pub fn announce(&self) {
        self.pending_jobs.fetch_add(1, Ordering::SeqCst);
    }

    /// A published job was claimed (popped back or stolen).
    pub fn claimed(&self) {
        self.pending_jobs.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wakes at most one sleeping worker to come steal a just-pushed job.
    /// Skipped entirely (no lock, no syscall) when nobody sleeps or a
    /// previous work wake-up is still in flight.
    pub fn wake_for_work(&self) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        if self.pending_wake.swap(1, Ordering::Relaxed) == 1 {
            return;
        }
        self.parker.locked(|| Some(WakeKind::One));
    }

    /// Wakes every sleeper. Used on job completion (the thread waiting on
    /// that job's flag must re-check it — `One` could wake an unrelated
    /// worker instead) and on shutdown.
    pub fn wake_all(&self) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        self.parker.locked(|| Some(WakeKind::All));
    }

    /// Parks the current thread until any wake-up, unless work or the
    /// monitored condition appeared while committing to sleep. `done`
    /// is the join flag a waiter is blocked on (`None` for idle workers).
    pub fn park(&self, done: Option<&P::AtomicBool>) {
        self.parker.park_if(|| {
            // A parking thread just scanned every deque and found nothing,
            // so any wake-up still "in flight" has been serviced or
            // expired: clear the throttle on *entry* as well as on exit.
            // Without the entry clear, a publisher racing a waker-less
            // park exit could set the flag, notify an empty wait set, and
            // leave the stale 1 suppressing every future work wake-up
            // (silently degrading the pool to inline execution). The
            // `skip_park_entry_clear` mutation removes exactly this line;
            // the model's park/notify scenario catches it as a deadlock.
            if !self.mutation.skip_park_entry_clear() {
                self.pending_wake.store(0, Ordering::Relaxed);
            }
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            self.pending_jobs.load(Ordering::SeqCst) == 0
                && !self.shutdown.load(Ordering::SeqCst)
                && done.is_none_or(|d| !d.load(Ordering::SeqCst))
        });
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        self.pending_wake.store(0, Ordering::Relaxed);
    }

    /// Tells workers to exit once out of work, and wakes them. The store
    /// happens under the parker lock so it cannot land between a parker's
    /// re-check and its wait.
    pub fn shut_down(&self) {
        self.parker.locked(|| {
            self.shutdown.store(true, Ordering::SeqCst);
            Some(WakeKind::All)
        });
    }

    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Model-only scenario hook: seed the "wake in flight" throttle as if a
    /// work wake-up had just landed on an empty wait set (the residue of a
    /// publisher racing a waker-less park exit — see the entry-clear comment
    /// in [`SleepWake::park`]). Lets the model start at the PR 4 race's
    /// interesting state without replaying its multi-preemption prologue.
    #[cfg(pfg_model)]
    pub fn seed_pending_wake_in_flight(&self) {
        self.pending_wake.store(1, Ordering::Relaxed);
    }
}
