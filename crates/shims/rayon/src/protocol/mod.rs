//! The executor's lock-free protocols, factored out of `pool.rs` and
//! parameterized over the atomic primitives they run on.
//!
//! Two protocols live here: the Chase–Lev work-stealing deque
//! ([`deque::Deque`]) and the sleeper/pending-wake handshake
//! ([`sleep::SleepWake`]). `pool.rs` instantiates both with
//! [`StdPlatform`] — real `std::sync::atomic` types behind
//! `#[inline(always)]` forwarders, so the monomorphized release build is
//! the same machine code as the pre-extraction hand-inlined version
//! (pinned by the executor benches and the `bench_diff` gate). The
//! `pfg_model` crate instantiates the *same* generic code with model
//! atomics that route every load/store/CAS/fence through a bounded
//! exhaustive interleaving explorer — so what the model checker explores
//! is the production code path, not a copy that can drift.
//!
//! The vocabulary of the traits is deliberately the exact surface the two
//! protocols use — no `fetch_or`, no `Acquire`-failure CAS — so a reader
//! can audit the whole atomic footprint of the executor from this one
//! file.
//!
//! # Memory-ordering contract
//!
//! The orderings threaded through these traits are the C11 orderings of
//! Lê et al. (CGO '13) for the deque and the SeqCst publish/re-check
//! handshake for the sleeper protocol; the full arguments live on
//! [`deque::Deque`] and [`sleep::SleepWake`]. Under `--cfg pfg_model`
//! those arguments stop being prose: `crates/model` exhaustively explores
//! both protocols over all bounded interleavings of a store-buffer
//! (PSO-style) memory model, and its mutation suite proves the explorer
//! would catch each load-bearing ordering being weakened.

use std::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};

pub mod deque;
pub mod sleep;

/// A word-sized atomic cell. The `#[track_caller]` on every method is for
/// the model platform, whose trace records the *protocol* source line of
/// each operation; with [`StdPlatform`]'s `#[inline(always)]` forwarders
/// the implicit location argument is dead and compiles out.
pub trait AtomicCell<T: Copy>: Send + Sync {
    fn new(v: T) -> Self;
    #[track_caller]
    fn load(&self, order: Ordering) -> T;
    #[track_caller]
    fn store(&self, v: T, order: Ordering);
    #[track_caller]
    fn swap(&self, v: T, order: Ordering) -> T;
    #[track_caller]
    fn compare_exchange(
        &self,
        current: T,
        new: T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<T, T>;
}

/// An atomic integer: the cell operations plus the two RMWs the
/// protocols use.
pub trait AtomicInt<T: Copy>: AtomicCell<T> {
    #[track_caller]
    fn fetch_add(&self, v: T, order: Ordering) -> T;
    #[track_caller]
    fn fetch_sub(&self, v: T, order: Ordering) -> T;
}

/// An atomic pointer cell (no RMWs — the protocols only publish and read
/// buffer pointers).
pub trait AtomicPtrCell<T>: Send + Sync {
    fn new(v: *mut T) -> Self;
    #[track_caller]
    fn load(&self, order: Ordering) -> *mut T;
    #[track_caller]
    fn store(&self, v: *mut T, order: Ordering);
}

/// The atomic substrate a protocol instance runs on: real hardware
/// atomics ([`StdPlatform`]) or the model checker's instrumented ones
/// (`pfg_model::ModelPlatform`).
pub trait Platform: 'static + Sized {
    type AtomicUsize: AtomicInt<usize>;
    type AtomicIsize: AtomicInt<isize>;
    type AtomicBool: AtomicCell<bool>;
    type AtomicPtr<T>: AtomicPtrCell<T>;
    #[track_caller]
    fn fence(order: Ordering);
}

/// What a deque stores. The cell representation is payload-defined
/// because the production payload (`JobRef`) is two pointer words stored
/// as two *independent* relaxed atomics — there is no double-word atomic,
/// and none is needed: readers' loads are speculative and only trusted
/// after validation (see [`deque::Deque`]). The model payload is a plain
/// ticket word.
pub trait SlotPayload<P: Platform>: Copy + Send {
    /// Storage for one deque cell (atomics of `P`).
    type Cell: Send + Sync;
    /// An empty cell (contents never read before a `write_cell`).
    fn empty_cell() -> Self::Cell;
    /// Owner-only relaxed store(s); published by the subsequent `Release`
    /// store of `bottom` or of the buffer pointer.
    #[track_caller]
    fn write_cell(cell: &Self::Cell, v: Self);
    /// Speculative relaxed load(s); the caller validates before trusting.
    #[track_caller]
    fn read_cell(cell: &Self::Cell) -> Self;
    /// Marks the cell dead so any later read is an error. Only ever
    /// called under the model's `free_on_grow` mutation (which *simulates*
    /// freeing a retired buffer — actually freeing it would be UB the
    /// model could not observe, poisoning turns the stale read into a
    /// deterministic failure). No-op on the std platform.
    fn poison_cell(cell: &Self::Cell);
}

/// The park/wake substrate of the sleeper protocol: a mutex + condvar
/// pair on the std platform, the model scheduler's blocking primitive
/// under `pfg_model` (where parking is a scheduler-visible state and a
/// lost wakeup is detected as a deadlock).
pub trait Parker: Send + Sync {
    fn new() -> Self;
    /// Runs `should_sleep` under the lock; if it returns `true`, waits on
    /// the condvar (one wait; spurious wakes allowed — every caller loops
    /// around `park`).
    fn park_if(&self, should_sleep: impl FnOnce() -> bool);
    /// Runs `f` under the lock, then issues the notification it asks for
    /// (still under the lock, so a notify cannot land between a parker's
    /// re-check and its wait).
    fn locked(&self, f: impl FnOnce() -> Option<WakeKind>);
}

/// Which sleepers a [`Parker::locked`] closure wants woken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WakeKind {
    /// Wake one sleeper (work published — any worker will do).
    One,
    /// Wake everyone (job completion or shutdown — a specific waiter must
    /// re-check its condition, and `One` could wake someone else).
    All,
}

/// Seeded protocol weakenings for the model checker's mutation suite.
///
/// Under `--cfg pfg_model` this is a runtime flag set carried by each
/// protocol instance; in normal builds it is a zero-sized struct whose
/// accessors return `false` as a compile-time constant, so every mutation
/// branch folds away and the production protocols are exactly the
/// unmutated code (pinned by the executor benches).
///
/// Each flag weakens one load-bearing piece of the ordering argument; the
/// mutation suite in `crates/model` proves the explorer catches each one,
/// and the `chaos-misses-it` test proves at least one survives the
/// dynamic chaos sweep — the differential that justifies the model
/// checker's existence.
#[derive(Clone, Copy, Default, Debug)]
pub struct MutationSpec {
    /// Drop the `SeqCst` fence between `take`'s `bottom` decrement and its
    /// `top` load (the owner half of the fence arbitration).
    #[cfg(pfg_model)]
    pub skip_take_fence: bool,
    /// Demote `push`'s `Release` publish of `bottom` to `Relaxed` (cell
    /// writes no longer happen-before a thief's read of the new bottom).
    #[cfg(pfg_model)]
    pub relaxed_bottom_publish: bool,
    /// "Free" the superseded buffer on grow instead of retiring it
    /// (simulated by poisoning — see [`SlotPayload::poison_cell`]).
    #[cfg(pfg_model)]
    pub free_on_grow: bool,
    /// Skip the pending-wake entry clear in `park` (the PR 4 raced-wake
    /// bug: a stale in-flight flag suppresses every future work wake-up).
    #[cfg(pfg_model)]
    pub skip_park_entry_clear: bool,
}

impl MutationSpec {
    /// The unmutated protocols.
    pub fn none() -> Self {
        Self::default()
    }

    #[inline(always)]
    pub fn skip_take_fence(&self) -> bool {
        #[cfg(pfg_model)]
        {
            self.skip_take_fence
        }
        #[cfg(not(pfg_model))]
        {
            false
        }
    }

    #[inline(always)]
    pub fn relaxed_bottom_publish(&self) -> bool {
        #[cfg(pfg_model)]
        {
            self.relaxed_bottom_publish
        }
        #[cfg(not(pfg_model))]
        {
            false
        }
    }

    #[inline(always)]
    pub fn free_on_grow(&self) -> bool {
        #[cfg(pfg_model)]
        {
            self.free_on_grow
        }
        #[cfg(not(pfg_model))]
        {
            false
        }
    }

    #[inline(always)]
    pub fn skip_park_entry_clear(&self) -> bool {
        #[cfg(pfg_model)]
        {
            self.skip_park_entry_clear
        }
        #[cfg(not(pfg_model))]
        {
            false
        }
    }
}

/// The production platform: `std::sync::atomic` behind `#[inline(always)]`
/// forwarders. Monomorphizing the protocols with this type reproduces the
/// pre-extraction machine code.
pub struct StdPlatform;

macro_rules! std_atomic_cell {
    ($atomic:ty, $value:ty) => {
        impl AtomicCell<$value> for $atomic {
            #[inline(always)]
            fn new(v: $value) -> Self {
                <$atomic>::new(v)
            }
            #[inline(always)]
            fn load(&self, order: Ordering) -> $value {
                <$atomic>::load(self, order)
            }
            #[inline(always)]
            fn store(&self, v: $value, order: Ordering) {
                <$atomic>::store(self, v, order)
            }
            #[inline(always)]
            fn swap(&self, v: $value, order: Ordering) -> $value {
                <$atomic>::swap(self, v, order)
            }
            #[inline(always)]
            fn compare_exchange(
                &self,
                current: $value,
                new: $value,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$value, $value> {
                <$atomic>::compare_exchange(self, current, new, success, failure)
            }
        }
    };
}

macro_rules! std_atomic_int {
    ($atomic:ty, $value:ty) => {
        std_atomic_cell!($atomic, $value);
        impl AtomicInt<$value> for $atomic {
            #[inline(always)]
            fn fetch_add(&self, v: $value, order: Ordering) -> $value {
                <$atomic>::fetch_add(self, v, order)
            }
            #[inline(always)]
            fn fetch_sub(&self, v: $value, order: Ordering) -> $value {
                <$atomic>::fetch_sub(self, v, order)
            }
        }
    };
}

std_atomic_int!(AtomicUsize, usize);
std_atomic_int!(AtomicIsize, isize);
std_atomic_cell!(AtomicBool, bool);

impl<T> AtomicPtrCell<T> for AtomicPtr<T> {
    #[inline(always)]
    fn new(v: *mut T) -> Self {
        AtomicPtr::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> *mut T {
        AtomicPtr::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: *mut T, order: Ordering) {
        AtomicPtr::store(self, v, order)
    }
}

impl Platform for StdPlatform {
    type AtomicUsize = AtomicUsize;
    type AtomicIsize = AtomicIsize;
    type AtomicBool = AtomicBool;
    type AtomicPtr<T> = AtomicPtr<T>;

    #[inline(always)]
    fn fence(order: Ordering) {
        fence(order)
    }
}

/// The production parker: one mutex + condvar pair, exactly the
/// `sleep_lock`/`sleep_cv` pair `pool.rs` used before the extraction.
pub struct StdParker {
    lock: std::sync::Mutex<()>,
    cv: std::sync::Condvar,
}

impl Parker for StdParker {
    fn new() -> Self {
        StdParker {
            lock: std::sync::Mutex::new(()),
            cv: std::sync::Condvar::new(),
        }
    }

    fn park_if(&self, should_sleep: impl FnOnce() -> bool) {
        let guard = self.lock.lock().expect("pool sleep lock");
        if should_sleep() {
            drop(self.cv.wait(guard).expect("pool sleep wait"));
        }
    }

    fn locked(&self, f: impl FnOnce() -> Option<WakeKind>) {
        let _guard = self.lock.lock().expect("pool sleep lock");
        match f() {
            Some(WakeKind::One) => self.cv.notify_one(),
            Some(WakeKind::All) => self.cv.notify_all(),
            None => {}
        }
    }
}
