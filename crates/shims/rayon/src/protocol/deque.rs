//! The Chase–Lev work-stealing deque, generic over the atomic platform.
//!
//! Moved verbatim-in-logic from `pool.rs` (where it was `WorkerDeque`);
//! the only additions are the [`MutationSpec`] hooks, which are
//! compile-time `false` outside `--cfg pfg_model`. The ordering argument
//! below is unchanged — and under the model cfg it is machine-checked,
//! not just prose: `crates/model` explores these exact monomorphized
//! paths over all bounded interleavings.

use std::sync::atomic::Ordering;
use std::sync::Mutex;

use super::{AtomicCell, AtomicInt, AtomicPtrCell, MutationSpec, Platform, SlotPayload};

/// One storage cell: the payload's representation plus a monotone
/// per-deque push ticket (`seq`) that lets the racecheck and model builds
/// assert each published item is consumed exactly once. The ticket costs
/// one relaxed store per push and is dead weight otherwise.
struct Cell<P: Platform, S: SlotPayload<P>> {
    payload: S::Cell,
    seq: P::AtomicUsize,
}

/// The growable circular array behind a [`Deque`]. `cap` is always a
/// power of two so index wrap is a mask. Cells are addressed by *absolute*
/// deque index (`bottom`/`top` never wrap; they are monotone over the
/// deque lifetime modulo owner pop/push reuse), masked into the buffer.
struct Buffer<P: Platform, S: SlotPayload<P>> {
    mask: usize,
    cells: Box<[Cell<P, S>]>,
}

impl<P: Platform, S: SlotPayload<P>> Buffer<P, S> {
    fn alloc(cap: usize) -> *mut Self {
        debug_assert!(cap.is_power_of_two());
        let cells = (0..cap)
            .map(|_| Cell {
                payload: S::empty_cell(),
                seq: P::AtomicUsize::new(0),
            })
            .collect();
        Box::into_raw(Box::new(Buffer {
            mask: cap - 1,
            cells,
        }))
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    fn cell(&self, index: isize) -> &Cell<P, S> {
        &self.cells[index as usize & self.mask]
    }

    /// Stores `item` at absolute index `index` (owner only; relaxed stores
    /// are published by the subsequent `Release` store of `bottom` or of
    /// the buffer pointer).
    fn write(&self, index: isize, item: S, seq: usize) {
        let cell = self.cell(index);
        S::write_cell(&cell.payload, item);
        cell.seq.store(seq, Ordering::Relaxed);
    }

    /// Loads the cell at absolute index `index`. The result is
    /// speculative — callers must validate (CAS win / owner fence) before
    /// trusting it.
    fn read(&self, index: isize) -> (S, usize) {
        let cell = self.cell(index);
        let item = S::read_cell(&cell.payload);
        let seq = cell.seq.load(Ordering::Relaxed);
        (item, seq)
    }

    /// Marks every cell dead (model-only `free_on_grow` mutation — see
    /// [`SlotPayload::poison_cell`]).
    fn poison(&self) {
        for cell in self.cells.iter() {
            S::poison_cell(&cell.payload);
        }
    }
}

/// Outcome of [`Deque::steal`].
pub enum Steal<S> {
    /// No item visible at the top of the deque.
    Empty,
    /// Lost the CAS race for the top item to the owner or another thief;
    /// the deque may still hold work — caller decides whether to rescan.
    Retry,
    /// Won the top item.
    Success(S),
}

/// A lock-free Chase–Lev deque: the owner pushes and pops at `bottom`,
/// thieves steal at `top`, over a growable circular `Buffer`.
///
/// # Memory-ordering argument (Lê et al., CGO '13, Fig. 1)
///
/// * **`push`** writes the cell (relaxed) and then `Release`-stores
///   `bottom + 1`; a thief's `Acquire` load of `bottom` that observes the
///   new value therefore also observes the cell write. The `Acquire` load
///   of `top` in `push` only bounds the occupancy check for growth.
/// * **`take`** (owner pop) `Relaxed`-stores the decremented `bottom`,
///   then a **`SeqCst` fence**, then loads `top`. A concurrent `steal`
///   loads `top`, then a **`SeqCst` fence**, then loads `bottom`. The two
///   fences give a total order: either the owner's `bottom` decrement is
///   visible to the thief (which then sees `top >= bottom` and backs off
///   the last element), or the thief's `top` increment (its CAS) is
///   visible to the owner (which then sees the smaller window). Both
///   seeing a one-element window falls through to the CAS on `top`, which
///   arbitrates — exactly one of them wins the last element.
/// * **Cell reads are speculative.** A thief reads the cell *before* its
///   CAS; the value is only trusted if the CAS on `top` succeeds, which
///   proves `top` never moved past the cell, and the owner cannot have
///   overwritten it: overwriting absolute index `i` in the *same* buffer
///   requires `bottom - top >= cap`, which triggers growth into a *new*
///   buffer instead (capacity doubling ⇒ the live window never wraps onto
///   itself).
/// * **Growth** copies the live window `[top, bottom)` into a
///   twice-as-large buffer at the same absolute indices and publishes the
///   new buffer pointer with `Release` (thieves load it `Acquire`, so a
///   thief that sees the new buffer sees the copies). The old buffer is
///   *retired, not freed*: a stale thief may still hold its pointer and
///   read a cell from it — the cell it validates via CAS still holds the
///   correct value there (copies don't mutate the source) — so retired
///   buffers stay allocated in `Deque::retired` until the deque drops.
///
/// # Racecheck / model hook
///
/// Every push tickets the item with a monotone per-deque sequence number;
/// every successful claim (owner pop or winning steal) registers that
/// ticket with a [`pfg_audit::DisjointWriteAudit::sparse_cells`] registry.
/// Under `--cfg pfg_racecheck` a broken ordering that lets two threads
/// claim one published item panics with both claim sites; in normal
/// builds the registry is zero-sized and the calls compile out. The model
/// build keeps the registry on as its exactly-once assertion layer.
pub struct Deque<P: Platform, S: SlotPayload<P>> {
    /// Next absolute index the owner pushes at. Decremented (then mostly
    /// restored) during `take`.
    bottom: P::AtomicIsize,
    /// Absolute index of the oldest live item; advanced only by the CAS in
    /// `steal`/last-element `take`.
    top: P::AtomicIsize,
    /// Current circular buffer; swapped (never mutated in place) on grow.
    buffer: P::AtomicPtr<Buffer<P, S>>,
    /// Superseded buffers, kept allocated until drop so stale thieves can
    /// finish their speculative reads (see the ordering argument). Locked
    /// only by the owner on grow — never on a hot path, and never while
    /// another protocol operation is in flight on the same thread, so the
    /// plain `std` mutex is sound under the model too. The `Box` is
    /// load-bearing, not indirection for its own sake: stale thieves hold
    /// raw `*mut Buffer` pointers to these exact allocations, so the
    /// `Vec` growing must never move a retired `Buffer`.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<Buffer<P, S>>>>,
    /// Monotone push ticket counter (owner-incremented, relaxed).
    push_seq: P::AtomicUsize,
    /// Exactly-once claim registry over push tickets (racecheck builds).
    audit: pfg_audit::DisjointWriteAudit,
    /// Seeded weakenings for the model's mutation suite; compile-time
    /// all-`false` outside `--cfg pfg_model`.
    mutation: MutationSpec,
}

// SAFETY: the raw buffer pointers are owned by the deque (allocated in
// `alloc`, freed only in `Drop`); all cross-thread access goes through
// the atomics per the ordering argument above.
unsafe impl<P: Platform, S: SlotPayload<P>> Send for Deque<P, S> {}
// SAFETY: same argument as `Send` directly above — shared access is
// mediated entirely by the atomic protocol fields.
unsafe impl<P: Platform, S: SlotPayload<P>> Sync for Deque<P, S> {}

impl<P: Platform, S: SlotPayload<P>> Deque<P, S> {
    /// A deque with `initial_cap` slots (must be a power of two). The
    /// production pool passes 64 (covers every split tree the executor
    /// produces); model scenarios pass 2 to force growth races on tiny
    /// runs.
    pub fn new(initial_cap: usize, mutation: MutationSpec) -> Self {
        assert!(
            initial_cap.is_power_of_two(),
            "deque capacity must be a power of two"
        );
        Deque {
            bottom: P::AtomicIsize::new(0),
            top: P::AtomicIsize::new(0),
            buffer: P::AtomicPtr::new(Buffer::alloc(initial_cap)),
            retired: Mutex::new(Vec::new()),
            push_seq: P::AtomicUsize::new(0),
            audit: pfg_audit::DisjointWriteAudit::sparse_cells("worker deque claims"),
            mutation,
        }
    }

    /// Owner-only: publishes `item` at the bottom of the deque.
    pub fn push(&self, item: S) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        // SAFETY: `buffer` always points at a live allocation (swapped
        // buffers are retired, not freed, until drop).
        unsafe {
            if b - t >= (*buf).cap() as isize {
                buf = self.grow(buf, t, b);
            }
            let seq = self.push_seq.fetch_add(1, Ordering::Relaxed);
            (*buf).write(b, item, seq);
        }
        let publish = if self.mutation.relaxed_bottom_publish() {
            Ordering::Relaxed
        } else {
            Ordering::Release
        };
        self.bottom.store(b + 1, publish);
    }

    /// Owner-only: pops the most recently pushed item still in the deque
    /// (LIFO). Lock-free; a CAS happens only when taking the last element
    /// races a thief.
    pub fn take(&self) -> Option<S> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        if !self.mutation.skip_take_fence() {
            P::fence(Ordering::SeqCst);
        }
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: live buffer (see `push`); `t <= b` proves index `b`
        // holds a published item only we can overwrite.
        let (item, seq) = unsafe { (*buf).read(b) };
        if t == b {
            // Last element: race thieves for it via the `top` CAS.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if !won {
                return None;
            }
        }
        self.audit.write_once(seq);
        Some(item)
    }

    /// Any thread: tries to steal the oldest item (FIFO).
    pub fn steal(&self) -> Steal<S> {
        let t = self.top.load(Ordering::Acquire);
        P::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = self.buffer.load(Ordering::Acquire);
        // SAFETY: live buffer; the read is speculative and only trusted if
        // the CAS below wins (see the ordering argument on the type).
        let (item, seq) = unsafe { (*buf).read(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        self.audit.write_once(seq);
        Steal::Success(item)
    }

    /// Owner-only: doubles the buffer, copying the live window `[t, b)` to
    /// the same absolute indices, publishes it, and retires the old one.
    ///
    /// # Safety
    /// `old` must be the deque's current buffer and the caller must be the
    /// deque's owner (sole writer of `buffer` and the cells).
    unsafe fn grow(&self, old: *mut Buffer<P, S>, t: isize, b: isize) -> *mut Buffer<P, S> {
        let new = Buffer::alloc((*old).cap() * 2);
        for i in t..b {
            let (item, seq) = (*old).read(i);
            (*new).write(i, item, seq);
        }
        self.buffer.store(new, Ordering::Release);
        if self.mutation.free_on_grow() {
            // The mutation under test: free the superseded buffer while a
            // stale thief may still be reading it. Actually freeing would
            // be UB the model cannot observe, so the model simulates it by
            // poisoning every cell — a stale read then fails loudly — and
            // still retires the (poisoned) allocation.
            (*old).poison();
        }
        self.retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Box::from_raw(old));
        new
    }
}

impl<P: Platform, S: SlotPayload<P>> Drop for Deque<P, S> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; the current buffer was produced by
        // `Buffer::alloc` and never freed elsewhere (`retired` holds the
        // superseded ones and drops them with the Vec).
        unsafe { drop(Box::from_raw(self.buffer.load(Ordering::Relaxed))) };
    }
}
