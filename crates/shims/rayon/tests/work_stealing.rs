//! Scheduler-level tests for the work-stealing executor: nested `join`
//! inside pool tasks, steal-heavy skewed workloads, panic propagation
//! through `join`, cross-worker-count determinism, and the `Send`-only
//! (non-`Sync`) element bound on the public sorts.
//!
//! Pools here are deliberately oversubscribed (more workers than the CI
//! machine may have cores) — correctness must not depend on real
//! parallelism, only benefit from it.

use rayon::prelude::*;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
}

/// Recursive fibonacci over `join`: every level forks, so this exercises
/// deep nesting, stealing of tiny jobs, and the un-stolen pop-back fast
/// path in one go.
fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = rayon::join(|| fib(n - 1), || fib(n - 2));
    a + b
}

#[test]
fn join_computes_both_results() {
    let (a, b) = rayon::join(|| 6 * 7, || "ok".to_string());
    assert_eq!(a, 42);
    assert_eq!(b, "ok");
}

#[test]
fn join_recursive_inside_pool() {
    let got = pool(4).install(|| fib(18));
    assert_eq!(got, 2_584);
}

#[test]
fn join_without_pool_runs_inline() {
    // On a fresh thread with no install, join must still work (global
    // pool or inline, depending on RAYON_NUM_THREADS / core count).
    let got = std::thread::spawn(|| fib(12)).join().unwrap();
    assert_eq!(got, 144);
}

#[test]
fn nested_join_inside_pool_tasks_no_deadlock() {
    // join inside par_iter tasks inside install: three nesting levels on
    // the same 2-worker pool. The caller-helps/steal protocol must drain
    // every level even with all workers occupied by outer tasks.
    let p = pool(2);
    let totals: Vec<u64> = p.install(|| {
        (0..8u64)
            .into_par_iter()
            .map(|block| {
                let (x, y) = rayon::join(
                    || {
                        (0..2_000u64)
                            .into_par_iter()
                            .map(|v| v + block)
                            .sum::<u64>()
                    },
                    || fib(10),
                );
                x + y
            })
            .collect()
    });
    let expected: Vec<u64> = (0..8u64)
        .map(|block| (0..2_000u64).map(|v| v + block).sum::<u64>() + 55)
        .collect();
    assert_eq!(totals, expected);
}

#[test]
fn steal_heavy_skewed_workload_completes_and_balances() {
    // One tail stretch of the index space carries ~50x the work of the
    // rest: with static dealing one piece gates the round; with stealing
    // the tail subtree keeps splitting. Correctness check here; the
    // executor bench measures the time side.
    let n = 40_000usize;
    let heavy_from = n - n / 8;
    let work = |i: usize| -> u64 {
        let spins = if i >= heavy_from { 50 } else { 1 };
        let mut acc = i as u64;
        for _ in 0..spins {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        }
        acc
    };
    let expected: u64 = (0..n).map(work).fold(0, u64::wrapping_add);
    for threads in [2, 4, 8] {
        let got: u64 = pool(threads).install(|| {
            (0..n)
                .into_par_iter()
                .map(work)
                .fold(|| 0u64, |a, b| a.wrapping_add(b))
                .reduce(|| 0, u64::wrapping_add)
        });
        assert_eq!(got, expected, "threads = {threads}");
    }
}

#[test]
fn panic_in_join_a_propagates_after_b_settles() {
    let p = pool(4);
    let b_ran = AtomicUsize::new(0);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        p.install(|| {
            rayon::join(
                || panic!("a panicked"),
                || {
                    b_ran.fetch_add(1, Ordering::SeqCst);
                },
            )
        })
    }));
    let payload = caught.expect_err("a's panic must propagate");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "a panicked");
    // b either ran (stolen) or was cancelled; never twice.
    assert!(b_ran.load(Ordering::SeqCst) <= 1);
    // The pool survives and keeps serving.
    assert_eq!(p.install(|| fib(10)), 55);
}

#[test]
fn panic_in_join_b_propagates() {
    let p = pool(4);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        p.install(|| rayon::join(|| 1 + 1, || -> u32 { panic!("b panicked") }))
    }));
    let payload = caught.expect_err("b's panic must propagate");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "b panicked");
    assert_eq!(p.install(|| fib(10)), 55);
}

#[test]
fn panic_deep_in_nested_join_propagates() {
    let p = pool(3);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        p.install(|| {
            rayon::join(
                || rayon::join(|| fib(8), || panic!("deep panic")),
                || fib(9),
            )
        })
    }));
    assert!(caught.is_err());
    assert_eq!(p.install(|| fib(10)), 55);
}

/// The split-tree decomposition depends on the input length only, so
/// piece-level `fold` accumulators — even float ones, where grouping
/// changes the bits — must agree across every multi-threaded worker count
/// and across runs (stealing may reorder execution, never results).
#[test]
fn float_fold_bits_identical_across_parallel_worker_counts() {
    let data: Vec<f64> = (0..100_000)
        .map(|i| ((i * 2_654_435_761u64) % 97) as f64 * 0.1)
        .collect();
    let sum_on = |threads: usize| -> u64 {
        pool(threads)
            .install(|| data.par_iter().copied().sum::<f64>())
            .to_bits()
    };
    let reference = sum_on(2);
    for threads in [3, 4, 8] {
        assert_eq!(sum_on(threads), reference, "threads = {threads}");
    }
    // And across repeated runs on the same pool size (steal timing varies).
    for _ in 0..5 {
        assert_eq!(sum_on(4), reference);
    }
}

#[test]
fn collect_identical_across_worker_counts_and_runs() {
    let v: Vec<u32> = (0..50_000).map(|i| i * 7 % 1_013).collect();
    let run = |threads: usize| -> Vec<u32> {
        pool(threads).install(|| {
            v.par_iter()
                .copied()
                .filter(|&x| x % 3 != 0)
                .map(|x| x.wrapping_mul(2_654_435_761))
                .collect()
        })
    };
    let reference = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(run(threads), reference, "threads = {threads}");
        assert_eq!(run(threads), reference, "threads = {threads}, rerun");
    }
}

/// `Cell<T>` is `Send` but not `Sync`: this exercises the acceptance bound
/// — the public sorts must compile and pass for `Send`-only elements, as
/// with real rayon (the PR 2 index-merge sort required `Sync`).
#[test]
fn par_sort_send_only_elements() {
    let make = || -> Vec<Cell<i64>> {
        (0..30_000)
            .map(|i| Cell::new((i * 48_271) % 4_093))
            .collect()
    };
    let mut expected: Vec<i64> = make().iter().map(Cell::get).collect();
    expected.sort();

    let mut stable = make();
    pool(4).install(|| stable.par_sort_by(|a, b| a.get().cmp(&b.get())));
    assert_eq!(stable.iter().map(Cell::get).collect::<Vec<_>>(), expected);

    let mut unstable = make();
    pool(4).install(|| unstable.par_sort_unstable_by(|a, b| a.get().cmp(&b.get())));
    assert_eq!(unstable.iter().map(Cell::get).collect::<Vec<_>>(), expected);
}

#[test]
fn par_sort_identical_across_worker_counts() {
    let input: Vec<(i64, usize)> = (0..50_000).map(|i| ((i as i64 * 131) % 509, i)).collect();
    let run = |threads: usize| -> Vec<(i64, usize)> {
        let mut v = input.clone();
        pool(threads).install(|| v.par_sort_unstable_by(|a, b| a.0.cmp(&b.0)));
        v
    };
    let reference = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(run(threads), reference, "threads = {threads}");
    }
}

#[test]
fn par_chunks_mut_writes_disjoint_rows() {
    let n = 64usize;
    let mut flat = vec![0u64; n * n];
    pool(4).install(|| {
        flat.par_chunks_mut(n).enumerate().for_each(|(row, out)| {
            for (col, slot) in out.iter_mut().enumerate() {
                *slot = (row * n + col) as u64;
            }
        });
    });
    let expected: Vec<u64> = (0..(n * n) as u64).collect();
    assert_eq!(flat, expected);
}

#[test]
fn par_chunks_mut_ragged_last_chunk() {
    let mut v = vec![1u32; 1_000];
    // 1000 = 7 * 142 + 6: the last chunk is shorter.
    pool(4).install(|| {
        v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            assert!(chunk.len() == 7 || (i == 142 && chunk.len() == 6));
            for x in chunk {
                *x += i as u32;
            }
        });
    });
    for (k, &x) in v.iter().enumerate() {
        assert_eq!(x, 1 + (k / 7) as u32);
    }
}

#[test]
fn with_max_len_forces_parallel_decomposition_below_cheap_gate() {
    // 10 items is far below the 512-item cheap-work gate, but the hint
    // declares them heavy: fold must see one accumulator per item (the
    // piece count equals the accumulator count), not a single inline one.
    let accs: Vec<usize> = pool(4).install(|| {
        (0..10usize)
            .into_par_iter()
            .with_max_len(1)
            .fold(|| 0usize, |acc, _| acc + 1)
            .collect()
    });
    assert_eq!(accs, vec![1; 10]);
    // The hint survives a later enumerate (indexed-adapter propagation).
    let enumerated: Vec<usize> = pool(4).install(|| {
        (0..10usize)
            .into_par_iter()
            .with_max_len(1)
            .enumerate()
            .fold(|| 0usize, |acc, _| acc + 1)
            .collect()
    });
    assert_eq!(enumerated, vec![1; 10]);
    // A single-threaded pool walks the *same* piece tree (inline, no
    // stealing): accumulator grouping is a function of the input alone,
    // never of the worker count, so reductions stay byte-identical
    // across every RAYON_NUM_THREADS.
    let single: Vec<usize> = pool(1).install(|| {
        (0..10usize)
            .into_par_iter()
            .with_max_len(1)
            .fold(|| 0usize, |acc, _| acc + 1)
            .collect()
    });
    assert_eq!(single, vec![1; 10]);
}

#[test]
fn with_max_len_results_identical_across_worker_counts() {
    let run = |threads: usize| -> Vec<u64> {
        pool(threads).install(|| {
            (0..1_000u64)
                .into_par_iter()
                .with_max_len(7)
                .map(|x| x.wrapping_mul(2_654_435_761))
                .collect()
        })
    };
    let reference: Vec<u64> = (0..1_000u64)
        .map(|x| x.wrapping_mul(2_654_435_761))
        .collect();
    for threads in [2, 4, 8] {
        assert_eq!(run(threads), reference, "threads = {threads}");
    }
}

#[test]
fn many_concurrent_joins_from_outside_threads() {
    // Several external (non-worker) threads hammer the same pool's
    // injector concurrently; each must get its own results back.
    let p = std::sync::Arc::new(pool(4));
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let p = std::sync::Arc::clone(&p);
            std::thread::spawn(move || p.install(|| fib(14 + t % 2)))
        })
        .collect();
    for (t, h) in handles.into_iter().enumerate() {
        let expected = if t % 2 == 0 { 377 } else { 610 };
        assert_eq!(h.join().unwrap(), expected);
    }
}
