//! `RAYON_NUM_THREADS` pins the default worker count.
//!
//! Kept as a single `#[test]` in its own integration-test binary: the
//! resolved count is cached process-wide on first use, so the variable must
//! be set before anything queries it, and no other test may race this one.

use rayon::prelude::*;

#[test]
fn env_override_pins_default_worker_count() {
    std::env::set_var("RAYON_NUM_THREADS", "3");
    assert_eq!(rayon::current_num_threads(), 3);
    // The pool built from the override still computes correct results.
    let total: u64 = (0..100_000u64).into_par_iter().map(|x| x * 2).sum();
    assert_eq!(total, (0..100_000u64).map(|x| x * 2).sum::<u64>());
    // A built pool with explicit size still wins over the env default.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .unwrap();
    assert_eq!(pool.install(rayon::current_num_threads), 2);
    assert_eq!(rayon::current_num_threads(), 3);
}
