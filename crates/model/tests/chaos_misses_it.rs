//! The regression that justifies the model checker's existence: a seeded
//! memory-ordering weakening that the CI chaos sweep **cannot** catch on
//! the hardware it runs on, but the bounded interleaving explorer catches
//! in milliseconds.
//!
//! The mutation is `relaxed_bottom_publish`: demoting `push`'s
//! `Release` store of `bottom` to `Relaxed`. In the C11 model that lets a
//! thief observe the incremented `bottom` before the cell write it was
//! supposed to publish, and steal the never-pushed empty-cell sentinel.
//! On x86-TSO, however, `Release` and `Relaxed` stores compile to the same
//! `mov` and stores never reorder with earlier stores — the bug is
//! *architecturally invisible*, so no amount of schedule fuzzing on an
//! x86 CI runner can surface it. Part 1 below applies the racecheck CI
//! job's own sweep parameters (3 chaos seeds x {2,8} threads, seeded spin
//! perturbation) directly to a mutated production deque and demonstrates
//! the sweep passes; part 2 runs the model explorer on the same protocol
//! code with the same mutation and demonstrates it fails.
//!
//! `#[ignore]`d by default (it deliberately stress-runs a *buggy* deque);
//! the CI `model-check` job runs it via `--include-ignored`.
#![cfg(pfg_model)]

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pfg_model::{explore, Config, ModelPlatform, Scenario, Token};
use rayon::protocol::deque::{Deque, Steal};
use rayon::protocol::{MutationSpec, SlotPayload, StdPlatform};

/// The weakening under test, shared by both halves.
fn mutation() -> MutationSpec {
    MutationSpec {
        relaxed_bottom_publish: true,
        ..MutationSpec::none()
    }
}

// ---------------------------------------------------------------------------
// Part 1: the chaos sweep, applied directly to the mutated protocol.
// ---------------------------------------------------------------------------

/// A real-atomics payload mirroring the model's [`Token`]: one word, with
/// `0` as the never-pushed empty-cell sentinel a mispublished steal would
/// observe.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct StdToken(usize);

impl SlotPayload<StdPlatform> for StdToken {
    type Cell = AtomicUsize;

    fn empty_cell() -> AtomicUsize {
        AtomicUsize::new(0)
    }
    fn write_cell(cell: &AtomicUsize, t: StdToken) {
        cell.store(t.0, Ordering::Relaxed);
    }
    fn read_cell(cell: &AtomicUsize) -> StdToken {
        StdToken(cell.load(Ordering::Relaxed))
    }
    fn poison_cell(_cell: &AtomicUsize) {}
}

/// splitmix64 — the same counter-based generator the executor's chaos
/// mode draws its steal-order perturbations from.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded busy-wait of 0..64 spin hints, the chaos sweep's timing jitter.
fn chaos_spin(seed: u64, ticket: u64) {
    for _ in 0..(splitmix64(seed.wrapping_add(ticket)) % 64) {
        std::hint::spin_loop();
    }
}

/// One chaos round: an owner pushes `pushes` tokens (interleaving takes),
/// `thieves` threads steal until the owner is done, then the remainder is
/// drained. Returns an error describing any exactly-once violation — which
/// is what the sweep is *hoping* to see and, on x86, never will.
fn chaos_round(seed: u64, thieves: usize, pushes: usize) -> Result<(), String> {
    let deque: Deque<StdPlatform, StdToken> = Deque::new(64, mutation());
    let stop = AtomicBool::new(false);
    let mut logs: Vec<Vec<StdToken>> = Vec::new();

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..thieves {
            handles.push(s.spawn({
                let (deque, stop) = (&deque, &stop);
                move || {
                    let mut log = Vec::new();
                    let mut ticket = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        match deque.steal() {
                            Steal::Success(tok) => log.push(tok),
                            Steal::Empty | Steal::Retry => {}
                        }
                        chaos_spin(seed ^ (t as u64) << 32, ticket);
                        ticket += 1;
                    }
                    log
                }
            }));
        }

        // The owner: push everything with seeded jitter, taking one back
        // every few pushes so the last-element race gets exercised too.
        let mut own = Vec::new();
        for i in 1..=pushes {
            deque.push(StdToken(i));
            chaos_spin(seed, i as u64);
            if i % 3 == 0 {
                if let Some(tok) = deque.take() {
                    own.push(tok);
                }
            }
        }
        stop.store(true, Ordering::Release);
        logs.push(own);
        for h in handles {
            logs.push(h.join().expect("thief panicked"));
        }
    });

    // Final drain, then the exactly-once multiset check.
    let mut drained = Vec::new();
    while let Some(tok) = deque.take() {
        drained.push(tok);
    }
    logs.push(drained);

    let mut seen = BTreeSet::new();
    for tok in logs.into_iter().flatten() {
        if !seen.insert(tok) {
            return Err(format!("seed {seed}: {tok:?} claimed twice"));
        }
    }
    let expected: BTreeSet<StdToken> = (1..=pushes).map(StdToken).collect();
    if seen != expected {
        return Err(format!(
            "seed {seed}: claimed set differs from pushed set (missing: {:?}, extra: {:?})",
            expected.difference(&seen).collect::<Vec<_>>(),
            seen.difference(&expected).collect::<Vec<_>>(),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Part 2: the model explorer on the same code, same mutation.
// ---------------------------------------------------------------------------

/// The minimal model scenario: one push, one take, one steal attempt —
/// the mutation already breaks this.
fn model_scenario() -> Scenario {
    let deque = Arc::new(Deque::<ModelPlatform, Token>::new(4, mutation()));
    let stolen = Arc::new(Mutex::new(Vec::new()));
    let owner = {
        let (deque, stolen) = (deque.clone(), stolen.clone());
        move || {
            deque.push(Token(1));
            if let Some(t) = deque.take() {
                stolen.lock().unwrap().push(t);
            }
        }
    };
    let thief = {
        let (deque, stolen) = (deque.clone(), stolen.clone());
        move || {
            if let Steal::Success(t) = deque.steal() {
                stolen.lock().unwrap().push(t);
            }
        }
    };
    Scenario::new().thread(owner).thread(thief).finish(move || {
        let mut claimed = std::mem::take(&mut *stolen.lock().unwrap());
        while let Some(t) = deque.take() {
            claimed.push(t);
        }
        assert_eq!(
            claimed,
            vec![Token(1)],
            "claimed set differs from the pushed set"
        );
    })
}

/// The headline regression: the exact CI sweep matrix (3 seeds x {2,8}
/// threads) passes over the mutated deque, and the explorer then convicts
/// the very same mutation. If part 1 ever starts failing, the sweep got
/// strong enough to catch this class and the doc claims should be revised;
/// if part 2 stops failing, the model lost its teeth — both are loud.
#[test]
#[ignore = "stress-runs a deliberately buggy deque; the CI model-check job runs it with --include-ignored"]
fn chaos_sweep_misses_what_the_model_catches() {
    // Part 1 — only meaningful on x86-TSO, where the demoted Release is
    // architecturally free. On a genuinely weak architecture the sweep
    // *could* catch the bug, which would falsify nothing.
    if cfg!(any(target_arch = "x86_64", target_arch = "x86")) {
        for seed in [1u64, 2, 3] {
            for threads in [2usize, 8] {
                for round in 0..8 {
                    chaos_round(seed.wrapping_add(round << 8), threads - 1, 2000).expect(
                        "the chaos sweep caught the mutation this test documents as \
                         chaos-invisible — revise tests/chaos_misses_it.rs",
                    );
                }
            }
        }
    } else {
        eprintln!("non-x86 target: skipping the chaos half (TSO argument does not apply)");
    }

    // Part 2 — the explorer convicts the same weakening in the same
    // production `push`, within the default preemption bound.
    let outcome = explore(Config::default(), model_scenario);
    let failure = outcome.expect_failure();
    assert!(
        failure.message.contains("differs from the pushed set"),
        "expected the never-pushed sentinel steal, got: {}",
        failure.message
    );
    assert!(
        !failure.trace.is_empty(),
        "the convicting schedule should carry a trace"
    );
}
