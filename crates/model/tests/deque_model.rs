//! Exhaustive model checks of the Chase–Lev deque protocol
//! (`rayon::protocol::deque`), plus the deque half of the mutation suite:
//! each seeded memory-ordering weakening must be caught by the explorer
//! within the preemption bound.
//!
//! Compiled and run only under `RUSTFLAGS="--cfg pfg_model"` (the CI
//! `model-check` job); an ordinary `cargo test` sees an empty test binary.
#![cfg(pfg_model)]

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use pfg_model::{explore, Config, ModelPlatform, Scenario, Token};
use rayon::protocol::deque::{Deque, Steal};
use rayon::protocol::MutationSpec;

type ModelDeque = Deque<ModelPlatform, Token>;

/// Per-thread claim log. Each model thread records into its own slot, so
/// the log itself cannot introduce cross-thread blocking.
#[derive(Clone, Default)]
struct Claims(Arc<Mutex<Vec<Token>>>);

impl Claims {
    fn push(&self, t: Token) {
        self.0.lock().unwrap().push(t);
    }
    fn take_all(&self) -> Vec<Token> {
        std::mem::take(&mut self.0.lock().unwrap())
    }
}

/// End-of-run oracle: every pushed token is claimed or still drainable,
/// exactly once, and nothing never-pushed (e.g. the `Token(0)` empty-cell
/// sentinel) was ever claimed.
fn check_exactly_once(deque: &ModelDeque, claim_logs: &[Claims], pushed: usize) {
    let mut seen = BTreeSet::new();
    let mut claim =
        |t: Token, who: &str| assert!(seen.insert(t), "{t:?} claimed twice (second by {who})");
    for (i, log) in claim_logs.iter().enumerate() {
        for t in log.take_all() {
            claim(t, &format!("thread {i}"));
        }
    }
    while let Some(t) = deque.take() {
        claim(t, "the end-of-run drain");
    }
    let expected: BTreeSet<Token> = (1..=pushed).map(Token).collect();
    assert_eq!(
        seen, expected,
        "claimed/drained set differs from the pushed set"
    );
}

fn steal_some(deque: &ModelDeque, claims: &Claims, attempts: usize) {
    for _ in 0..attempts {
        if let Steal::Success(t) = deque.steal() {
            claims.push(t);
        }
    }
}

/// Builds the canonical owner-vs-thieves scenario: the owner pushes
/// `pushes` tokens (1-based) and then `take`s that many times; each of
/// `thieves` thief threads makes `pushes` steal attempts.
fn owner_thief_scenario(
    initial_cap: usize,
    pushes: usize,
    thieves: usize,
    mutation: MutationSpec,
) -> Scenario {
    let deque = Arc::new(ModelDeque::new(initial_cap, mutation));
    let logs: Vec<Claims> = (0..thieves + 1).map(|_| Claims::default()).collect();

    let mut scenario = Scenario::new();
    {
        let deque = deque.clone();
        let claims = logs[0].clone();
        scenario = scenario.thread(move || {
            for i in 1..=pushes {
                deque.push(Token(i));
            }
            for _ in 0..pushes {
                if let Some(t) = deque.take() {
                    claims.push(t);
                }
            }
        });
    }
    for log in &logs[1..] {
        let deque = deque.clone();
        let claims = log.clone();
        scenario = scenario.thread(move || steal_some(&deque, &claims, pushes));
    }
    scenario.finish(move || check_exactly_once(&deque, &logs, pushes))
}

/// The empty-deque race: one item, the owner pops it while a thief tries
/// to steal it — covers `take`'s empty-restore path and the last-element
/// CAS arbitration.
#[test]
fn owner_take_vs_single_steal_exhaustive() {
    let outcome = explore(Config::default(), || {
        owner_thief_scenario(4, 1, 1, MutationSpec::none())
    });
    outcome.assert_clean();
    assert!(outcome.schedules > 1, "explorer found no interleavings");
}

/// Two items, two steal attempts: exercises the take-side fence
/// arbitration with a non-last-element owner pop in play (the interaction
/// the `skip_take_fence` mutation breaks).
#[test]
fn owner_takes_vs_thief_steals_exhaustive() {
    let outcome = explore(Config::default(), || {
        owner_thief_scenario(4, 2, 1, MutationSpec::none())
    });
    outcome.assert_clean();
}

/// Owner plus two thieves racing for a single item: the last-element CAS
/// must elect exactly one winner among three contenders.
#[test]
fn two_thieves_last_element_exhaustive() {
    let outcome = explore(Config::default(), || {
        owner_thief_scenario(4, 1, 2, MutationSpec::none())
    });
    outcome.assert_clean();
}

/// Growth racing a steal: capacity 2, three pushes, so the third push
/// reallocates mid-run while a thief may hold the superseded buffer.
/// Sound only because grow retires instead of freeing (the `free_on_grow`
/// mutation below removes exactly that and must fail).
#[test]
fn grow_races_steal_exhaustive() {
    let outcome = explore(Config::default(), || {
        owner_thief_scenario(2, 3, 1, MutationSpec::none())
    });
    outcome.assert_clean();
}

/// Determinism of the explorer itself: identical scenarios explore an
/// identical schedule tree.
#[test]
fn exploration_is_deterministic() {
    let run = || {
        explore(Config::default(), || {
            owner_thief_scenario(4, 1, 1, MutationSpec::none())
        })
    };
    let (a, b) = (run(), run());
    assert_eq!(a.schedules, b.schedules);
    assert!(a.complete && b.complete);
}

/// Mutation: dropping `take`'s SeqCst fence lets the owner's `bottom`
/// decrement sit in its store buffer while a thief reads the stale bottom
/// — thief and owner both claim the same non-last element. One preemption
/// suffices; the default bound must catch it.
#[test]
fn mutation_skip_take_fence_is_caught() {
    let mutation = MutationSpec {
        skip_take_fence: true,
        ..MutationSpec::none()
    };
    let outcome = explore(Config::default(), || {
        owner_thief_scenario(4, 2, 1, mutation)
    });
    let failure = outcome.expect_failure();
    // Either the harness oracle ("claimed twice") or, when pfg_racecheck is
    // also on, the audit registry ("double write") reports it first.
    assert!(
        failure.message.contains("claimed twice") || failure.message.contains("double write"),
        "expected a double-claim, got: {}",
        failure.message
    );
    assert!(!failure.trace.is_empty(), "failure should carry a trace");
}

/// Mutation: demoting `push`'s Release publish of `bottom` to Relaxed lets
/// a thief observe the new `bottom` before the cell write it was supposed
/// to cover, stealing the never-pushed `Token(0)` sentinel. (This is the
/// mutation the chaos sweep cannot catch on x86 — see
/// `tests/chaos_misses_it.rs`.)
#[test]
fn mutation_relaxed_bottom_publish_is_caught() {
    let mutation = MutationSpec {
        relaxed_bottom_publish: true,
        ..MutationSpec::none()
    };
    let outcome = explore(Config::default(), || {
        owner_thief_scenario(4, 1, 1, mutation)
    });
    let failure = outcome.expect_failure();
    assert!(
        failure.message.contains("differs from the pushed set"),
        "expected a never-pushed claim, got: {}",
        failure.message
    );
}

/// Mutation: freeing the superseded buffer on grow instead of retiring it
/// turns a stale thief's speculative read into a use-after-free; the model
/// simulates the free by poisoning and must report the stale read.
#[test]
fn mutation_free_on_grow_is_caught() {
    let mutation = MutationSpec {
        free_on_grow: true,
        ..MutationSpec::none()
    };
    let outcome = explore(Config::default(), || {
        owner_thief_scenario(2, 3, 1, mutation)
    });
    let failure = outcome.expect_failure();
    assert!(
        failure.message.contains("freed location"),
        "expected a use-after-free, got: {}",
        failure.message
    );
}
