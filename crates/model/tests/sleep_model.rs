//! Exhaustive model checks of the sleeper/pending-wake handshake
//! (`rayon::protocol::sleep`): publish/park/claim, shutdown, the join-flag
//! wait, and the PR 4 raced-wake mutation. A lost wakeup here is not a
//! hang — the model scheduler sees every parked thread, so it surfaces as
//! a detected deadlock with a trace.
//!
//! Compiled and run only under `RUSTFLAGS="--cfg pfg_model"` (the CI
//! `model-check` job).
#![cfg(pfg_model)]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use pfg_model::{
    explore, Config, ModelAtomicBool, ModelAtomicUsize, ModelParker, ModelPlatform, Scenario,
};
use rayon::protocol::sleep::SleepWake;
use rayon::protocol::{AtomicCell, AtomicInt, MutationSpec};

type ModelSleep = SleepWake<ModelPlatform, ModelParker>;

/// A one-word stand-in for "jobs visible in some deque": claim = CAS a
/// positive count down by one.
fn try_claim(jobs: &ModelAtomicUsize) -> bool {
    let v = jobs.load(Ordering::SeqCst);
    v > 0
        && jobs
            .compare_exchange(v, v - 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
}

/// The worker half of the pool's idle loop: claim if work is visible,
/// otherwise park until woken, `target` times over.
fn claim_or_park(sleep: &ModelSleep, jobs: &ModelAtomicUsize, target: usize) {
    for _ in 0..target {
        loop {
            if try_claim(jobs) {
                sleep.claimed();
                break;
            }
            sleep.park(None);
            // `park` returns immediately while `pending_jobs > 0`, which
            // can hold before the matching push lands (announce-then-push)
            // — a real spin window. Tell the scheduler this retry is
            // futile until some other thread runs, or DFS at an exhausted
            // preemption budget would grant the spinner forever.
            pfg_model::spin_hint();
        }
    }
}

/// One worker parking for work, one publisher publishing `jobs` jobs.
/// If any interleaving loses a wakeup, the worker parks forever and the
/// explorer reports a deadlock.
fn publish_park_scenario(njobs: usize, mutation: MutationSpec, seed_stale_wake: bool) -> Scenario {
    let sleep = Arc::new(ModelSleep::new(mutation));
    let jobs = Arc::new(<ModelAtomicUsize as AtomicCell<usize>>::new(0));
    if seed_stale_wake {
        sleep.seed_pending_wake_in_flight();
    }
    let worker = {
        let (sleep, jobs) = (sleep.clone(), jobs.clone());
        move || claim_or_park(&sleep, &jobs, njobs)
    };
    let publisher = {
        let (sleep, jobs) = (sleep.clone(), jobs.clone());
        move || {
            for _ in 0..njobs {
                // Mirrors `push_job`: count the job before it becomes
                // claimable, wake after the push.
                sleep.announce();
                jobs.fetch_add(1, Ordering::SeqCst);
                sleep.wake_for_work();
            }
        }
    };
    Scenario::new()
        .thread(worker)
        .thread(publisher)
        .finish(move || assert_eq!(jobs.load(Ordering::SeqCst), 0, "unclaimed job left behind"))
}

/// The full organic two-job handshake — including waiter-less park exits
/// racing the publisher's wake — must be lost-wakeup-free. Bound 3 keeps
/// the pass well inside the CI budget while still covering every
/// single-, double-, and triple-preemption race.
#[test]
fn publish_park_claim_exhaustive() {
    let outcome = explore(Config::with_bound(3), || {
        publish_park_scenario(2, MutationSpec::none(), false)
    });
    outcome.assert_clean();
    assert!(outcome.schedules > 1, "explorer found no interleavings");
}

/// Starting from the PR 4 residue state (a wake-in-flight flag left set by
/// a notify that landed on an empty wait set), the *entry* clear in `park`
/// is what lets the next publisher's wake through. Unmutated: clean.
#[test]
fn stale_pending_wake_recovers_exhaustive() {
    let outcome = explore(Config::with_bound(3), || {
        publish_park_scenario(1, MutationSpec::none(), true)
    });
    outcome.assert_clean();
}

/// Mutation: removing the entry clear reintroduces the PR 4 bug — the
/// stale in-flight flag makes the publisher skip its notify while the
/// worker is committed to waiting. The explorer reports the deadlock.
#[test]
fn mutation_skip_park_entry_clear_is_caught() {
    let mutation = MutationSpec {
        skip_park_entry_clear: true,
        ..MutationSpec::none()
    };
    let outcome = explore(Config::default(), || {
        publish_park_scenario(1, mutation, true)
    });
    let failure = outcome.expect_failure();
    assert!(
        failure.message.contains("deadlock"),
        "expected a lost-wakeup deadlock, got: {}",
        failure.message
    );
    assert!(!failure.trace.is_empty(), "failure should carry a trace");
}

/// Shutdown must wake a parked worker in every interleaving: the shutdown
/// store happens under the parker lock, so it cannot land between the
/// worker's re-check and its wait.
#[test]
fn shutdown_wakes_parked_worker_exhaustive() {
    let outcome = explore(Config::with_bound(3), || {
        let sleep = Arc::new(ModelSleep::new(MutationSpec::none()));
        let worker = {
            let sleep = sleep.clone();
            move || {
                while !sleep.is_shut_down() {
                    sleep.park(None);
                }
            }
        };
        let main = {
            let sleep = sleep.clone();
            move || sleep.shut_down()
        };
        Scenario::new().thread(worker).thread(main)
    });
    outcome.assert_clean();
}

/// The join-flag path: a thread parked on `done` must see every
/// interleaving of the flag store + `wake_all` against its own
/// register/re-check/wait sequence.
#[test]
fn wake_all_reaches_done_waiter_exhaustive() {
    let outcome = explore(Config::with_bound(3), || {
        let sleep = Arc::new(ModelSleep::new(MutationSpec::none()));
        let done = Arc::new(<ModelAtomicBool as AtomicCell<bool>>::new(false));
        let waiter = {
            let (sleep, done) = (sleep.clone(), done.clone());
            move || {
                while !done.load(Ordering::SeqCst) {
                    sleep.park(Some(&done));
                }
            }
        };
        let completer = {
            let (sleep, done) = (sleep.clone(), done.clone());
            move || {
                done.store(true, Ordering::SeqCst);
                sleep.wake_all();
            }
        };
        Scenario::new().thread(waiter).thread(completer)
    });
    outcome.assert_clean();
}
