//! Shim atomic types implementing the protocol [`Platform`], routing every
//! operation through the run's scheduler and simulated memory. Each atomic
//! is just an index into the run's location table; `#[track_caller]` on
//! every op records the *protocol* source line in failure traces.

use std::marker::PhantomData;
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use rayon::protocol::{
    AtomicCell, AtomicInt, AtomicPtrCell, Parker, Platform, SlotPayload, WakeKind,
};

use crate::exec::{current_tid, with_ctx, RunCtl};

/// Marker platform type: the protocols monomorphized over the model atomics.
pub struct ModelPlatform;

impl Platform for ModelPlatform {
    type AtomicUsize = ModelAtomicUsize;
    type AtomicIsize = ModelAtomicIsize;
    type AtomicBool = ModelAtomicBool;
    type AtomicPtr<T> = ModelAtomicPtr<T>;

    #[track_caller]
    fn fence(order: Ordering) {
        model_fence(order);
    }
}

/// A scheduler-visible memory fence. `Release`-or-stronger drains the
/// calling thread's store buffers; the `skip_take_fence` mutation removes
/// the call site entirely, which is what the explorer then catches.
#[track_caller]
pub fn model_fence(order: Ordering) {
    let caller = Location::caller();
    with_ctx(|cx| cx.ctl.op_fence(cx.tid, order, caller));
}

fn new_loc(init: usize) -> (Arc<RunCtl>, usize) {
    with_ctx(|cx| (cx.ctl.clone(), cx.ctl.alloc_loc(init)))
}

/// One word of simulated shared memory.
pub struct ModelAtomicUsize {
    ctl: Arc<RunCtl>,
    loc: usize,
}

impl ModelAtomicUsize {
    /// Mark this location freed (used by [`Token::poison_cell`] under the
    /// `free_on_grow` mutation); any later access fails the run.
    pub fn poison(&self) {
        self.ctl.poison_loc(self.loc);
    }
}

impl AtomicCell<usize> for ModelAtomicUsize {
    fn new(v: usize) -> Self {
        let (ctl, loc) = new_loc(v);
        ModelAtomicUsize { ctl, loc }
    }
    #[track_caller]
    fn load(&self, _order: Ordering) -> usize {
        self.ctl
            .op_load(current_tid(), self.loc, Location::caller())
    }
    #[track_caller]
    fn store(&self, v: usize, order: Ordering) {
        self.ctl
            .op_store(current_tid(), self.loc, v, order, Location::caller());
    }
    #[track_caller]
    fn swap(&self, v: usize, _order: Ordering) -> usize {
        self.ctl.op_rmw(
            current_tid(),
            self.loc,
            |_| Some(v),
            "swap",
            Location::caller(),
        )
    }
    #[track_caller]
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<usize, usize> {
        let mut won = false;
        let old = self.ctl.op_rmw(
            current_tid(),
            self.loc,
            |v| {
                if v == current {
                    won = true;
                    Some(new)
                } else {
                    None
                }
            },
            "compare_exchange",
            Location::caller(),
        );
        if won {
            Ok(old)
        } else {
            Err(old)
        }
    }
}

impl AtomicInt<usize> for ModelAtomicUsize {
    #[track_caller]
    fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
        self.ctl.op_rmw(
            current_tid(),
            self.loc,
            |old| Some(old.wrapping_add(v)),
            "fetch_add",
            Location::caller(),
        )
    }
    #[track_caller]
    fn fetch_sub(&self, v: usize, _order: Ordering) -> usize {
        self.ctl.op_rmw(
            current_tid(),
            self.loc,
            |old| Some(old.wrapping_sub(v)),
            "fetch_sub",
            Location::caller(),
        )
    }
}

/// Signed counterpart (the deque's `top`/`bottom`), stored as the word's
/// bit pattern.
pub struct ModelAtomicIsize {
    ctl: Arc<RunCtl>,
    loc: usize,
}

impl AtomicCell<isize> for ModelAtomicIsize {
    fn new(v: isize) -> Self {
        let (ctl, loc) = new_loc(v as usize);
        ModelAtomicIsize { ctl, loc }
    }
    #[track_caller]
    fn load(&self, _order: Ordering) -> isize {
        self.ctl
            .op_load(current_tid(), self.loc, Location::caller()) as isize
    }
    #[track_caller]
    fn store(&self, v: isize, order: Ordering) {
        self.ctl.op_store(
            current_tid(),
            self.loc,
            v as usize,
            order,
            Location::caller(),
        );
    }
    #[track_caller]
    fn swap(&self, v: isize, _order: Ordering) -> isize {
        self.ctl.op_rmw(
            current_tid(),
            self.loc,
            |_| Some(v as usize),
            "swap",
            Location::caller(),
        ) as isize
    }
    #[track_caller]
    fn compare_exchange(
        &self,
        current: isize,
        new: isize,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<isize, isize> {
        let mut won = false;
        let old = self.ctl.op_rmw(
            current_tid(),
            self.loc,
            |v| {
                if v == current as usize {
                    won = true;
                    Some(new as usize)
                } else {
                    None
                }
            },
            "compare_exchange",
            Location::caller(),
        ) as isize;
        if won {
            Ok(old)
        } else {
            Err(old)
        }
    }
}

impl AtomicInt<isize> for ModelAtomicIsize {
    #[track_caller]
    fn fetch_add(&self, v: isize, _order: Ordering) -> isize {
        self.ctl.op_rmw(
            current_tid(),
            self.loc,
            |old| Some((old as isize).wrapping_add(v) as usize),
            "fetch_add",
            Location::caller(),
        ) as isize
    }
    #[track_caller]
    fn fetch_sub(&self, v: isize, _order: Ordering) -> isize {
        self.ctl.op_rmw(
            current_tid(),
            self.loc,
            |old| Some((old as isize).wrapping_sub(v) as usize),
            "fetch_sub",
            Location::caller(),
        ) as isize
    }
}

pub struct ModelAtomicBool {
    ctl: Arc<RunCtl>,
    loc: usize,
}

impl AtomicCell<bool> for ModelAtomicBool {
    fn new(v: bool) -> Self {
        let (ctl, loc) = new_loc(v as usize);
        ModelAtomicBool { ctl, loc }
    }
    #[track_caller]
    fn load(&self, _order: Ordering) -> bool {
        self.ctl
            .op_load(current_tid(), self.loc, Location::caller())
            != 0
    }
    #[track_caller]
    fn store(&self, v: bool, order: Ordering) {
        self.ctl.op_store(
            current_tid(),
            self.loc,
            v as usize,
            order,
            Location::caller(),
        );
    }
    #[track_caller]
    fn swap(&self, v: bool, _order: Ordering) -> bool {
        self.ctl.op_rmw(
            current_tid(),
            self.loc,
            |_| Some(v as usize),
            "swap",
            Location::caller(),
        ) != 0
    }
    #[track_caller]
    fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        let mut won = false;
        let old = self.ctl.op_rmw(
            current_tid(),
            self.loc,
            |v| {
                if v == current as usize {
                    won = true;
                    Some(new as usize)
                } else {
                    None
                }
            },
            "compare_exchange",
            Location::caller(),
        );
        if won {
            Ok(old != 0)
        } else {
            Err(old != 0)
        }
    }
}

/// Pointer cell storing the address bits. Choice structure never depends on
/// address *values*, so replay determinism is unaffected by allocator or
/// ASLR variation between runs.
pub struct ModelAtomicPtr<T> {
    ctl: Arc<RunCtl>,
    loc: usize,
    // fn-pointer phantom: Send + Sync regardless of T, like std's AtomicPtr.
    _marker: PhantomData<fn(*mut T) -> *mut T>,
}

impl<T> AtomicPtrCell<T> for ModelAtomicPtr<T> {
    fn new(v: *mut T) -> Self {
        let (ctl, loc) = new_loc(v as usize);
        ModelAtomicPtr {
            ctl,
            loc,
            _marker: PhantomData,
        }
    }
    #[track_caller]
    fn load(&self, _order: Ordering) -> *mut T {
        self.ctl
            .op_load(current_tid(), self.loc, Location::caller()) as *mut T
    }
    #[track_caller]
    fn store(&self, v: *mut T, order: Ordering) {
        self.ctl.op_store(
            current_tid(),
            self.loc,
            v as usize,
            order,
            Location::caller(),
        );
    }
}

/// Model parker: a model mutex + condvar pair. Parking is a
/// scheduler-visible blocked state, so a lost wakeup shows up as a
/// deadlock instead of a hang.
pub struct ModelParker {
    ctl: Arc<RunCtl>,
    m: usize,
    cv: usize,
}

impl Parker for ModelParker {
    fn new() -> Self {
        with_ctx(|cx| ModelParker {
            ctl: cx.ctl.clone(),
            m: cx.ctl.alloc_mutex(),
            cv: cx.ctl.alloc_cv(),
        })
    }

    fn park_if(&self, should_sleep: impl FnOnce() -> bool) {
        let tid = current_tid();
        self.ctl.mutex_lock(tid, self.m);
        if should_sleep() {
            self.ctl.cv_wait(tid, self.cv, self.m);
        }
        self.ctl.mutex_unlock(tid, self.m);
    }

    fn locked(&self, f: impl FnOnce() -> Option<WakeKind>) {
        let tid = current_tid();
        self.ctl.mutex_lock(tid, self.m);
        if let Some(kind) = f() {
            self.ctl.cv_notify(self.cv, matches!(kind, WakeKind::All));
        }
        self.ctl.mutex_unlock(tid, self.m);
    }
}

/// The model deque payload: a ticket word. `Token(0)` is the never-pushed
/// sentinel an empty cell reads as — a stolen `Token(0)` means a thief
/// observed a published `bottom` before the cell write it was supposed to
/// cover (exactly what the `relaxed_bottom_publish` mutation permits).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

impl SlotPayload<ModelPlatform> for Token {
    type Cell = ModelAtomicUsize;

    fn empty_cell() -> ModelAtomicUsize {
        AtomicCell::new(0)
    }
    #[track_caller]
    fn write_cell(cell: &ModelAtomicUsize, v: Token) {
        cell.store(v.0, Ordering::Relaxed);
    }
    #[track_caller]
    fn read_cell(cell: &ModelAtomicUsize) -> Token {
        Token(cell.load(Ordering::Relaxed))
    }
    fn poison_cell(cell: &ModelAtomicUsize) {
        cell.poison();
    }
}
