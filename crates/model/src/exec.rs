//! Run-time machinery shared by the explorer driver and the model worker
//! threads: simulated shared memory with per-(thread, location) store
//! buffers, model mutexes/condvars backing the protocol `Parker`, the
//! replayable decision stream, and the baton handoff that guarantees exactly
//! one thread executes at a time.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::panic::Location;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Sentinel thread id for the driver (scenario setup and the finish oracle).
/// Driver ops never yield to the scheduler and never buffer stores.
pub(crate) const DRIVER_TID: usize = usize::MAX;

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A worker that panicked while holding a guard poisons the mutex; the
    // driver still needs the state to finish tearing the run down.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn panic_msg(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Decision stream: the DFS backbone
// ---------------------------------------------------------------------------

/// One recorded nondeterministic choice: which alternative was taken out of
/// how many. Both scheduler picks and store-buffer flush picks live in the
/// same stream, consumed in deterministic execution order, so replaying the
/// stream replays the run exactly.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct Choice {
    pub chosen: usize,
    pub alts: usize,
}

pub(crate) struct DecisionStream {
    choices: Vec<Choice>,
    cursor: usize,
}

// ---------------------------------------------------------------------------
// Worker <-> driver handshake
// ---------------------------------------------------------------------------

/// Why a worker cannot currently run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum BlockKind {
    /// Waiting to acquire a held model mutex.
    Mutex(usize),
    /// Waiting on a model condvar (schedulable once notified).
    Cv(usize),
}

pub(crate) enum Cmd {
    Run {
        ctl: Arc<RunCtl>,
        tid: usize,
        body: Box<dyn FnOnce() + Send + 'static>,
    },
    /// Grant: run until the next yield point (executing at most one op).
    Step,
    /// Unwind out of the scenario closure and report `Done`.
    Abort,
    /// Terminate the worker OS thread.
    Exit,
}

#[derive(Debug)]
pub(crate) enum Rep {
    AtYield,
    /// At a [`spin_hint`] fairness point: runnable, but deprioritized until
    /// some other thread executes a grant.
    AtSpin,
    Blocked(BlockKind),
    Done,
    Panicked(String),
}

/// One-slot rendezvous channel pair between the driver and one worker.
#[derive(Default)]
pub(crate) struct WorkerLink {
    cmd: Mutex<Option<Cmd>>,
    cmd_cv: Condvar,
    rep: Mutex<Option<Rep>>,
    rep_cv: Condvar,
}

impl WorkerLink {
    pub fn send_cmd(&self, c: Cmd) {
        let mut g = relock(&self.cmd);
        debug_assert!(g.is_none(), "command overrun");
        *g = Some(c);
        self.cmd_cv.notify_one();
    }

    pub fn recv_cmd(&self) -> Cmd {
        let mut g = relock(&self.cmd);
        loop {
            if let Some(c) = g.take() {
                return c;
            }
            g = self.cmd_cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub fn send_rep(&self, r: Rep) {
        let mut g = relock(&self.rep);
        debug_assert!(g.is_none(), "report overrun");
        *g = Some(r);
        self.rep_cv.notify_one();
    }

    pub fn recv_rep(&self) -> Rep {
        let mut g = relock(&self.rep);
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            g = self.rep_cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Panic payload used to unwind a worker out of an aborted run. Not a bug:
/// the run already concluded (failure found, or sibling panicked) and the
/// worker just needs to return to its idle loop.
pub(crate) struct AbortRun;

fn wait_step(link: &WorkerLink) {
    match link.recv_cmd() {
        Cmd::Step => {}
        Cmd::Abort => std::panic::panic_any(AbortRun),
        Cmd::Run { .. } | Cmd::Exit => unreachable!("run/exit command at a yield point"),
    }
}

/// Body of each model worker OS thread: idle until `Run`, execute the
/// scenario closure under the baton protocol, report, repeat.
pub(crate) fn worker_main(link: Arc<WorkerLink>) {
    loop {
        match link.recv_cmd() {
            Cmd::Run { ctl, tid, body } => {
                CTX.with(|c| *c.borrow_mut() = Some(Ctx { ctl, tid }));
                // Announce readiness, then wait for the first grant *inside*
                // the catch so an immediate abort unwinds cleanly.
                link.send_rep(Rep::AtYield);
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    wait_step(&link);
                    body();
                }));
                CTX.with(|c| *c.borrow_mut() = None);
                match res {
                    Ok(()) => link.send_rep(Rep::Done),
                    Err(p) if p.is::<AbortRun>() => link.send_rep(Rep::Done),
                    Err(p) => link.send_rep(Rep::Panicked(panic_msg(p.as_ref()))),
                }
            }
            Cmd::Exit => return,
            Cmd::Step | Cmd::Abort => unreachable!("step/abort outside a run"),
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local run context
// ---------------------------------------------------------------------------

pub(crate) struct Ctx {
    pub ctl: Arc<RunCtl>,
    pub tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b
            .as_ref()
            .expect("pfg_model atomics used outside pfg_model::explore");
        f(ctx)
    })
}

pub(crate) fn current_tid() -> usize {
    with_ctx(|cx| cx.tid)
}

pub(crate) fn set_driver_ctx(ctl: &Arc<RunCtl>) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            ctl: ctl.clone(),
            tid: DRIVER_TID,
        })
    });
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// CHESS-style fair-yield point for scenario spin loops.
///
/// A retry loop like "try to claim, else park, else retry" never
/// terminates under a maximally unfair scheduler: once the preemption
/// budget is spent the explorer keeps granting the spinning thread, whose
/// retries are futile until *another* thread advances. Real schedulers are
/// fair; model checkers encode that assumption at explicit yield points
/// (loom requires spin loops be rewritten around its yielder; CHESS
/// deprioritizes threads that called `Thread.Yield`). Calling `spin_hint`
/// at the bottom of a futile retry marks this thread *spinning*: it stays
/// runnable, but the scheduler will not grant it again until some other
/// thread has executed at least one operation (or nothing else can run).
/// Every interleaving of the first futile pass — and of each retry against
/// each intervening op of the other threads — is still explored; only
/// back-to-back futile retries with no intervening progress are pruned,
/// which is exactly the fair-scheduling assumption.
///
/// No-op on the driver and during teardown.
#[track_caller]
pub fn spin_hint() {
    let caller = Location::caller();
    with_ctx(|cx| {
        let ctl = &cx.ctl;
        if cx.tid == DRIVER_TID || ctl.aborting() {
            return;
        }
        ctl.trace_op(cx.tid, caller, || {
            "spin-hint (futile retry; deprioritized until another thread runs)".to_string()
        });
        let link = ctl.link(cx.tid);
        link.send_rep(Rep::AtSpin);
        wait_step(&link);
    });
}

// ---------------------------------------------------------------------------
// Simulated memory
// ---------------------------------------------------------------------------

struct LocState {
    value: usize,
    /// Set by `poison_cell` when the free-on-grow mutation "frees" a buffer;
    /// any later access is a modeled use-after-free.
    poisoned: bool,
}

struct Waiter {
    tid: usize,
    notified: bool,
}

#[derive(Default)]
struct MemState {
    locs: Vec<LocState>,
    /// `buffers[tid][loc]` = FIFO of that thread's stores to `loc` that are
    /// not yet visible to other threads (the PSO store buffer).
    buffers: Vec<BTreeMap<usize, VecDeque<usize>>>,
    /// `true` = held.
    mutexes: Vec<bool>,
    cvs: Vec<Vec<Waiter>>,
}

impl MemState {
    fn pending(&self, tid: usize, loc: usize) -> usize {
        self.buffers
            .get(tid)
            .and_then(|b| b.get(&loc))
            .map_or(0, |q| q.len())
    }

    fn flush_one(&mut self, tid: usize, loc: usize) {
        let v = self
            .buffers
            .get_mut(tid)
            .and_then(|b| b.get_mut(&loc))
            .and_then(|q| q.pop_front());
        if let Some(v) = v {
            self.locs[loc].value = v;
        }
    }

    /// Drain every buffered store of `tid` to shared memory, in location
    /// order (deterministic; per-location FIFO preserved).
    fn flush_own(&mut self, tid: usize) {
        if let Some(buf) = self.buffers.get_mut(tid) {
            for (loc, q) in std::mem::take(buf) {
                for v in q {
                    self.locs[loc].value = v;
                }
            }
        }
    }

    fn buf_push(&mut self, tid: usize, loc: usize, v: usize) {
        while self.buffers.len() <= tid {
            self.buffers.push(BTreeMap::new());
        }
        self.buffers[tid].entry(loc).or_default().push_back(v);
    }
}

// ---------------------------------------------------------------------------
// RunCtl: everything one run shares
// ---------------------------------------------------------------------------

pub(crate) struct RunCtl {
    mem: Mutex<MemState>,
    dec: Mutex<DecisionStream>,
    links: Mutex<Vec<Arc<WorkerLink>>>,
    /// Set while tearing a run down: yield points and choice points become
    /// no-ops so unwinding drop glue (e.g. `Deque::drop`'s buffer load)
    /// neither blocks on the scheduler nor pollutes the decision stream.
    aborting: AtomicBool,
    record: bool,
    trace: Mutex<Vec<String>>,
}

impl RunCtl {
    pub fn new(prefix: Vec<Choice>, record: bool) -> Self {
        RunCtl {
            mem: Mutex::new(MemState::default()),
            dec: Mutex::new(DecisionStream {
                choices: prefix,
                cursor: 0,
            }),
            links: Mutex::new(Vec::new()),
            aborting: AtomicBool::new(false),
            record,
            trace: Mutex::new(Vec::new()),
        }
    }

    pub fn set_links(&self, links: Vec<Arc<WorkerLink>>) {
        *relock(&self.links) = links;
    }

    pub fn begin_abort(&self) {
        self.aborting.store(true, Ordering::SeqCst);
    }

    fn aborting(&self) -> bool {
        self.aborting.load(Ordering::SeqCst)
    }

    /// The run's decisions, exactly as consumed (replay prefixes are always
    /// fully consumed before fresh choices extend them).
    pub fn harvest_decisions(&self) -> Vec<Choice> {
        relock(&self.dec).choices.clone()
    }

    pub fn harvest_trace(&self) -> Vec<String> {
        std::mem::take(&mut relock(&self.trace))
    }

    // -- nondeterminism -----------------------------------------------------

    /// Consume one choice point with `alts` alternatives: replayed from the
    /// prefix if present, else recorded as alternative 0 (DFS first branch).
    pub fn choose(&self, alts: usize) -> usize {
        debug_assert!(alts >= 1);
        if alts == 1 || self.aborting() {
            return 0;
        }
        let mut d = relock(&self.dec);
        if d.cursor < d.choices.len() {
            let c = d.choices[d.cursor];
            assert_eq!(
                c.alts, alts,
                "replay divergence: choice point had {} alternatives on replay but {} when recorded; \
                 scenario closures must be deterministic (no wall clock, no ambient randomness)",
                alts, c.alts
            );
            d.cursor += 1;
            c.chosen
        } else {
            d.choices.push(Choice { chosen: 0, alts });
            d.cursor += 1;
            0
        }
    }

    fn trace_op(
        &self,
        tid: usize,
        caller: &'static Location<'static>,
        desc: impl FnOnce() -> String,
    ) {
        if self.record && !self.aborting() {
            let who = if tid == DRIVER_TID {
                "driver".to_string()
            } else {
                format!("t{tid}")
            };
            relock(&self.trace).push(format!(
                "{who} {}:{} {}",
                caller.file(),
                caller.line(),
                desc()
            ));
        }
    }

    // -- scheduling ---------------------------------------------------------

    fn link(&self, tid: usize) -> Arc<WorkerLink> {
        relock(&self.links)[tid].clone()
    }

    /// Announce the next op and wait for a scheduler grant. No-op for the
    /// driver and during run teardown.
    fn yield_point(&self, tid: usize) {
        if tid == DRIVER_TID || self.aborting() {
            return;
        }
        let link = self.link(tid);
        link.send_rep(Rep::AtYield);
        wait_step(&link);
    }

    /// Report `tid` blocked and wait to be granted again (the driver grants
    /// a blocked thread only once `is_unblocked` holds).
    fn block_point(&self, tid: usize, kind: BlockKind) {
        if self.aborting() {
            return;
        }
        let link = self.link(tid);
        link.send_rep(Rep::Blocked(kind));
        wait_step(&link);
    }

    /// Driver-side schedulability test for a blocked thread.
    pub fn is_unblocked(&self, tid: usize, kind: BlockKind) -> bool {
        let mem = relock(&self.mem);
        match kind {
            BlockKind::Mutex(m) => !mem.mutexes[m],
            BlockKind::Cv(c) => mem.cvs[c].iter().any(|w| w.tid == tid && w.notified),
        }
    }

    // -- memory -------------------------------------------------------------

    pub fn alloc_loc(&self, init: usize) -> usize {
        let mut mem = relock(&self.mem);
        mem.locs.push(LocState {
            value: init,
            poisoned: false,
        });
        mem.locs.len() - 1
    }

    /// Mark a location freed (free-on-grow mutation). Its buffered stores are
    /// dropped; any later access is reported as a use-after-free.
    pub fn poison_loc(&self, loc: usize) {
        let mut mem = relock(&self.mem);
        mem.locs[loc].poisoned = true;
        for buf in &mut mem.buffers {
            buf.remove(&loc);
        }
    }

    /// At every access of `loc`, each *other* thread's buffered stores to
    /// `loc` may drain first: one independent FIFO-prefix choice per thread.
    /// This is where the explorer branches on store-buffer visibility.
    fn flush_choices(&self, mem: &mut MemState, tid: usize, loc: usize) {
        if self.aborting() {
            return;
        }
        for u in 0..mem.buffers.len() {
            if u == tid {
                continue;
            }
            let n = mem.pending(u, loc);
            if n == 0 {
                continue;
            }
            let k = self.choose(n + 1);
            for _ in 0..k {
                mem.flush_one(u, loc);
            }
        }
    }

    fn poison_failure(&self, what: &str, loc: usize, caller: &'static Location<'static>) -> ! {
        panic!(
            "{what} of freed location loc#{loc} at {}:{} — use-after-free that buffer \
             retirement exists to prevent",
            caller.file(),
            caller.line()
        )
    }

    /// Sequentially consistent load with own-store forwarding.
    pub fn op_load(&self, tid: usize, loc: usize, caller: &'static Location<'static>) -> usize {
        self.yield_point(tid);
        let (v, poisoned) = {
            let mut mem = relock(&self.mem);
            if tid != DRIVER_TID {
                self.flush_choices(&mut mem, tid, loc);
            }
            if mem.locs[loc].poisoned && !self.aborting() {
                (0, true)
            } else {
                let fwd = if tid != DRIVER_TID {
                    mem.buffers
                        .get(tid)
                        .and_then(|b| b.get(&loc))
                        .and_then(|q| q.back().copied())
                } else {
                    None
                };
                (fwd.unwrap_or(mem.locs[loc].value), false)
            }
        };
        if poisoned {
            self.poison_failure("load", loc, caller);
        }
        self.trace_op(tid, caller, || format!("load loc#{loc} -> {v}"));
        v
    }

    /// `Relaxed` worker stores buffer; `Release`/`SeqCst` (and all driver)
    /// stores flush the thread's buffers and write shared memory.
    pub fn op_store(
        &self,
        tid: usize,
        loc: usize,
        v: usize,
        order: Ordering,
        caller: &'static Location<'static>,
    ) {
        self.yield_point(tid);
        let poisoned = {
            let mut mem = relock(&self.mem);
            if tid != DRIVER_TID {
                self.flush_choices(&mut mem, tid, loc);
            }
            if mem.locs[loc].poisoned && !self.aborting() {
                true
            } else {
                if matches!(order, Ordering::Relaxed) && tid != DRIVER_TID {
                    mem.buf_push(tid, loc, v);
                } else {
                    if tid != DRIVER_TID {
                        mem.flush_own(tid);
                    }
                    mem.locs[loc].value = v;
                }
                false
            }
        };
        if poisoned {
            self.poison_failure("store", loc, caller);
        }
        self.trace_op(tid, caller, || {
            format!("store loc#{loc} <- {v} ({order:?})")
        });
    }

    /// Read-modify-write. Modeled sequentially consistent regardless of the
    /// requested ordering (an RMW always flushes the thread's buffers and
    /// acts on shared memory) — a deliberate under-approximation, strong
    /// enough for every protocol here, and never a false positive.
    pub fn op_rmw(
        &self,
        tid: usize,
        loc: usize,
        f: impl FnOnce(usize) -> Option<usize>,
        desc: &'static str,
        caller: &'static Location<'static>,
    ) -> usize {
        self.yield_point(tid);
        let (old, poisoned) = {
            let mut mem = relock(&self.mem);
            if tid != DRIVER_TID {
                self.flush_choices(&mut mem, tid, loc);
            }
            if mem.locs[loc].poisoned && !self.aborting() {
                (0, true)
            } else {
                if tid != DRIVER_TID {
                    mem.flush_own(tid);
                }
                let old = mem.locs[loc].value;
                if let Some(new) = f(old) {
                    mem.locs[loc].value = new;
                }
                (old, false)
            }
        };
        if poisoned {
            self.poison_failure(desc, loc, caller);
        }
        self.trace_op(tid, caller, || format!("{desc} loc#{loc} (was {old})"));
        old
    }

    /// `Release`-or-stronger fences drain the thread's store buffers;
    /// acquire-only fences are no-ops under sequentially consistent loads.
    pub fn op_fence(&self, tid: usize, order: Ordering, caller: &'static Location<'static>) {
        self.yield_point(tid);
        if tid == DRIVER_TID {
            return;
        }
        if matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        ) {
            relock(&self.mem).flush_own(tid);
        }
        self.trace_op(tid, caller, || format!("fence({order:?})"));
    }

    /// Drain every thread's store buffers (run quiescence, before the finish
    /// oracle inspects final state).
    pub fn flush_everything(&self) {
        let mut mem = relock(&self.mem);
        for tid in 0..mem.buffers.len() {
            mem.flush_own(tid);
        }
    }

    // -- model mutexes / condvars (back the protocol Parker) ---------------

    pub fn alloc_mutex(&self) -> usize {
        let mut mem = relock(&self.mem);
        mem.mutexes.push(false);
        mem.mutexes.len() - 1
    }

    pub fn alloc_cv(&self) -> usize {
        let mut mem = relock(&self.mem);
        mem.cvs.push(Vec::new());
        mem.cvs.len() - 1
    }

    pub fn mutex_lock(&self, tid: usize, m: usize) {
        if tid == DRIVER_TID || self.aborting() {
            return;
        }
        self.yield_point(tid);
        loop {
            {
                let mut mem = relock(&self.mem);
                if !mem.mutexes[m] {
                    mem.mutexes[m] = true;
                    return;
                }
            }
            self.block_point(tid, BlockKind::Mutex(m));
            if self.aborting() {
                return;
            }
        }
    }

    pub fn mutex_unlock(&self, tid: usize, m: usize) {
        if tid == DRIVER_TID || self.aborting() {
            return;
        }
        let mut mem = relock(&self.mem);
        debug_assert!(mem.mutexes[m], "unlock of a free model mutex");
        mem.mutexes[m] = false;
        // A real mutex release publishes the critical section's writes.
        mem.flush_own(tid);
    }

    /// Atomically release `m` and join the wait set of `cv`; once notified
    /// and granted, re-acquire `m` before returning. No spurious wakeups:
    /// a protocol that needs them to make progress has a lost-wakeup bug,
    /// which this model reports as a deadlock.
    pub fn cv_wait(&self, tid: usize, cv: usize, m: usize) {
        assert_ne!(tid, DRIVER_TID, "driver cannot wait on a model condvar");
        if self.aborting() {
            return;
        }
        {
            let mut mem = relock(&self.mem);
            debug_assert!(mem.mutexes[m], "cv_wait without the mutex held");
            mem.mutexes[m] = false;
            mem.flush_own(tid);
            mem.cvs[cv].push(Waiter {
                tid,
                notified: false,
            });
        }
        self.block_point(tid, BlockKind::Cv(cv));
        {
            let mut mem = relock(&self.mem);
            mem.cvs[cv].retain(|w| w.tid != tid);
        }
        loop {
            {
                let mut mem = relock(&self.mem);
                if !mem.mutexes[m] {
                    mem.mutexes[m] = true;
                    return;
                }
            }
            self.block_point(tid, BlockKind::Mutex(m));
            if self.aborting() {
                return;
            }
        }
    }

    /// Mark waiters notified. `notify_one` picks the earliest un-notified
    /// waiter (deterministic; a real condvar may pick any — scenarios here
    /// never have two waiters racing for one notification).
    pub fn cv_notify(&self, cv: usize, all: bool) {
        let mut mem = relock(&self.mem);
        if all {
            for w in &mut mem.cvs[cv] {
                w.notified = true;
            }
        } else if let Some(w) = mem.cvs[cv].iter_mut().find(|w| !w.notified) {
            w.notified = true;
        }
    }
}
