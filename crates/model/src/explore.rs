//! The depth-first schedule explorer: iterative deepening over a CHESS-style
//! preemption bound, exact replay from a recorded decision stack, and a
//! fixed pool of reusable OS worker threads (one per model thread).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

use crate::exec::{self, BlockKind, Choice, Cmd, Rep, RunCtl, WorkerLink};

/// Exploration limits. The defaults suit the protocol scenarios in this
/// workspace; tests that need deeper preemption (the sleep-protocol
/// mutation needs 4) say so explicitly.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum context switches away from a still-runnable thread per
    /// schedule (switches away from a blocked or finished thread are free).
    /// Explored by iterative deepening: bound 0 first, so counterexamples
    /// surface at their minimal preemption count.
    pub preemption_bound: usize,
    /// Hard budget on executed schedules, summed across deepening passes.
    /// Hitting it stops the search with `Outcome::complete == false` —
    /// callers asserting exhaustiveness will then fail loudly.
    pub max_schedules: u64,
    /// Per-run cap on scheduler grants, to catch unbounded scenarios.
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_schedules: 500_000,
            max_steps: 20_000,
        }
    }
}

impl Config {
    /// Default limits at a given preemption bound.
    pub fn with_bound(preemption_bound: usize) -> Self {
        Config {
            preemption_bound,
            ..Config::default()
        }
    }
}

/// What the search found.
#[derive(Debug)]
pub struct Outcome {
    /// Schedules executed (deepening re-explores low-preemption prefixes,
    /// which is counted too).
    pub schedules: u64,
    /// `true` iff every schedule within the preemption bound was explored
    /// without finding a failure.
    pub complete: bool,
    pub failure: Option<Failure>,
}

impl Outcome {
    /// Assert the search was exhaustive and clean (soundness suites).
    #[track_caller]
    pub fn assert_clean(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model check failed after {} schedules (preemption bound {}):\n  {}\ntrace:\n{}",
                self.schedules,
                f.preemptions,
                f.message,
                f.render_trace()
            );
        }
        assert!(
            self.complete,
            "model check exhausted its schedule budget after {} schedules without completing \
             — raise max_schedules or shrink the scenario",
            self.schedules
        );
    }

    /// The failure a mutation suite expects, or a panic naming what went
    /// wrong (no failure, or budget exhaustion).
    #[track_caller]
    pub fn expect_failure(&self) -> &Failure {
        match &self.failure {
            Some(f) => f,
            None => panic!(
                "expected the explorer to find a failure, but {} schedules were {} and clean",
                self.schedules,
                if self.complete {
                    "exhaustive"
                } else {
                    "budget-capped"
                }
            ),
        }
    }
}

/// A failing schedule, replayed with tracing on.
#[derive(Debug)]
pub struct Failure {
    /// The panic message of the failing thread / oracle, or the deadlock
    /// description.
    pub message: String,
    /// Preemption bound of the deepening pass that found it (== the minimal
    /// preemption count, since shallower passes ran first).
    pub preemptions: usize,
    /// One line per executed op of the failing schedule.
    pub trace: Vec<String>,
}

impl Failure {
    pub fn render_trace(&self) -> String {
        self.trace.join("\n")
    }
}

/// One run's thread bodies plus the end-of-run oracle. Rebuilt fresh for
/// every schedule by the `make` closure handed to [`explore`].
#[derive(Default)]
pub struct Scenario {
    threads: Vec<Box<dyn FnOnce() + Send + 'static>>,
    finish: Option<Box<dyn FnOnce() + 'static>>,
}

impl Scenario {
    pub fn new() -> Self {
        Scenario::default()
    }

    /// Add a model thread. Thread ids are assigned in call order.
    pub fn thread(mut self, f: impl FnOnce() + Send + 'static) -> Self {
        self.threads.push(Box::new(f));
        self
    }

    /// Oracle run on the driver after every thread finished and all store
    /// buffers drained; panics become run failures.
    pub fn finish(mut self, f: impl FnOnce() + 'static) -> Self {
        self.finish = Some(Box::new(f));
        self
    }
}

/// Exhaustively explore the interleavings of the scenario `make` builds,
/// up to the configured preemption bound. `make` is invoked once per
/// schedule and must be deterministic: same threads, same setup, no wall
/// clock or ambient randomness (the replay machinery asserts this).
pub fn explore(config: Config, mut make: impl FnMut() -> Scenario) -> Outcome {
    let mut pool: Option<WorkerPool> = None;
    let mut schedules = 0u64;
    for bound in 0..=config.preemption_bound {
        let mut prefix: Vec<Choice> = Vec::new();
        loop {
            if schedules >= config.max_schedules {
                return Outcome {
                    schedules,
                    complete: false,
                    failure: None,
                };
            }
            let run = run_one(&mut pool, &mut make, prefix, bound, config.max_steps, false);
            schedules += 1;
            if let Some(message) = run.failure {
                // Replay the same decision stack with tracing on for the
                // report; determinism makes this exact.
                let replay = run_one(
                    &mut pool,
                    &mut make,
                    run.decisions.clone(),
                    bound,
                    config.max_steps,
                    true,
                );
                return Outcome {
                    schedules: schedules + 1,
                    complete: false,
                    failure: Some(Failure {
                        message,
                        preemptions: bound,
                        trace: replay.trace,
                    }),
                };
            }
            let mut d = run.decisions;
            if !advance(&mut d) {
                break; // this deepening pass is exhausted
            }
            prefix = d;
        }
    }
    Outcome {
        schedules,
        complete: true,
        failure: None,
    }
}

/// Standard DFS backtrack: bump the deepest choice that still has an
/// untried alternative, dropping everything after it.
fn advance(d: &mut Vec<Choice>) -> bool {
    while let Some(last) = d.last_mut() {
        if last.chosen + 1 < last.alts {
            last.chosen += 1;
            return true;
        }
        d.pop();
    }
    false
}

struct WorkerPool {
    links: Vec<Arc<WorkerLink>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(n: usize) -> Self {
        let mut links = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            let link = Arc::new(WorkerLink::default());
            let worker_link = link.clone();
            handles.push(thread::spawn(move || exec::worker_main(worker_link)));
            links.push(link);
        }
        WorkerPool { links, handles }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Only ever dropped between runs, with every worker idle.
        for l in &self.links {
            l.send_cmd(Cmd::Exit);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct RunResult {
    decisions: Vec<Choice>,
    failure: Option<String>,
    trace: Vec<String>,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum St {
    Ready,
    /// At a `spin_hint` fairness point: runnable, but not granted while any
    /// non-spinning thread is; promoted back to `Ready` once another
    /// thread executes a grant.
    Spinning,
    Blocked(BlockKind),
    Done,
}

/// Execute one schedule: replay `prefix`, extend with first-alternative
/// choices, and return the full decision record plus any failure.
fn run_one(
    pool: &mut Option<WorkerPool>,
    make: &mut impl FnMut() -> Scenario,
    prefix: Vec<Choice>,
    bound: usize,
    max_steps: usize,
    record: bool,
) -> RunResult {
    let ctl = Arc::new(RunCtl::new(prefix, record));
    exec::set_driver_ctx(&ctl);
    let Scenario { threads, finish } = make();
    let n = threads.len();
    assert!(n >= 1, "scenario needs at least one thread");
    let pool = pool.get_or_insert_with(|| WorkerPool::new(n));
    assert_eq!(
        pool.links.len(),
        n,
        "scenario thread count must be stable across runs"
    );
    ctl.set_links(pool.links.clone());

    for (tid, body) in threads.into_iter().enumerate() {
        pool.links[tid].send_cmd(Cmd::Run {
            ctl: ctl.clone(),
            tid,
            body,
        });
        match pool.links[tid].recv_rep() {
            Rep::AtYield => {}
            other => unreachable!("worker {tid} failed to become ready: {other:?}"),
        }
    }

    let mut status = vec![St::Ready; n];
    let mut failure: Option<String> = None;

    // The schedule loop runs under `catch_unwind` so a driver-side panic
    // (a harness bug, a replay-divergence assert) still tears the workers
    // down; otherwise a worker left waiting for a grant deadlocks the
    // pool's Drop and the whole process hangs instead of failing.
    let loop_panic = catch_unwind(AssertUnwindSafe(|| {
        let mut current: Option<usize> = None;
        let mut preemptions = 0usize;
        let mut steps = 0usize;
        loop {
            let runnable: Vec<usize> = (0..n)
                .filter(|&t| match status[t] {
                    St::Ready | St::Spinning => true,
                    St::Blocked(k) => ctl.is_unblocked(t, k),
                    St::Done => false,
                })
                .collect();
            if runnable.is_empty() {
                let stuck: Vec<String> = (0..n)
                    .filter(|&t| status[t] != St::Done)
                    .map(|t| format!("t{t} {:?}", status[t]))
                    .collect();
                if !stuck.is_empty() {
                    failure = Some(format!(
                        "deadlock: every unfinished thread is blocked with no one left to wake \
                         it (a lost wakeup): {}",
                        stuck.join(", ")
                    ));
                }
                break;
            }

            // Fairness: threads at a spin-hint are runnable but yield
            // priority to everyone who is not.
            let fresh: Vec<usize> = runnable
                .iter()
                .copied()
                .filter(|&t| status[t] != St::Spinning)
                .collect();
            let base = if fresh.is_empty() { &runnable } else { &fresh };

            let cur_fresh = current.is_some_and(|c| base.contains(&c) && status[c] != St::Spinning);
            let candidates: Vec<usize> = if cur_fresh {
                let c = current.unwrap();
                if preemptions >= bound {
                    vec![c]
                } else {
                    std::iter::once(c)
                        .chain(base.iter().copied().filter(|&t| t != c))
                        .collect()
                }
            } else {
                base.clone()
            };
            let pick = candidates[ctl.choose(candidates.len())];
            if cur_fresh && pick != current.unwrap() {
                preemptions += 1;
            }
            current = Some(pick);
            steps += 1;
            if steps > max_steps {
                failure = Some(format!(
                    "livelock: the run exceeded {max_steps} scheduler grants without finishing \
                     — an unbounded retry loop (missing `spin_hint`?) or a genuinely \
                     non-terminating schedule"
                ));
                break;
            }

            pool.links[pick].send_cmd(Cmd::Step);
            match pool.links[pick].recv_rep() {
                Rep::AtYield => status[pick] = St::Ready,
                Rep::AtSpin => status[pick] = St::Spinning,
                Rep::Blocked(k) => status[pick] = St::Blocked(k),
                Rep::Done => status[pick] = St::Done,
                Rep::Panicked(msg) => {
                    status[pick] = St::Done;
                    failure = Some(msg);
                    break;
                }
            }
            // The grant may have advanced shared state: spinners other
            // than the thread just granted get a fresh look.
            for (t, st) in status.iter_mut().enumerate() {
                if t != pick && *st == St::Spinning {
                    *st = St::Ready;
                }
            }
        }
    }))
    .err();

    // Tear down: unwind every unfinished worker. `begin_abort` first, so
    // drop glue running model ops neither blocks nor records choices.
    ctl.begin_abort();
    for (t, st) in status.iter().enumerate() {
        if *st != St::Done {
            pool.links[t].send_cmd(Cmd::Abort);
            match pool.links[t].recv_rep() {
                Rep::Done => {}
                Rep::Panicked(msg) => {
                    failure.get_or_insert(msg);
                }
                other => unreachable!("worker {t} mid-abort: {other:?}"),
            }
        }
    }

    if failure.is_none() {
        // Quiescence: drain every store buffer, then run the oracle with
        // all writes visible.
        ctl.flush_everything();
        if let Some(fin) = finish {
            if let Err(p) = catch_unwind(AssertUnwindSafe(fin)) {
                failure = Some(exec::panic_msg(p.as_ref()));
            }
        }
    } else {
        drop(finish);
    }

    let decisions = ctl.harvest_decisions();
    let trace = ctl.harvest_trace();
    exec::clear_ctx();
    if let Some(p) = loop_panic {
        // A driver-side bug (replay divergence, a harness invariant). The
        // workers are parked again, so re-raising is now safe.
        std::panic::resume_unwind(p);
    }
    RunResult {
        decisions,
        failure,
        trace,
    }
}
