//! `pfg_model` — a bounded exhaustive interleaving explorer for the
//! executor's lock-free protocols.
//!
//! The rayon shim's deque and sleep/wake handshake live in generic
//! `protocol` modules parameterized over a [`Platform`] of atomic types
//! (`crates/shims/rayon/src/protocol/`). The production pool instantiates
//! them with `std::sync::atomic`; this crate instantiates the *same* code
//! with shim atomics (`ModelAtomicUsize`, `ModelAtomicPtr`,
//! `model_fence`, …) that route every load, store, RMW, and fence through
//! a cooperative scheduler. The scheduler then runs a depth-first search
//! over thread interleavings — loom-style, but self-contained and offline —
//! replaying each schedule deterministically from a recorded decision stack.
//!
//! # Memory model
//!
//! The explorer simulates a PSO-style store-buffer machine, which is
//! strictly weaker than x86-TSO and strong enough to expose every seeded
//! mutation in the protocol modules:
//!
//! - `Relaxed` stores enter a per-(thread, location) FIFO buffer and become
//!   visible to other threads only when flushed.
//! - `Release`/`SeqCst` stores, all RMWs (`swap`, `fetch_add`,
//!   `compare_exchange`), and `Release`/`SeqCst` fences first flush *all* of
//!   the acting thread's buffers, then hit shared memory.
//! - Loads forward from the thread's own newest buffered store to that
//!   location, else read shared memory. Loads are otherwise
//!   sequentially consistent — the model under-approximates C11 (no
//!   load-load reordering), so every failure it reports is a real
//!   interleaving of some store-buffer machine, never a false positive.
//! - Flushes are *also* scheduling-free nondeterminism: at every access of
//!   location `L`, the explorer branches on how many of each *other*
//!   thread's pending buffered stores to `L` drain first (FIFO prefixes).
//!
//! # Search
//!
//! One OS worker thread per model thread is spawned once and reused across
//! schedules; a baton handoff guarantees exactly one runs at a time, so
//! execution is sequential and replay is exact (no wall clock, no timers,
//! no real parallelism). The driver bounds *preemptions* (context switches
//! away from a runnable thread, CHESS-style) and iteratively deepens the
//! bound, so minimal counterexamples surface first. Model mutexes and
//! condvars back the protocol [`Parker`]; a run where every unfinished
//! thread is blocked is reported as a deadlock — which is exactly the
//! lost-wakeup failure mode of the sleep protocol.
//!
//! Everything here compiles only under `--cfg pfg_model` (like
//! `pfg_racecheck`); without the cfg this crate is empty and the production
//! executor is untouched.
//!
//! [`Platform`]: rayon::protocol::Platform
//! [`Parker`]: rayon::protocol::Parker

#[cfg(pfg_model)]
mod atomics;
#[cfg(pfg_model)]
mod exec;
#[cfg(pfg_model)]
mod explore;

#[cfg(pfg_model)]
pub use atomics::{
    model_fence, ModelAtomicBool, ModelAtomicIsize, ModelAtomicPtr, ModelAtomicUsize, ModelParker,
    ModelPlatform, Token,
};
#[cfg(pfg_model)]
pub use exec::spin_hint;
#[cfg(pfg_model)]
pub use explore::{explore, Config, Failure, Outcome, Scenario};
