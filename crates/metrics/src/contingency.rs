//! Contingency tables between two clusterings.

use std::collections::HashMap;

/// A contingency table `n_ij` between ground-truth clusters `i` and
/// predicted clusters `j`, with the marginals the ARI/AMI formulas need.
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    /// `counts[i][j]` = number of objects in truth cluster `i` and predicted
    /// cluster `j`.
    pub counts: Vec<Vec<u64>>,
    /// Row sums `a_i` (sizes of the ground-truth clusters).
    pub row_sums: Vec<u64>,
    /// Column sums `b_j` (sizes of the predicted clusters).
    pub col_sums: Vec<u64>,
    /// Total number of objects `n`.
    pub total: u64,
}

impl ContingencyTable {
    /// Builds the table from two label vectors of equal length. Labels may
    /// be arbitrary `usize` values; they are compacted internally.
    ///
    /// # Panics
    /// Panics if the two label vectors have different lengths.
    pub fn new(truth: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "label vectors must have equal length"
        );
        let mut row_index: HashMap<usize, usize> = HashMap::new();
        let mut col_index: HashMap<usize, usize> = HashMap::new();
        for &t in truth {
            let next = row_index.len();
            row_index.entry(t).or_insert(next);
        }
        for &p in predicted {
            let next = col_index.len();
            col_index.entry(p).or_insert(next);
        }
        let rows = row_index.len();
        let cols = col_index.len();
        let mut counts = vec![vec![0_u64; cols]; rows];
        for (&t, &p) in truth.iter().zip(predicted.iter()) {
            counts[row_index[&t]][col_index[&p]] += 1;
        }
        let row_sums: Vec<u64> = counts.iter().map(|r| r.iter().sum()).collect();
        let col_sums: Vec<u64> = (0..cols)
            .map(|j| counts.iter().map(|r| r[j]).sum())
            .collect();
        Self {
            counts,
            row_sums,
            col_sums,
            total: truth.len() as u64,
        }
    }

    /// Number of ground-truth clusters.
    pub fn num_truth_clusters(&self) -> usize {
        self.row_sums.len()
    }

    /// Number of predicted clusters.
    pub fn num_predicted_clusters(&self) -> usize {
        self.col_sums.len()
    }

    /// Sum over all cells of `C(n_ij, 2)`.
    pub fn sum_cell_pairs(&self) -> f64 {
        self.counts
            .iter()
            .flat_map(|r| r.iter())
            .map(|&c| choose2(c))
            .sum()
    }

    /// Sum over rows of `C(a_i, 2)`.
    pub fn sum_row_pairs(&self) -> f64 {
        self.row_sums.iter().map(|&a| choose2(a)).sum()
    }

    /// Sum over columns of `C(b_j, 2)`.
    pub fn sum_col_pairs(&self) -> f64 {
        self.col_sums.iter().map(|&b| choose2(b)).sum()
    }
}

/// `C(n, 2)` as a float.
pub fn choose2(n: u64) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_counts_and_marginals() {
        let truth = vec![0, 0, 1, 1, 1];
        let pred = vec![5, 5, 5, 9, 9];
        let table = ContingencyTable::new(&truth, &pred);
        assert_eq!(table.total, 5);
        assert_eq!(table.num_truth_clusters(), 2);
        assert_eq!(table.num_predicted_clusters(), 2);
        assert_eq!(table.counts, vec![vec![2, 0], vec![1, 2]]);
        assert_eq!(table.row_sums, vec![2, 3]);
        assert_eq!(table.col_sums, vec![3, 2]);
    }

    #[test]
    fn pair_sums() {
        let truth = vec![0, 0, 1, 1, 1];
        let pred = vec![0, 0, 0, 1, 1];
        let table = ContingencyTable::new(&truth, &pred);
        // cells: 2,0 / 1,2 → C(2,2)+C(1,2)+C(2,2) = 1 + 0 + 1 = 2
        assert_eq!(table.sum_cell_pairs(), 2.0);
        assert_eq!(table.sum_row_pairs(), 1.0 + 3.0);
        assert_eq!(table.sum_col_pairs(), 3.0 + 1.0);
    }

    #[test]
    fn arbitrary_label_values_are_compacted() {
        let truth = vec![100, 100, 7];
        let pred = vec![42, 3, 3];
        let table = ContingencyTable::new(&truth, &pred);
        assert_eq!(table.num_truth_clusters(), 2);
        assert_eq!(table.num_predicted_clusters(), 2);
        assert_eq!(table.total, 3);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        ContingencyTable::new(&[0, 1], &[0]);
    }

    #[test]
    fn choose2_small_values() {
        assert_eq!(choose2(0), 0.0);
        assert_eq!(choose2(1), 0.0);
        assert_eq!(choose2(2), 1.0);
        assert_eq!(choose2(5), 10.0);
    }
}
