//! Clustering evaluation metrics used in §VII of the paper: the Adjusted
//! Rand Index (ARI) and Adjusted Mutual Information (AMI), plus the
//! contingency-table machinery they share.
//!
//! Both scores compare a predicted clustering against ground-truth labels;
//! they equal 1 for a perfect match and have expected value 0 for random
//! assignments.

pub mod contingency;
pub mod scores;

pub use contingency::ContingencyTable;
pub use scores::{
    adjusted_mutual_information, adjusted_rand_index, normalized_mutual_information, rand_index,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![1, 1, 0, 0];
        assert!((adjusted_rand_index(&truth, &pred) - 1.0).abs() < 1e-12);
        assert!((adjusted_mutual_information(&truth, &pred) - 1.0).abs() < 1e-9);
    }
}
