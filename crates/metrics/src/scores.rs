//! The Adjusted Rand Index and (Adjusted / Normalized) Mutual Information.

use crate::contingency::{choose2, ContingencyTable};

/// The (unadjusted) Rand index: the fraction of object pairs on which the
/// two clusterings agree.
pub fn rand_index(truth: &[usize], predicted: &[usize]) -> f64 {
    let table = ContingencyTable::new(truth, predicted);
    let n = table.total;
    if n < 2 {
        return 1.0;
    }
    let total_pairs = choose2(n);
    let sum_cells = table.sum_cell_pairs();
    let sum_rows = table.sum_row_pairs();
    let sum_cols = table.sum_col_pairs();
    // Agreements = pairs together in both + pairs separated in both.
    let together_both = sum_cells;
    let separated_both = total_pairs - sum_rows - sum_cols + sum_cells;
    (together_both + separated_both) / total_pairs
}

/// The Adjusted Rand Index of Hubert and Arabie (the formula of §VII):
/// 1 for identical clusterings, expected value 0 under random labelings.
pub fn adjusted_rand_index(truth: &[usize], predicted: &[usize]) -> f64 {
    let table = ContingencyTable::new(truth, predicted);
    let n = table.total;
    if n < 2 {
        return 1.0;
    }
    let total_pairs = choose2(n);
    let index = table.sum_cell_pairs();
    let expected = table.sum_row_pairs() * table.sum_col_pairs() / total_pairs;
    let max_index = 0.5 * (table.sum_row_pairs() + table.sum_col_pairs());
    if (max_index - expected).abs() < 1e-15 {
        // Both clusterings are trivial (all singletons or a single cluster):
        // they agree perfectly iff the index equals the expectation.
        return if (index - expected).abs() < 1e-15 {
            1.0
        } else {
            0.0
        };
    }
    (index - expected) / (max_index - expected)
}

/// Entropy (natural log) of a clustering given its cluster sizes.
fn entropy(sizes: &[u64], total: u64) -> f64 {
    let n = total as f64;
    sizes
        .iter()
        .filter(|&&s| s > 0)
        .map(|&s| {
            let p = s as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Mutual information (natural log) between the two clusterings.
fn mutual_information(table: &ContingencyTable) -> f64 {
    let n = table.total as f64;
    let mut mi = 0.0;
    for (i, row) in table.counts.iter().enumerate() {
        for (j, &nij) in row.iter().enumerate() {
            if nij == 0 {
                continue;
            }
            let nij = nij as f64;
            let ai = table.row_sums[i] as f64;
            let bj = table.col_sums[j] as f64;
            mi += (nij / n) * ((n * nij) / (ai * bj)).ln();
        }
    }
    mi
}

/// Expected mutual information under the permutation (hypergeometric)
/// model, following Vinh, Epps and Bailey (2010).
fn expected_mutual_information(table: &ContingencyTable) -> f64 {
    let n = table.total;
    let nf = n as f64;
    // Pre-computed log-factorials 0..=n.
    let mut log_fact = vec![0.0_f64; (n + 1) as usize];
    for i in 1..=n as usize {
        log_fact[i] = log_fact[i - 1] + (i as f64).ln();
    }
    let lf = |x: u64| log_fact[x as usize];

    let mut emi = 0.0;
    for &ai in &table.row_sums {
        for &bj in &table.col_sums {
            let lower = 1.max((ai + bj).saturating_sub(n));
            let upper = ai.min(bj);
            for nij in lower..=upper {
                let nij_f = nij as f64;
                let term1 = (nij_f / nf) * ((nf * nij_f) / (ai as f64 * bj as f64)).ln();
                // log of the hypergeometric probability of n_ij.
                let log_prob = lf(ai) + lf(bj) + lf(n - ai) + lf(n - bj)
                    - lf(n)
                    - lf(nij)
                    - lf(ai - nij)
                    - lf(bj - nij)
                    - lf(n + nij - ai - bj);
                emi += term1 * log_prob.exp();
            }
        }
    }
    emi
}

/// Normalized mutual information with the arithmetic-mean normaliser.
pub fn normalized_mutual_information(truth: &[usize], predicted: &[usize]) -> f64 {
    let table = ContingencyTable::new(truth, predicted);
    let hu = entropy(&table.row_sums, table.total);
    let hv = entropy(&table.col_sums, table.total);
    if hu == 0.0 && hv == 0.0 {
        return 1.0;
    }
    let mi = mutual_information(&table);
    2.0 * mi / (hu + hv)
}

/// The Adjusted Mutual Information (arithmetic-mean normalisation), the
/// second quality score used in §VII. Equals 1 for identical clusterings
/// and has expected value 0 for random ones.
pub fn adjusted_mutual_information(truth: &[usize], predicted: &[usize]) -> f64 {
    let table = ContingencyTable::new(truth, predicted);
    let hu = entropy(&table.row_sums, table.total);
    let hv = entropy(&table.col_sums, table.total);
    if hu == 0.0 && hv == 0.0 {
        // Both clusterings put everything in one cluster: identical.
        return 1.0;
    }
    let mi = mutual_information(&table);
    let emi = expected_mutual_information(&table);
    let denom = 0.5 * (hu + hv) - emi;
    if denom.abs() < 1e-15 {
        return 0.0;
    }
    (mi - emi) / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_clusterings_score_one() {
        let labels = vec![0, 0, 1, 1, 2, 2, 2];
        assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-12);
        assert!((adjusted_mutual_information(&labels, &labels) - 1.0).abs() < 1e-9);
        assert!((rand_index(&labels, &labels) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&labels, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn permuted_label_names_do_not_matter() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![7, 7, 3, 3, 9, 9];
        assert!((adjusted_rand_index(&truth, &pred) - 1.0).abs() < 1e-12);
        assert!((adjusted_mutual_information(&truth, &pred) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn completely_split_prediction_scores_near_zero() {
        // Each object its own cluster vs two ground-truth clusters: ARI = 0.
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 1, 2, 3, 4, 5];
        let ari = adjusted_rand_index(&truth, &pred);
        assert!(ari.abs() < 1e-12, "ari {ari}");
    }

    #[test]
    fn single_cluster_prediction_scores_near_zero() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0; 6];
        let ari = adjusted_rand_index(&truth, &pred);
        assert!(ari.abs() < 1e-12, "ari {ari}");
        let ami = adjusted_mutual_information(&truth, &pred);
        assert!(ami.abs() < 1e-9, "ami {ami}");
    }

    #[test]
    fn known_ari_value() {
        // Classic example: truth = [0,0,1,1], pred = [0,0,0,1].
        // Contingency: [[2,0],[1,1]]; sum cells C2 = 1; rows = 1+1=2; cols = C(3,2)+0 = 3.
        // index = 1, expected = 2*3/6 = 1, max = 2.5 → ARI = 0/1.5 = 0.
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 0, 1];
        let ari = adjusted_rand_index(&truth, &pred);
        assert!(ari.abs() < 1e-12, "ari {ari}");
    }

    #[test]
    fn known_rand_index_value() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 0, 1];
        // Agreeing pairs: (0,1) together-together, (0,3),(1,3) apart-apart → 3 of 6.
        // Wait: pairs = (0,1) T/T agree, (0,2) F/T disagree, (0,3) F/F agree,
        // (1,2) F/T disagree, (1,3) F/F agree, (2,3) T/F disagree → 3/6.
        assert!((rand_index(&truth, &pred) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_agreement_is_between_zero_and_one() {
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2];
        let pred = vec![0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 0];
        let ari = adjusted_rand_index(&truth, &pred);
        let ami = adjusted_mutual_information(&truth, &pred);
        assert!(ari > 0.0 && ari < 1.0, "ari {ari}");
        assert!(ami > 0.0 && ami < 1.0, "ami {ami}");
    }

    #[test]
    fn ami_is_close_to_zero_for_random_labels() {
        // Deterministic pseudo-random labels via a multiplicative hash.
        let n = 400;
        let truth: Vec<usize> = (0..n).map(|i| (i * 2654435761_usize) % 5).collect();
        let pred: Vec<usize> = (0..n).map(|i| (i * 40503_usize + 7) % 4).collect();
        let ami = adjusted_mutual_information(&truth, &pred);
        let ari = adjusted_rand_index(&truth, &pred);
        assert!(ami.abs() < 0.1, "ami {ami}");
        assert!(ari.abs() < 0.1, "ari {ari}");
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
        assert_eq!(rand_index(&[], &[]), 1.0);
    }

    #[test]
    fn ari_symmetry() {
        let a = vec![0, 0, 1, 1, 2, 2, 0, 1];
        let b = vec![0, 1, 1, 1, 2, 0, 0, 1];
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
        assert!(
            (adjusted_mutual_information(&a, &b) - adjusted_mutual_information(&b, &a)).abs()
                < 1e-9
        );
    }
}
