//! Shadow-write audit registry for the workspace's `unsafe` disjoint-write
//! paths, plus the one shared [`SendPtr`] those paths use.
//!
//! Every raw-pointer write in this workspace is justified by a
//! *disjointness* argument: the tiled correlation kernel's tile pairs own
//! mirrored element sets, the parallel merge sort's sub-merges own
//! `[start, end)` ranges of the slice and scratch buffer, APSP owns one
//! matrix row per Dijkstra source, and the executor's `MaybeUninit` result
//! slots are written by exactly one leaf each. Those arguments are
//! enforced by hand discipline — the build environment has no Miri,
//! ThreadSanitizer, or loom — so this crate makes them *checkable*: each
//! unsafe write path registers its claim with a [`DisjointWriteAudit`],
//! and under `--cfg pfg_racecheck` any overlap or double write panics
//! naming **both** claim sites. Without the cfg every type here is
//! zero-sized and every method an empty `#[inline]` body, so the audited
//! hot paths cost nothing in ordinary builds (asserted by the
//! `zero_sized_when_disabled` test).
//!
//! Three claim disciplines cover the workspace's write patterns:
//!
//! * [`DisjointWriteAudit::cells`] — an *exactly-once* registry over `len`
//!   flat cells. [`DisjointWriteAudit::write_once`] marks a cell written;
//!   a second write to the same cell panics. Lock-free (one CAS per
//!   write), so it can sit on `n²`-element kernels.
//! * [`DisjointWriteAudit::sparse_cells`] — the exactly-once registry over
//!   an *unbounded* index space, for claim protocols whose indices grow
//!   monotonically for the life of the structure (the work-stealing
//!   deque's absolute slot indices). Mutex + `BTreeMap` instead of a flat
//!   CAS array; only the checking build pays for it.
//! * [`DisjointWriteAudit::ranges`] — a registry of *live* `[start, end)`
//!   claims. [`DisjointWriteAudit::claim_range`] panics if the range
//!   overlaps any claim still alive, and the returned [`RangeClaim`] guard
//!   releases the claim on drop — so temporally nested ownership (a merge
//!   tree whose parent reuses its children's ranges *after* they complete)
//!   audits cleanly while true concurrent overlap panics.
//!
//! Run the audit with:
//!
//! ```text
//! RUSTFLAGS="--cfg pfg_racecheck" cargo test -q
//! ```
//!
//! (optionally under `PFG_CHAOS_SEED` — see the rayon shim — to stress
//! many steal orders).

/// A raw pointer that may cross threads, for closures that write disjoint
/// ranges of one buffer in parallel.
///
/// This is the single shared definition used by the parallel merge sort,
/// the tiled correlation kernel, and the APSP symmetrisation (each
/// previously rolled its own). Sound to send only because every user hands
/// a task a pointer into a region that task has *exclusive* access to —
/// the disjointness invariants that [`DisjointWriteAudit`] checks
/// dynamically under `--cfg pfg_racecheck`.
pub struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Wraps `ptr`. Constructing a `SendPtr` is safe; every dereference of
    /// [`SendPtr::get`]'s result remains `unsafe` and needs its own
    /// disjointness argument.
    #[inline]
    pub fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    /// The wrapped pointer. An accessor rather than field access so `move`
    /// closures capture the whole `Send` wrapper, not the raw-pointer
    /// field (closure capture is field-precise and `*mut T` alone is not
    /// `Send`).
    #[inline]
    pub fn get(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: see the type docs — every user hands each task a pointer to a
// range it has exclusive access to; `T: Send` moves ownership of the
// pointed-to values across threads with the pointer.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above; a `&SendPtr` only exposes the pointer value, and all
// dereferences are the caller's (audited) responsibility.
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(pfg_racecheck)]
mod imp {
    use std::panic::Location;
    use std::sync::atomic::{AtomicPtr, Ordering};
    use std::sync::Mutex;

    type Site = &'static Location<'static>;

    /// The checking registry (`--cfg pfg_racecheck` build).
    pub struct DisjointWriteAudit {
        label: &'static str,
        mode: Mode,
    }

    enum Mode {
        /// One slot per cell: null = unwritten, else the first writer's
        /// claim site.
        Cells(Vec<AtomicPtr<Location<'static>>>),
        /// Unbounded index space: index → first writer's claim site.
        Sparse(Mutex<std::collections::BTreeMap<usize, Site>>),
        Ranges(Mutex<RangeTable>),
    }

    struct RangeTable {
        next_id: u64,
        live: Vec<LiveRange>,
    }

    struct LiveRange {
        id: u64,
        start: usize,
        end: usize,
        site: Site,
    }

    impl DisjointWriteAudit {
        pub fn cells(label: &'static str, len: usize) -> Self {
            DisjointWriteAudit {
                label,
                mode: Mode::Cells(
                    (0..len)
                        .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                        .collect(),
                ),
            }
        }

        pub fn sparse_cells(label: &'static str) -> Self {
            DisjointWriteAudit {
                label,
                mode: Mode::Sparse(Mutex::new(std::collections::BTreeMap::new())),
            }
        }

        pub fn ranges(label: &'static str) -> Self {
            DisjointWriteAudit {
                label,
                mode: Mode::Ranges(Mutex::new(RangeTable {
                    next_id: 0,
                    live: Vec::new(),
                })),
            }
        }

        #[track_caller]
        pub fn write_once(&self, idx: usize) {
            let site: Site = Location::caller();
            let cells = match &self.mode {
                Mode::Cells(cells) => cells,
                Mode::Sparse(map) => {
                    // Violation panics below may be caught by tests; keep
                    // the registry usable afterwards by ignoring poison.
                    let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(first) = map.insert(idx, site) {
                        panic!(
                            "racecheck[{}]: double write to cell {idx}: first claimed at \
                             {first}, claimed again at {site}",
                            self.label
                        );
                    }
                    return;
                }
                Mode::Ranges(_) => panic!(
                    "racecheck[{}]: write_once on a range-mode audit",
                    self.label
                ),
            };
            assert!(
                idx < cells.len(),
                "racecheck[{}]: cell {idx} out of bounds ({} cells)",
                self.label,
                cells.len()
            );
            let new = site as *const Location<'static> as *mut Location<'static>;
            if let Err(first) = cells[idx].compare_exchange(
                std::ptr::null_mut(),
                new,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                // SAFETY: non-null entries are always &'static Locations
                // stored by the CAS above.
                let first: Site = unsafe { &*first };
                panic!(
                    "racecheck[{}]: double write to cell {idx}: first claimed at {first}, \
                     claimed again at {site}",
                    self.label
                );
            }
        }

        #[track_caller]
        pub fn claim_range(&self, start: usize, end: usize) -> super::RangeClaim<'_> {
            let Mode::Ranges(table) = &self.mode else {
                panic!(
                    "racecheck[{}]: claim_range on a cell-mode audit",
                    self.label
                );
            };
            let site: Site = Location::caller();
            // A violation panic below happens while holding this lock; if
            // the caller catches it (tests do), later claims and releases
            // must keep working, so poisoning is ignored.
            let mut table = table.lock().unwrap_or_else(|e| e.into_inner());
            for live in &table.live {
                // Half-open interval intersection; empty claims (start ==
                // end) overlap nothing.
                if start < end && live.start < live.end && start < live.end && live.start < end {
                    panic!(
                        "racecheck[{}]: range [{start}, {end}) claimed at {site} overlaps \
                         live claim [{}, {}) claimed at {}",
                        self.label, live.start, live.end, live.site
                    );
                }
            }
            let id = table.next_id;
            table.next_id += 1;
            table.live.push(LiveRange {
                id,
                start,
                end,
                site,
            });
            super::RangeClaim { audit: self, id }
        }

        pub(super) fn release(&self, id: u64) {
            if let Mode::Ranges(table) = &self.mode {
                // Runs from guard destructors during unwinding after a
                // violation panic: must not panic again (double panic
                // aborts), so poisoning is ignored here too.
                let mut table = table.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(pos) = table.live.iter().position(|r| r.id == id) {
                    table.live.swap_remove(pos);
                }
            }
        }
    }
}

#[cfg(pfg_racecheck)]
pub use imp::DisjointWriteAudit;

/// A live `[start, end)` claim; dropping it releases the range so later
/// (temporally disjoint) claims may reuse it. Zero-sized when
/// `pfg_racecheck` is off.
#[cfg(pfg_racecheck)]
pub struct RangeClaim<'a> {
    audit: &'a DisjointWriteAudit,
    id: u64,
}

#[cfg(pfg_racecheck)]
impl Drop for RangeClaim<'_> {
    fn drop(&mut self) {
        self.audit.release(self.id);
    }
}

/// Shadow-write registry for one buffer's disjoint-write invariant.
///
/// This is the disabled (`pfg_racecheck` off) build: a zero-sized type
/// whose methods are empty `#[inline]` bodies, so registration sites in
/// the audited kernels compile away entirely. Build with
/// `RUSTFLAGS="--cfg pfg_racecheck"` for the checking version, which
/// panics on any overlap or double write naming both claim sites.
#[cfg(not(pfg_racecheck))]
pub struct DisjointWriteAudit;

#[cfg(not(pfg_racecheck))]
impl DisjointWriteAudit {
    /// Exactly-once registry over `len` flat cells (no-op in this build).
    #[inline(always)]
    pub fn cells(_label: &'static str, _len: usize) -> Self {
        DisjointWriteAudit
    }

    /// Exactly-once registry over an unbounded index space (no-op in this
    /// build).
    #[inline(always)]
    pub fn sparse_cells(_label: &'static str) -> Self {
        DisjointWriteAudit
    }

    /// Live-range registry (no-op in this build).
    #[inline(always)]
    pub fn ranges(_label: &'static str) -> Self {
        DisjointWriteAudit
    }

    /// Marks cell `idx` written (no-op in this build).
    #[inline(always)]
    pub fn write_once(&self, _idx: usize) {}

    /// Claims `[start, end)` until the guard drops (no-op in this build).
    #[inline(always)]
    pub fn claim_range(&self, _start: usize, _end: usize) -> RangeClaim<'_> {
        RangeClaim(std::marker::PhantomData)
    }
}

/// See the racecheck-enabled variant; in this build the guard is a
/// zero-sized no-op.
#[cfg(not(pfg_racecheck))]
pub struct RangeClaim<'a>(std::marker::PhantomData<&'a DisjointWriteAudit>);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_ptr_round_trips_and_copies() {
        let mut v = [1i64, 2, 3];
        let p = SendPtr::new(v.as_mut_ptr());
        let q = p;
        // SAFETY: single-threaded exclusive access to `v`.
        unsafe {
            *p.get() = 7;
            assert_eq!(*q.get(), 7);
        }
        assert_eq!(v[0], 7);
    }

    #[cfg(not(pfg_racecheck))]
    mod disabled {
        use super::*;

        #[test]
        fn zero_sized_when_disabled() {
            // The standing zero-overhead contract: without the cfg, the
            // registry and its guards occupy no memory anywhere they are
            // embedded (pool result slots, sort frames, kernel closures),
            // and the empty inline methods compile away.
            assert_eq!(std::mem::size_of::<DisjointWriteAudit>(), 0);
            assert_eq!(std::mem::size_of::<RangeClaim<'_>>(), 0);
        }

        #[test]
        fn violations_are_ignored_when_disabled() {
            let cells = DisjointWriteAudit::cells("off", 4);
            cells.write_once(1);
            cells.write_once(1); // double write: no panic without the cfg
            let sparse = DisjointWriteAudit::sparse_cells("off");
            sparse.write_once(9);
            sparse.write_once(9); // double write: no panic without the cfg
            let ranges = DisjointWriteAudit::ranges("off");
            let _a = ranges.claim_range(0, 10);
            let _b = ranges.claim_range(5, 15); // overlap: no panic
        }
    }

    #[cfg(pfg_racecheck)]
    mod enabled {
        use super::*;

        fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
            let err = std::panic::catch_unwind(f).expect_err("must panic");
            err.downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
                .expect("panic payload is a string")
        }

        #[test]
        fn double_write_panics_with_both_sites() {
            let audit = DisjointWriteAudit::cells("cells-under-test", 8);
            audit.write_once(3);
            let msg = panic_message(move || audit.write_once(3));
            assert!(msg.contains("cells-under-test"), "{msg}");
            assert!(msg.contains("double write to cell 3"), "{msg}");
            // Both claim sites named, and they are distinct lines of this
            // file.
            let hits = msg.matches("lib.rs").count();
            assert!(hits >= 2, "expected two claim sites in: {msg}");
        }

        #[test]
        fn distinct_cells_do_not_panic() {
            let audit = DisjointWriteAudit::cells("cells", 4);
            for i in 0..4 {
                audit.write_once(i);
            }
        }

        #[test]
        fn sparse_cells_accept_unbounded_distinct_indices() {
            let audit = DisjointWriteAudit::sparse_cells("sparse");
            audit.write_once(0);
            audit.write_once(usize::MAX / 2);
            audit.write_once(7_000_000_000);
        }

        #[test]
        fn sparse_double_write_panics_with_both_sites() {
            let audit = DisjointWriteAudit::sparse_cells("sparse-under-test");
            audit.write_once(41);
            let msg = panic_message(move || audit.write_once(41));
            assert!(msg.contains("sparse-under-test"), "{msg}");
            assert!(msg.contains("double write to cell 41"), "{msg}");
            assert!(
                msg.matches("lib.rs").count() >= 2,
                "expected two claim sites in: {msg}"
            );
        }

        #[test]
        fn overlapping_live_ranges_panic_with_both_sites() {
            let audit = DisjointWriteAudit::ranges("ranges-under-test");
            let _live = audit.claim_range(0, 10);
            let msg = panic_message(|| {
                let _overlap = audit.claim_range(5, 15);
            });
            assert!(msg.contains("ranges-under-test"), "{msg}");
            assert!(msg.contains("[5, 15)"), "{msg}");
            assert!(msg.contains("[0, 10)"), "{msg}");
            assert!(msg.matches("lib.rs").count() >= 2, "{msg}");
        }

        #[test]
        fn released_ranges_can_be_reclaimed() {
            let audit = DisjointWriteAudit::ranges("ranges");
            {
                let _a = audit.claim_range(0, 10);
                let _b = audit.claim_range(10, 20); // touching, not overlapping
            }
            // Both released: the whole span is claimable again.
            let _c = audit.claim_range(0, 20);
        }

        #[test]
        fn empty_ranges_never_overlap() {
            let audit = DisjointWriteAudit::ranges("ranges");
            let _a = audit.claim_range(0, 10);
            let _b = audit.claim_range(5, 5);
        }

        #[test]
        fn concurrent_disjoint_writers_pass() {
            let audit = std::sync::Arc::new(DisjointWriteAudit::cells("concurrent", 4096));
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let audit = std::sync::Arc::clone(&audit);
                    std::thread::spawn(move || {
                        for i in (t..4096).step_by(4) {
                            audit.write_once(i);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
    }
}
