//! Priority concurrent writes (`WRITE_MIN`, `WRITE_MAX`, `WRITE_ADD`).
//!
//! The paper assumes constant-work priority concurrent writes (Table I).
//! [`AtomicF64`] provides them for plain `f64` values via compare-and-swap
//! loops on the underlying bit pattern; [`PriorityCell`] provides them for
//! `(key, payload)` pairs (used for vertex assignments, where the payload is
//! the bubble identifier), backed by a short-critical-section `std` mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// An `f64` cell supporting concurrent `write_min` / `write_max` /
/// `write_add` operations.
///
/// Values are stored as their IEEE-754 bit patterns inside an [`AtomicU64`],
/// and the read–modify–write operations use CAS loops. NaN inputs are
/// ignored by `write_min`/`write_max` (they never win) and are propagated by
/// `write_add` like ordinary float addition.
#[derive(Debug)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Creates a new cell holding `value`.
    #[inline]
    pub fn new(value: f64) -> Self {
        Self {
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Stores `value` unconditionally.
    #[inline]
    pub fn store(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Release);
    }

    /// `WRITE_MIN`: atomically replaces the stored value with `value` if
    /// `value` is strictly smaller. Returns `true` if the write won.
    pub fn write_min(&self, value: f64) -> bool {
        if value.is_nan() {
            return false;
        }
        let mut current = self.bits.load(Ordering::Acquire);
        loop {
            if value >= f64::from_bits(current) {
                return false;
            }
            match self.bits.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// `WRITE_MAX`: atomically replaces the stored value with `value` if
    /// `value` is strictly larger. Returns `true` if the write won.
    pub fn write_max(&self, value: f64) -> bool {
        if value.is_nan() {
            return false;
        }
        let mut current = self.bits.load(Ordering::Acquire);
        loop {
            if value <= f64::from_bits(current) {
                return false;
            }
            match self.bits.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// `WRITE_ADD`: atomically adds `value` to the stored value.
    pub fn write_add(&self, value: f64) {
        let mut current = self.bits.load(Ordering::Acquire);
        loop {
            let next = f64::from_bits(current) + value;
            match self.bits.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

impl Default for AtomicF64 {
    fn default() -> Self {
        Self::new(0.0)
    }
}

impl Clone for AtomicF64 {
    fn clone(&self) -> Self {
        Self::new(self.load())
    }
}

/// A keyed priority-write cell holding a `(key, payload)` pair.
///
/// Used for Algorithm 4's assignment writes: many threads race to write
/// `(score, bubble)` and the pair with the extremal score wins. Ties on the
/// key are broken towards the smaller payload so that results are
/// deterministic regardless of scheduling.
#[derive(Debug)]
pub struct PriorityCell {
    inner: Mutex<(f64, usize)>,
}

impl PriorityCell {
    /// Creates a cell initialised to `(key, payload)`.
    pub fn new(key: f64, payload: usize) -> Self {
        Self {
            inner: Mutex::new((key, payload)),
        }
    }

    /// A cell that any `write_max` will beat.
    pub fn neg_infinity() -> Self {
        Self::new(f64::NEG_INFINITY, usize::MAX)
    }

    /// A cell that any `write_min` will beat.
    pub fn infinity() -> Self {
        Self::new(f64::INFINITY, usize::MAX)
    }

    /// Returns the current `(key, payload)` pair.
    pub fn load(&self) -> (f64, usize) {
        *self.inner.lock().expect("PriorityCell lock poisoned")
    }

    /// Unconditionally stores `(key, payload)`.
    pub fn store(&self, key: f64, payload: usize) {
        *self.inner.lock().expect("PriorityCell lock poisoned") = (key, payload);
    }

    /// `WRITE_MAX` on the key; ties broken towards the smaller payload.
    /// Returns `true` if the write won.
    pub fn write_max(&self, key: f64, payload: usize) -> bool {
        if key.is_nan() {
            return false;
        }
        let mut guard = self.inner.lock().expect("PriorityCell lock poisoned");
        if key > guard.0 || (key == guard.0 && payload < guard.1) {
            *guard = (key, payload);
            true
        } else {
            false
        }
    }

    /// `WRITE_MIN` on the key; ties broken towards the smaller payload.
    /// Returns `true` if the write won.
    pub fn write_min(&self, key: f64, payload: usize) -> bool {
        if key.is_nan() {
            return false;
        }
        let mut guard = self.inner.lock().expect("PriorityCell lock poisoned");
        if key < guard.0 || (key == guard.0 && payload < guard.1) {
            *guard = (key, payload);
            true
        } else {
            false
        }
    }
}

impl Default for PriorityCell {
    fn default() -> Self {
        Self::neg_infinity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn atomic_f64_min_max_add() {
        let cell = AtomicF64::new(5.0);
        assert!(cell.write_min(3.0));
        assert!(!cell.write_min(4.0));
        assert_eq!(cell.load(), 3.0);
        assert!(cell.write_max(10.0));
        assert!(!cell.write_max(2.0));
        assert_eq!(cell.load(), 10.0);
        cell.write_add(-4.0);
        assert_eq!(cell.load(), 6.0);
    }

    #[test]
    fn atomic_f64_ignores_nan_priority_writes() {
        let cell = AtomicF64::new(1.0);
        assert!(!cell.write_min(f64::NAN));
        assert!(!cell.write_max(f64::NAN));
        assert_eq!(cell.load(), 1.0);
    }

    #[test]
    fn concurrent_write_max_finds_global_max() {
        let cell = AtomicF64::new(f64::NEG_INFINITY);
        (0..10_000i64).into_par_iter().for_each(|i| {
            cell.write_max((i % 977) as f64);
        });
        assert_eq!(cell.load(), 976.0);
    }

    #[test]
    fn concurrent_write_add_sums_exactly_for_integers() {
        let cell = AtomicF64::new(0.0);
        (0..5_000i64).into_par_iter().for_each(|_| {
            cell.write_add(1.0);
        });
        assert_eq!(cell.load(), 5_000.0);
    }

    #[test]
    fn priority_cell_tie_breaks_to_smaller_payload() {
        let cell = PriorityCell::neg_infinity();
        assert!(cell.write_max(1.0, 7));
        assert!(cell.write_max(1.0, 3));
        assert!(!cell.write_max(1.0, 9));
        assert_eq!(cell.load(), (1.0, 3));
    }

    #[test]
    fn priority_cell_concurrent_min_is_deterministic() {
        let cell = PriorityCell::infinity();
        (0..4_096usize).into_par_iter().for_each(|i| {
            cell.write_min((i % 64) as f64, i);
        });
        // The minimum key is 0.0 and the smallest payload with key 0 is 0.
        assert_eq!(cell.load(), (0.0, 0));
    }
}
