//! Shared parsing for the workspace's checked-in allow files.
//!
//! Two gates consume hand-edited prefix allowlists: the `pfg_lint` static
//! analyzer (`lint.allow`, rule-scoped entries) and the `bench_diff` perf
//! gate (`bench.allow`, plain series-key prefixes). Both files share one
//! line discipline — `#` starts a comment, surrounding whitespace is
//! noise, blank lines are skipped, and matching is by prefix — which used
//! to be implemented twice. This module is the single copy; the two
//! consumers keep their own file formats and load-error semantics
//! (`pfg_lint` treats a missing file as empty, `bench_diff` fails loudly)
//! as thin wrappers over [`AllowFile`].

/// One parsed allow entry: an optional scope (a lint rule id; `None`
/// matches any scope, written `*` in the scoped format) plus a path or
/// key prefix.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Scope the entry applies to, `None` for all scopes.
    pub scope: Option<String>,
    /// The path/key prefix that selects what the entry allows.
    pub prefix: String,
}

/// A parsed allow file: an ordered list of [`AllowEntry`]s.
#[derive(Debug, Clone, Default)]
pub struct AllowFile {
    entries: Vec<AllowEntry>,
}

/// The meaningful lines of allow-file text: comments stripped (`#` to end
/// of line), whitespace trimmed, blanks dropped.
pub fn entry_lines(text: &str) -> impl Iterator<Item = &str> {
    text.lines()
        .map(|raw| raw.split('#').next().unwrap_or("").trim())
        .filter(|line| !line.is_empty())
}

impl AllowFile {
    /// Parses the two-field scoped format (`lint.allow`):
    ///
    /// ```text
    /// <rule-id> <path-prefix>   # why this exemption is sound
    /// ```
    ///
    /// A `*` rule scopes the entry to every rule. Lines with fewer than
    /// two fields are ignored (the file can lead its parser); fields past
    /// the second are too.
    pub fn parse_scoped(text: &str) -> Self {
        let mut entries = Vec::new();
        for line in entry_lines(text) {
            let mut parts = line.split_whitespace();
            if let (Some(scope), Some(prefix)) = (parts.next(), parts.next()) {
                entries.push(AllowEntry {
                    scope: (scope != "*").then(|| scope.to_string()),
                    prefix: prefix.to_string(),
                });
            }
        }
        AllowFile { entries }
    }

    /// Parses the one-field format (`bench.allow`): a bare prefix per
    /// line, applying to every scope.
    pub fn parse_prefixes(text: &str) -> Self {
        AllowFile {
            entries: entry_lines(text)
                .map(|line| AllowEntry {
                    scope: None,
                    prefix: line.to_string(),
                })
                .collect(),
        }
    }

    /// Whether `key` is allowed in `scope`: some entry's prefix starts
    /// `key` and that entry is unscoped or scoped to exactly `scope`
    /// (`scope == None` asks only for an unscoped-or-any match by prefix).
    pub fn allows(&self, scope: Option<&str>, key: &str) -> bool {
        self.entries.iter().any(|e| {
            key.starts_with(e.prefix.as_str())
                && match (&e.scope, scope) {
                    (None, _) => true,
                    (Some(es), Some(s)) => es == s,
                    (Some(_), None) => false,
                }
        })
    }

    /// Number of entries (for reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file parsed to no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_lines_strip_comments_and_blanks() {
        let lines: Vec<&str> =
            entry_lines("# header\n  a/b  # trailing\n\n   \nc/d\n# only comment\n").collect();
        assert_eq!(lines, vec!["a/b", "c/d"]);
    }

    #[test]
    fn scoped_format_matches_by_rule_and_prefix() {
        let f = AllowFile::parse_scoped(
            "# header\nno-wall-clock crates/bench/  # timing is the product\n\n* crates/x/\nmalformed\n",
        );
        assert_eq!(f.len(), 2);
        assert!(f.allows(Some("no-wall-clock"), "crates/bench/src/methods.rs"));
        assert!(!f.allows(Some("no-wall-clock"), "crates/core/src/lib.rs"));
        assert!(!f.allows(Some("no-hash-iteration"), "crates/bench/src/methods.rs"));
        assert!(f.allows(Some("anything"), "crates/x/y.rs"));
        // A scope-less query only matches unscoped entries.
        assert!(f.allows(None, "crates/x/y.rs"));
        assert!(!f.allows(None, "crates/bench/src/methods.rs"));
    }

    #[test]
    fn prefix_format_ignores_scope() {
        let f = AllowFile::parse_prefixes("# noisy series\nend_to_end/t48\n");
        assert_eq!(f.len(), 1);
        assert!(f.allows(None, "end_to_end/t48_case7"));
        assert!(f.allows(Some("any-rule"), "end_to_end/t48_case7"));
        assert!(!f.allows(None, "construction/t48"));
        assert!(AllowFile::default().is_empty());
    }
}
