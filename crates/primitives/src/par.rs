//! Parallel filter, sort, maximum and reduction helpers (Table I).
//!
//! Thin, well-tested wrappers over rayon that match the interfaces used in
//! the paper's pseudocode. The rayon adapters are lazy and fused, so each
//! helper is a single parallel pass on the persistent pool; the helpers
//! additionally fall back to plain sequential execution for small inputs,
//! where even one pool round trip would dominate the work.

use rayon::prelude::*;
use std::cmp::Ordering;

/// Below this many elements the primitives run sequentially; parallel
/// scheduling overhead outweighs the work for smaller inputs.
pub const SEQ_THRESHOLD: usize = 2048;

/// Parallel filter: returns the elements of `items` for which `pred` holds,
/// preserving their input order (as required by the paper's `Filter`).
/// The filter and the clone fuse into one parallel pass.
pub fn par_filter<T, F>(items: &[T], pred: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    if items.len() < SEQ_THRESHOLD {
        items.iter().filter(|x| pred(x)).cloned().collect()
    } else {
        items.par_iter().filter(|x| pred(x)).cloned().collect()
    }
}

/// Parallel stable sort by a comparison function. Above the threshold this
/// delegates to rayon's `par_sort_by` (under the shim, a buffer-based
/// parallel merge sort that itself uses std sorts below ~4k elements or on
/// a single-threaded pool). Elements only need `T: Send`, as with real
/// rayon.
pub fn par_sort_by<T, F>(items: &mut [T], cmp: F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Send + Sync,
{
    if items.len() < SEQ_THRESHOLD {
        items.sort_by(cmp);
    } else {
        items.par_sort_by(cmp);
    }
}

/// Parallel unstable sort by a comparison function. Above the threshold
/// this delegates to rayon's `par_sort_unstable_by` (under the shim, the
/// same buffer-based merge sort with unstable leaf sorts and the same
/// ~4k/single-thread fallback). Elements only need `T: Send`.
pub fn par_sort_unstable_by<T, F>(items: &mut [T], cmp: F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Send + Sync,
{
    if items.len() < SEQ_THRESHOLD {
        items.sort_unstable_by(cmp);
    } else {
        items.par_sort_unstable_by(cmp);
    }
}

/// Parallel maximum: returns the index of the element with the maximal key,
/// breaking ties towards the smaller index so the result is deterministic.
/// Returns `None` for an empty slice. `NaN` keys never win.
pub fn par_max_index<T, F>(items: &[T], key: F) -> Option<usize>
where
    T: Sync,
    F: Fn(&T) -> f64 + Send + Sync,
{
    extremal_index(items, key, |candidate, best| candidate > best)
}

/// Parallel minimum: index of the element with the minimal key, ties broken
/// towards the smaller index. `NaN` keys never win.
pub fn par_min_index<T, F>(items: &[T], key: F) -> Option<usize>
where
    T: Sync,
    F: Fn(&T) -> f64 + Send + Sync,
{
    extremal_index(items, key, |candidate, best| candidate < best)
}

fn extremal_index<T, F, B>(items: &[T], key: F, better: B) -> Option<usize>
where
    T: Sync,
    F: Fn(&T) -> f64 + Send + Sync,
    B: Fn(f64, f64) -> bool + Send + Sync,
{
    if items.is_empty() {
        return None;
    }
    let fold = |acc: Option<(usize, f64)>, (i, item): (usize, &T)| -> Option<(usize, f64)> {
        let k = key(item);
        if k.is_nan() {
            return acc;
        }
        match acc {
            None => Some((i, k)),
            Some((bi, bk)) => {
                if better(k, bk) || (k == bk && i < bi) {
                    Some((i, k))
                } else {
                    Some((bi, bk))
                }
            }
        }
    };
    let combine = |a: Option<(usize, f64)>, b: Option<(usize, f64)>| match (a, b) {
        (None, x) | (x, None) => x,
        (Some((ai, ak)), Some((bi, bk))) => {
            if better(bk, ak) || (bk == ak && bi < ai) {
                Some((bi, bk))
            } else {
                Some((ai, ak))
            }
        }
    };
    let best = if items.len() < SEQ_THRESHOLD {
        items.iter().enumerate().fold(None, fold)
    } else {
        items
            .par_iter()
            .enumerate()
            .fold(|| None, fold)
            .reduce(|| None, combine)
    };
    best.map(|(i, _)| i)
}

/// Parallel maximum by an arbitrary totally-ordered key.
pub fn par_max_by_key<T, K, F>(items: &[T], key: F) -> Option<&T>
where
    T: Sync,
    K: Ord + Send,
    F: Fn(&T) -> K + Send + Sync,
{
    if items.is_empty() {
        None
    } else if items.len() < SEQ_THRESHOLD {
        items.iter().max_by_key(|x| key(x))
    } else {
        items.par_iter().max_by_key(|x| key(x))
    }
}

/// Parallel sum of a slice of `f64` values.
pub fn par_sum_f64(items: &[f64]) -> f64 {
    if items.len() < SEQ_THRESHOLD {
        items.iter().sum()
    } else {
        items.par_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_preserves_order() {
        let v: Vec<u32> = (0..10_000).collect();
        let filtered = par_filter(&v, |x| x % 7 == 0);
        let expected: Vec<u32> = (0..10_000).filter(|x| x % 7 == 0).collect();
        assert_eq!(filtered, expected);
    }

    #[test]
    fn max_index_ties_break_to_smallest_index() {
        let v = vec![1.0, 5.0, 5.0, 2.0];
        assert_eq!(par_max_index(&v, |x| *x), Some(1));
        assert_eq!(par_min_index(&v, |x| *x), Some(0));
    }

    #[test]
    fn max_index_ignores_nan() {
        let v = vec![f64::NAN, 2.0, f64::NAN, 3.0];
        assert_eq!(par_max_index(&v, |x| *x), Some(3));
        assert_eq!(par_min_index(&v, |x| *x), Some(1));
    }

    #[test]
    fn max_index_empty_and_all_nan() {
        let empty: Vec<f64> = vec![];
        assert_eq!(par_max_index(&empty, |x| *x), None);
        let all_nan = vec![f64::NAN; 10];
        assert_eq!(par_max_index(&all_nan, |x| *x), None);
    }

    #[test]
    fn sort_matches_std_sort_large() {
        let mut v: Vec<i64> = (0..50_000).map(|i| (i * 2654435761_i64) % 10_007).collect();
        let mut expected = v.clone();
        expected.sort();
        par_sort_by(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, expected);
    }

    #[test]
    fn sum_matches_sequential() {
        let v: Vec<f64> = (0..100_000).map(|i| (i % 13) as f64).collect();
        let seq: f64 = v.iter().sum();
        assert!((par_sum_f64(&v) - seq).abs() < 1e-6);
    }

    #[test]
    fn max_by_key_matches_std() {
        let v: Vec<u64> = (0..30_000).map(|i| (i * 48271) % 65_537).collect();
        assert_eq!(par_max_by_key(&v, |x| *x).copied(), v.iter().max().copied());
    }
}
