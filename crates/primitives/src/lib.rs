//! Parallel primitives used throughout the parallel filtered-graph algorithms.
//!
//! This crate implements the primitives of Table I of *Parallel Filtered
//! Graphs for Hierarchical Clustering* (Yu & Shun, ICDE 2023):
//!
//! * [`par_filter`] — parallel filter preserving input order,
//! * [`par_sort_by`] / [`par_sort_unstable_by`] — parallel comparison sorts,
//! * [`par_max_by_key`] / [`par_max_index`] — parallel maximum,
//! * [`AtomicF64`] with [`AtomicF64::write_min`], [`AtomicF64::write_max`],
//!   and [`AtomicF64::write_add`] — the `WRITE_MIN` / `WRITE_MAX` /
//!   `WRITE_ADD` priority concurrent writes,
//! * [`PriorityCell`] — a keyed priority write cell used for the vertex
//!   assignment writes of Algorithm 4 (e.g. `WRITE_MAX(v.g, (χ, b))`).
//!
//! All parallel operations are built on rayon's fork–join API, which
//! matches the work–span model used in the paper. Under the offline shim
//! this means a persistent worker pool with lazily fused adapters (one
//! fork–join round per primitive call, no per-call thread spawning); with
//! registry rayon it is the randomized work-stealing scheduler — the
//! primitives are source-compatible with both.

pub mod allow;
pub mod atomic;
pub mod par;

pub use allow::{AllowEntry, AllowFile};
pub use atomic::{AtomicF64, PriorityCell};
pub use par::{
    par_filter, par_max_by_key, par_max_index, par_min_index, par_sort_by, par_sort_unstable_by,
    par_sum_f64,
};

/// Re-export of rayon so downstream crates can build thread pools for the
/// scalability experiments without an extra direct dependency.
/// `rayon::ThreadPool::install` scopes all parallel work of a closure —
/// including the primitives in this crate — onto a caller-owned pool.
pub use rayon;

/// Re-export of the shadow-write audit crate: [`SendPtr`] is the one
/// shared raw-pointer wrapper for disjoint-write parallel kernels, and
/// [`DisjointWriteAudit`] is the registry those kernels declare their
/// claimed ranges/cells to (checked under `--cfg pfg_racecheck`, zero-cost
/// otherwise). The types live in the dependency-free `pfg_audit` crate so
/// the rayon shim can use them too (this crate depends on the shim, so
/// they cannot be defined here), but downstream crates should reach them
/// through this re-export.
pub use pfg_audit::{DisjointWriteAudit, RangeClaim, SendPtr};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_reexports() {
        let v = vec![3_i64, 1, 4, 1, 5];
        let evens = par_filter(&v, |x| *x % 2 == 0);
        assert_eq!(evens, vec![4]);
        let cell = AtomicF64::new(0.0);
        cell.write_add(1.5);
        assert!((cell.load() - 1.5).abs() < 1e-12);
    }
}
