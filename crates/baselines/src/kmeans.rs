//! k-means clustering: k-means++ seeding, scalable k-means|| seeding, and
//! parallel Lloyd iterations (the K-MEANS baseline of §VII).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Seeding strategy for the initial centroids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seeding {
    /// Classic k-means++ (one centroid sampled per round).
    PlusPlus,
    /// Scalable k-means|| (Bahmani et al.): oversample `2k` candidates per
    /// round for a few rounds, then reduce with weighted k-means++.
    Scalable,
}

/// Configuration of the k-means baseline.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the relative decrease of the objective.
    pub tolerance: f64,
    /// Seeding strategy.
    pub seeding: Seeding,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 8,
            max_iterations: 100,
            tolerance: 1e-6,
            seeding: Seeding::Scalable,
            seed: 1,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster label per point (in `0..k`).
    pub labels: Vec<usize>,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

/// Runs k-means on the given points.
///
/// # Panics
/// Panics if `points` is empty, dimensions are inconsistent, or `k == 0`.
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> KMeansResult {
    assert!(!points.is_empty(), "k-means needs at least one point");
    assert!(config.k >= 1, "k must be at least 1");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent dimensions"
    );
    let k = config.k.min(points.len());
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut centroids = match config.seeding {
        Seeding::PlusPlus => seed_plus_plus(points, k, &mut rng),
        Seeding::Scalable => seed_scalable(points, k, &mut rng),
    };
    // Degenerate inputs (e.g. many identical points) can leave the seeding
    // with fewer than k candidates; pad with random points so the Lloyd
    // loop always works with k centroids.
    while centroids.len() < k {
        centroids.push(points[rng.gen_range(0..points.len())].clone());
    }

    let mut labels = vec![0usize; points.len()];
    let mut previous_inertia = f64::INFINITY;
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;
    for iteration in 0..config.max_iterations {
        iterations = iteration + 1;
        // Assignment step (parallel over points).
        let assignment: Vec<(usize, f64)> = points
            .par_iter()
            .map(|p| nearest_centroid(p, &centroids))
            .collect();
        inertia = assignment.par_iter().map(|&(_, d)| d).sum();
        for (i, &(c, _)) in assignment.iter().enumerate() {
            labels[i] = c;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &(c, _)) in points.iter().zip(assignment.iter()) {
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(p.iter()) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the point farthest from its
                // centroid, a standard k-means repair step.
                let (far, _) = assignment
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                    .expect("points exist");
                centroids[c] = points[far].clone();
            } else {
                for (ci, s) in centroids[c].iter_mut().zip(sums[c].iter()) {
                    *ci = s / counts[c] as f64;
                }
            }
        }
        if (previous_inertia - inertia).abs() <= config.tolerance * previous_inertia.max(1e-12) {
            break;
        }
        previous_inertia = inertia;
    }
    KMeansResult {
        labels,
        centroids,
        inertia,
        iterations,
    }
}

/// Squared Euclidean distance.
fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

/// Index of the nearest centroid and the squared distance to it.
fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_dist = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = squared_distance(point, centroid);
        if d < best_dist {
            best = c;
            best_dist = d;
        }
    }
    (best, best_dist)
}

/// Classic k-means++ seeding.
fn seed_plus_plus(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let first = rng.gen_range(0..points.len());
    let mut centroids = vec![points[first].clone()];
    let mut distances: Vec<f64> = points
        .par_iter()
        .map(|p| squared_distance(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = distances.iter().sum();
        let choice = if total <= 0.0 {
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in distances.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[choice].clone());
        let newest = centroids.last().expect("just pushed");
        distances = points
            .par_iter()
            .zip(distances.par_iter())
            .map(|(p, &d)| d.min(squared_distance(p, newest)))
            .collect();
    }
    centroids
}

/// Scalable k-means|| seeding (Bahmani et al. 2012): a few oversampling
/// rounds followed by a weighted k-means++ reduction of the candidate set.
fn seed_scalable(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let oversample = (2 * k).max(2);
    let rounds = 5usize;
    let first = rng.gen_range(0..points.len());
    let mut candidates: Vec<usize> = vec![first];
    let mut distances: Vec<f64> = points
        .par_iter()
        .map(|p| squared_distance(p, &points[first]))
        .collect();
    for _ in 0..rounds {
        let total: f64 = distances.iter().sum();
        if total <= 0.0 {
            break;
        }
        let picks: Vec<usize> = (0..points.len())
            .filter(|&i| {
                let p = (oversample as f64 * distances[i] / total).min(1.0);
                rng.gen_bool(p)
            })
            .collect();
        if picks.is_empty() {
            continue;
        }
        for &i in &picks {
            candidates.push(i);
        }
        distances = points
            .par_iter()
            .enumerate()
            .map(|(i, p)| {
                let mut d = distances[i];
                for &c in &picks {
                    d = d.min(squared_distance(p, &points[c]));
                }
                d
            })
            .collect();
    }
    candidates.sort_unstable();
    candidates.dedup();
    // Weight each candidate by the number of points closest to it, then run
    // weighted k-means++ over the candidates.
    let candidate_points: Vec<Vec<f64>> = candidates.iter().map(|&i| points[i].clone()).collect();
    let closest: Vec<usize> = points
        .par_iter()
        .map(|p| nearest_centroid(p, &candidate_points).0)
        .collect();
    let mut weights = vec![0.0f64; candidate_points.len()];
    for &c in &closest {
        weights[c] += 1.0;
    }
    weighted_plus_plus(&candidate_points, &weights, k, rng)
}

/// Weighted k-means++ over a (small) candidate set.
fn weighted_plus_plus(
    points: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    let k = k.min(points.len());
    let total_weight: f64 = weights.iter().sum();
    let mut target = rng.gen_range(0.0..total_weight.max(1e-12));
    let mut first = 0;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            first = i;
            break;
        }
        target -= w;
    }
    let mut centroids = vec![points[first].clone()];
    let mut distances: Vec<f64> = points
        .iter()
        .map(|p| squared_distance(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = distances
            .iter()
            .zip(weights.iter())
            .map(|(&d, &w)| d * w)
            .sum();
        let choice = if total <= 0.0 {
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for i in 0..points.len() {
                let mass = distances[i] * weights[i];
                if target < mass {
                    chosen = i;
                    break;
                }
                target -= mass;
            }
            chosen
        };
        centroids.push(points[choice].clone());
        let newest = centroids.last().expect("just pushed");
        for (i, p) in points.iter().enumerate() {
            distances[i] = distances[i].min(squared_distance(p, newest));
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs.
    fn blobs(per_cluster: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..per_cluster {
                points.push(vec![
                    center[0] + rng.gen_range(-1.0..1.0),
                    center[1] + rng.gen_range(-1.0..1.0),
                ]);
                labels.push(c);
            }
        }
        (points, labels)
    }

    fn pair_agreement(a: &[usize], b: &[usize]) -> f64 {
        let n = a.len();
        let mut agree = 0;
        let mut total = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if (a[i] == a[j]) == (b[i] == b[j]) {
                    agree += 1;
                }
                total += 1;
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn recovers_well_separated_blobs_with_both_seedings() {
        let (points, truth) = blobs(30, 3);
        for seeding in [Seeding::PlusPlus, Seeding::Scalable] {
            let result = kmeans(
                &points,
                &KMeansConfig {
                    k: 3,
                    seeding,
                    seed: 7,
                    ..KMeansConfig::default()
                },
            );
            assert!(pair_agreement(&truth, &result.labels) > 0.95, "{seeding:?}");
            assert_eq!(result.centroids.len(), 3);
            assert!(result.inertia.is_finite());
            assert!(result.iterations >= 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (points, _) = blobs(20, 5);
        let config = KMeansConfig {
            k: 3,
            seed: 11,
            ..KMeansConfig::default()
        };
        let a = kmeans(&points, &config);
        let b = kmeans(&points, &config);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let points = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 10,
                ..KMeansConfig::default()
            },
        );
        assert!(result.centroids.len() <= 2);
        assert_eq!(result.labels.len(), 2);
    }

    #[test]
    fn k_equals_one_puts_everything_together() {
        let (points, _) = blobs(10, 1);
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 1,
                ..KMeansConfig::default()
            },
        );
        assert!(result.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (points, _) = blobs(25, 9);
        let inertia = |k: usize| {
            kmeans(
                &points,
                &KMeansConfig {
                    k,
                    seed: 3,
                    ..KMeansConfig::default()
                },
            )
            .inertia
        };
        assert!(inertia(3) < inertia(1));
        assert!(inertia(6) <= inertia(3) + 1e-9);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let points = vec![vec![1.0, 2.0]; 8];
        let result = kmeans(
            &points,
            &KMeansConfig {
                k: 3,
                ..KMeansConfig::default()
            },
        );
        assert_eq!(result.labels.len(), 8);
        assert!(result.inertia.abs() < 1e-18);
    }
}
