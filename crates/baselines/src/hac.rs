//! Hierarchical agglomerative clustering (HAC) with the nearest-neighbor
//! chain algorithm.
//!
//! These are the COMP (complete-linkage) and AVG (average-linkage)
//! baselines of §VII, modelled after the parallel ParChain implementation
//! the paper uses: the O(n²) distance matrix is built in parallel and the
//! agglomeration itself uses the nearest-neighbor-chain algorithm, which is
//! exact for the reducible linkages implemented here.

use pfg_core::Dendrogram;
use pfg_graph::SymmetricMatrix;

/// The linkage function used to measure the distance between clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Maximum pairwise distance (the COMP baseline and the DBHT
    /// subroutine).
    Complete,
    /// Unweighted average pairwise distance (UPGMA; the AVG baseline).
    Average,
    /// Minimum pairwise distance.
    Single,
}

impl Linkage {
    /// Lance–Williams update: distance from the merge of clusters `a` and
    /// `b` (with sizes `size_a`, `size_b`) to another cluster `k`.
    fn update(&self, d_ak: f64, d_bk: f64, size_a: usize, size_b: usize) -> f64 {
        match self {
            Linkage::Complete => d_ak.max(d_bk),
            Linkage::Single => d_ak.min(d_bk),
            Linkage::Average => {
                let (sa, sb) = (size_a as f64, size_b as f64);
                (sa * d_ak + sb * d_bk) / (sa + sb)
            }
        }
    }
}

/// Runs hierarchical agglomerative clustering over a dissimilarity matrix,
/// returning the dendrogram whose merge heights are the linkage distances.
///
/// The input matrix is copied into a working distance matrix; the
/// agglomeration is O(n²) time and memory.
pub fn hac(dissimilarity: &SymmetricMatrix, linkage: Linkage) -> Dendrogram {
    let n = dissimilarity.n();
    let mut dendrogram = Dendrogram::new(n);
    if n <= 1 {
        return dendrogram;
    }
    // Working distance matrix between active clusters (indexed by slot).
    let mut dist: Vec<f64> = dissimilarity.as_slice().to_vec();
    let mut active: Vec<bool> = vec![true; n];
    let mut node_of_slot: Vec<usize> = (0..n).collect();
    let mut size_of_slot: Vec<usize> = vec![1; n];
    let mut remaining = n;
    let mut chain: Vec<usize> = Vec::new();

    while remaining > 1 {
        if chain.is_empty() {
            let start = active.iter().position(|&a| a).expect("clusters remain");
            chain.push(start);
        }
        let current = *chain.last().expect("chain non-empty");
        let prev = if chain.len() >= 2 {
            Some(chain[chain.len() - 2])
        } else {
            None
        };
        // Nearest active neighbor, preferring the previous chain element on
        // ties (required for NN-chain termination) and then the smaller slot
        // index (for determinism).
        let mut nearest = usize::MAX;
        let mut nearest_dist = f64::INFINITY;
        for j in 0..n {
            if !active[j] || j == current {
                continue;
            }
            let d = dist[current * n + j];
            let better = d < nearest_dist
                || (d == nearest_dist && Some(j) == prev)
                || (d == nearest_dist && nearest != prev.unwrap_or(usize::MAX) && j < nearest);
            if better {
                nearest = j;
                nearest_dist = d;
            }
        }
        if Some(nearest) == prev {
            chain.pop();
            chain.pop();
            let a = current.min(nearest);
            let b = current.max(nearest);
            let node = dendrogram.merge(node_of_slot[a], node_of_slot[b], nearest_dist);
            // Lance–Williams update into slot a.
            for k in 0..n {
                if active[k] && k != a && k != b {
                    let d = linkage.update(
                        dist[a * n + k],
                        dist[b * n + k],
                        size_of_slot[a],
                        size_of_slot[b],
                    );
                    dist[a * n + k] = d;
                    dist[k * n + a] = d;
                }
            }
            node_of_slot[a] = node;
            size_of_slot[a] += size_of_slot[b];
            active[b] = false;
            remaining -= 1;
        } else {
            chain.push(nearest);
        }
    }
    dendrogram
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance matrix for points on a line at the given positions.
    fn line_points(positions: &[f64]) -> SymmetricMatrix {
        SymmetricMatrix::from_fn(positions.len(), |i, j| (positions[i] - positions[j]).abs())
    }

    #[test]
    fn two_tight_pairs_merge_first() {
        let d = line_points(&[0.0, 1.0, 10.0, 11.5]);
        for linkage in [Linkage::Complete, Linkage::Average, Linkage::Single] {
            let dend = hac(&d, linkage);
            let labels = dend.cut_to_clusters(2);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[2], labels[3]);
            assert_ne!(labels[0], labels[2]);
        }
    }

    #[test]
    fn complete_linkage_root_height_is_diameter() {
        let d = line_points(&[0.0, 1.0, 4.0, 9.0]);
        let dend = hac(&d, Linkage::Complete);
        let root = dend.root().unwrap();
        assert!((dend.node(root).height - 9.0).abs() < 1e-12);
    }

    #[test]
    fn single_linkage_root_height_is_largest_gap() {
        let d = line_points(&[0.0, 1.0, 4.0, 9.0]);
        let dend = hac(&d, Linkage::Single);
        let root = dend.root().unwrap();
        // Single linkage merges along the chain; the last merge bridges the
        // largest nearest-neighbor gap (9 - 4 = 5).
        assert!((dend.node(root).height - 5.0).abs() < 1e-12);
    }

    #[test]
    fn average_linkage_heights_are_monotone() {
        let d = line_points(&[0.0, 0.5, 0.6, 5.0, 5.2, 9.9, 10.0, 10.4]);
        let dend = hac(&d, Linkage::Average);
        assert!(dend.is_monotone());
        assert_eq!(dend.root().map(|r| dend.node(r).size), Some(8));
    }

    #[test]
    fn handles_trivial_inputs() {
        let d = SymmetricMatrix::zeros(1);
        let dend = hac(&d, Linkage::Complete);
        assert_eq!(dend.num_leaves(), 1);
        assert_eq!(dend.root(), Some(0));
        let d0 = SymmetricMatrix::zeros(0);
        let dend0 = hac(&d0, Linkage::Complete);
        assert_eq!(dend0.num_leaves(), 0);
    }

    #[test]
    fn all_equal_distances_still_produce_full_dendrogram() {
        let mut d = SymmetricMatrix::filled(6, 1.0);
        for i in 0..6 {
            d.set(i, i, 0.0);
        }
        let dend = hac(&d, Linkage::Average);
        assert!(dend.root().is_some());
        assert_eq!(dend.cut_to_clusters(1).len(), 6);
        assert!(dend.is_monotone());
    }

    #[test]
    fn complete_matches_bruteforce_on_small_instance() {
        // Brute-force complete linkage on 5 points and compare the merge
        // height sequence.
        let positions = [0.0, 2.0, 3.0, 7.0, 11.0];
        let d = line_points(&positions);
        let dend = hac(&d, Linkage::Complete);
        let mut heights: Vec<f64> = dend
            .internal_nodes()
            .map(|id| dend.node(id).height)
            .collect();
        heights.sort_by(f64::total_cmp);
        // Expected merges: (1,2)@1, (0,{1,2})@3, (3,4)@4, then all@11.
        let expected = [1.0, 3.0, 4.0, 11.0];
        for (h, e) in heights.iter().zip(expected.iter()) {
            assert!((h - e).abs() < 1e-12, "heights {heights:?}");
        }
    }
}
