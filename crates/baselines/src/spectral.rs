//! Spectral embedding via a k-nearest-neighbor affinity graph (the
//! preprocessing step of the K-MEANS-S baseline, §VII, and of the stock
//! experiment).
//!
//! The embedding follows the standard recipe: build a symmetrised β-nearest
//! -neighbor affinity graph, form the normalised adjacency
//! `N = D^{-1/2} A D^{-1/2}`, and compute its leading eigenvectors with
//! orthogonal (subspace) iteration. The rows of the eigenvector matrix,
//! skipping the trivial leading component, are the embedded coordinates.
//! Figure 9's β-sensitivity experiment sweeps the `neighbors` parameter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Configuration of the spectral embedding.
#[derive(Debug, Clone, Copy)]
pub struct SpectralConfig {
    /// Number of nearest neighbors β used to build the affinity graph.
    pub neighbors: usize,
    /// Number of embedding dimensions (the paper projects onto the number
    /// of ground-truth clusters).
    pub dimensions: usize,
    /// Power-iteration steps for the eigenvector computation.
    pub iterations: usize,
    /// RNG seed for the initial subspace.
    pub seed: u64,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        Self {
            neighbors: 10,
            dimensions: 2,
            iterations: 120,
            seed: 1,
        }
    }
}

/// Computes the spectral embedding of the given points. Returns one
/// `dimensions`-length coordinate vector per input point.
///
/// # Panics
/// Panics if `points` is empty or dimensions are inconsistent.
pub fn spectral_embedding(points: &[Vec<f64>], config: &SpectralConfig) -> Vec<Vec<f64>> {
    assert!(
        !points.is_empty(),
        "spectral embedding needs at least one point"
    );
    let n = points.len();
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent dimensions"
    );
    let k = config.neighbors.clamp(1, n.saturating_sub(1).max(1));
    let dims = config.dimensions.max(1).min(n);

    // ---- β-nearest-neighbor affinity graph (symmetrised, unit weights) ----
    let neighbor_lists: Vec<Vec<usize>> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut dists: Vec<(f64, usize)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (squared_distance(&points[i], &points[j]), j))
                .collect();
            dists.sort_by(|a, b| a.0.total_cmp(&b.0));
            dists.into_iter().take(k).map(|(_, j)| j).collect()
        })
        .collect();
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, neighbors) in neighbor_lists.iter().enumerate() {
        for &j in neighbors {
            if !adjacency[i].contains(&j) {
                adjacency[i].push(j);
            }
            if !adjacency[j].contains(&i) {
                adjacency[j].push(i);
            }
        }
    }
    let degree: Vec<f64> = adjacency.iter().map(|a| a.len().max(1) as f64).collect();
    let inv_sqrt_degree: Vec<f64> = degree.iter().map(|&d| 1.0 / d.sqrt()).collect();

    // ---- Orthogonal iteration on N = D^{-1/2} A D^{-1/2} ------------------
    // Compute dims + 1 vectors and drop the leading (trivial) one.
    let subspace = dims + 1;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut basis: Vec<Vec<f64>> = (0..subspace)
        .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    orthonormalise(&mut basis);
    for _ in 0..config.iterations {
        let next: Vec<Vec<f64>> = basis
            .par_iter()
            .map(|v| normalized_adjacency_times(v, &adjacency, &inv_sqrt_degree))
            .collect();
        basis = next;
        orthonormalise(&mut basis);
    }

    // Rows of the eigenvector matrix (skipping the first, trivial vector).
    (0..n)
        .map(|i| (1..subspace).map(|c| basis[c][i]).collect())
        .collect()
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

/// `y = D^{-1/2} A D^{-1/2} x` for the unit-weight adjacency lists.
fn normalized_adjacency_times(
    x: &[f64],
    adjacency: &[Vec<usize>],
    inv_sqrt_degree: &[f64],
) -> Vec<f64> {
    let n = x.len();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = 0.0;
        for &j in &adjacency[i] {
            sum += inv_sqrt_degree[j] * x[j];
        }
        y[i] = inv_sqrt_degree[i] * sum;
    }
    y
}

/// Gram–Schmidt orthonormalisation of the rows of `basis`.
fn orthonormalise(basis: &mut [Vec<f64>]) {
    let count = basis.len();
    for i in 0..count {
        for j in 0..i {
            let dot: f64 = basis[i]
                .iter()
                .zip(basis[j].iter())
                .map(|(&a, &b)| a * b)
                .sum();
            let (head, tail) = basis.split_at_mut(i);
            let vj = &head[j];
            for (a, &b) in tail[0].iter_mut().zip(vj.iter()) {
                *a -= dot * b;
            }
        }
        let norm: f64 = basis[i].iter().map(|&a| a * a).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for a in basis[i].iter_mut() {
                *a /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansConfig};

    fn two_rings(per_ring: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for (c, radius) in [1.0, 5.0].iter().enumerate() {
            for _ in 0..per_ring {
                let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                points.push(vec![
                    radius * angle.cos() + rng.gen_range(-0.1..0.1),
                    radius * angle.sin() + rng.gen_range(-0.1..0.1),
                ]);
                labels.push(c);
            }
        }
        (points, labels)
    }

    fn pair_agreement(a: &[usize], b: &[usize]) -> f64 {
        let n = a.len();
        let mut agree = 0;
        let mut total = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if (a[i] == a[j]) == (b[i] == b[j]) {
                    agree += 1;
                }
                total += 1;
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn embedding_has_requested_shape() {
        let (points, _) = two_rings(40, 1);
        let emb = spectral_embedding(
            &points,
            &SpectralConfig {
                neighbors: 8,
                dimensions: 3,
                ..SpectralConfig::default()
            },
        );
        assert_eq!(emb.len(), points.len());
        assert!(emb.iter().all(|e| e.len() == 3));
        assert!(emb.iter().flatten().all(|x| x.is_finite()));
    }

    #[test]
    fn embedding_plus_kmeans_separates_concentric_rings() {
        // Plain k-means cannot separate concentric rings; after the spectral
        // embedding it can — this is exactly why K-MEANS-S beats K-MEANS on
        // several data sets in Figure 8.
        let (points, truth) = two_rings(60, 3);
        // Ring graphs mix slowly (the spectral gap of a 60-cycle is tiny),
        // so give the subspace iteration enough steps to damp the
        // within-ring eigenvectors, and embed into a single dimension: the
        // first non-trivial eigenvector is constant on each ring, which is
        // exactly the separation plain k-means cannot find in the raw space.
        let emb = spectral_embedding(
            &points,
            &SpectralConfig {
                neighbors: 6,
                dimensions: 1,
                iterations: 1500,
                seed: 5,
            },
        );
        let clustered = kmeans(
            &emb,
            &KMeansConfig {
                k: 2,
                seed: 5,
                ..KMeansConfig::default()
            },
        );
        let spectral_agreement = pair_agreement(&truth, &clustered.labels);
        let raw = kmeans(
            &points,
            &KMeansConfig {
                k: 2,
                seed: 5,
                ..KMeansConfig::default()
            },
        );
        let raw_agreement = pair_agreement(&truth, &raw.labels);
        assert!(
            spectral_agreement > 0.95,
            "spectral agreement {spectral_agreement}"
        );
        assert!(spectral_agreement > raw_agreement);
    }

    #[test]
    fn deterministic_given_seed() {
        let (points, _) = two_rings(25, 7);
        let config = SpectralConfig {
            neighbors: 5,
            dimensions: 2,
            ..SpectralConfig::default()
        };
        let a = spectral_embedding(&points, &config);
        let b = spectral_embedding(&points, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn neighbor_count_is_clamped() {
        let points = vec![vec![0.0], vec![1.0], vec![2.0]];
        let emb = spectral_embedding(
            &points,
            &SpectralConfig {
                neighbors: 50,
                dimensions: 1,
                ..SpectralConfig::default()
            },
        );
        assert_eq!(emb.len(), 3);
    }
}
