//! Baseline clustering methods the paper compares PAR-TDBHT against (§VII):
//!
//! * [`hac()`] — hierarchical agglomerative clustering with complete, average
//!   or single linkage (the COMP and AVG baselines), implemented with the
//!   nearest-neighbor-chain algorithm over a parallel-built distance
//!   matrix;
//! * [`kmeans()`] — k-means++ and scalable k-means|| (the K-MEANS baseline);
//! * [`spectral`] — a k-nearest-neighbor spectral embedding used as the
//!   preprocessing step of the K-MEANS-S baseline (and of the stock
//!   experiment).
//!
//! All methods are deterministic given their seeds and parallelised with
//! rayon where the paper's baselines are parallel.

pub mod hac;
pub mod kmeans;
pub mod spectral;

pub use hac::{hac, Linkage};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use spectral::{spectral_embedding, SpectralConfig};
