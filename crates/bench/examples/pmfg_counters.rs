//! Prints the speculative-test counters and single-run wall times of the
//! round-based parallel PMFG across batch schedules, next to the
//! sequential baseline — the tuning table behind `PmfgConfig::default()`.
//!
//! Usage: `cargo run --release -p pfg_bench --example pmfg_counters`

use pfg_bench::{BenchDataset, SuiteConfig};
use pfg_core::{pmfg_sequential, pmfg_with_config, BatchSchedule, PmfgConfig};
use pfg_data::ucr_catalogue;
use std::time::Instant;

fn main() {
    let spec = ucr_catalogue()
        .into_iter()
        .find(|s| s.name == "ECG5000")
        .unwrap();
    for scale in [0.02f64, 0.05] {
        let cfg = SuiteConfig {
            scale,
            ..SuiteConfig::default()
        };
        let data = BenchDataset::prepare(&spec, &cfg);
        let t0 = Instant::now();
        let s = pmfg_sequential(&data.correlation).unwrap();
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "n={} pairs={} seq: examined={} rej={} {:.1}ms",
            data.len(),
            data.len() * (data.len() - 1) / 2,
            s.candidates_examined,
            s.rejections,
            seq_ms
        );
        for (ib, mb) in [
            (16, 4096),
            (16, 512),
            (16, 256),
            (32, 256),
            (32, 128),
            (64, 128),
            (64, 256),
            (128, 512),
        ] {
            let config = PmfgConfig {
                batch: BatchSchedule {
                    initial: ib,
                    cap: mb,
                },
            };
            let mut best = f64::INFINITY;
            let mut p = None;
            for _ in 0..5 {
                let t0 = Instant::now();
                p = Some(pmfg_with_config(&data.correlation, config).unwrap());
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            let p = p.unwrap();
            println!(
                "  ({ib:>3},{mb:>5}): examined={} rounds={} par_rej={} commit_rej={} retests={} min {:.1}ms",
                p.candidates_examined,
                p.rounds,
                p.parallel_rejections,
                p.rejections - p.parallel_rejections,
                p.commit_retests,
                best
            );
        }
    }
}
