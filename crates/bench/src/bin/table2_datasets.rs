//! Table II: summary of the benchmark data sets (id, name, n, L, #classes)
//! and the scaled sizes actually generated at the chosen harness scale.
//!
//! Usage: `cargo run --release -p pfg-bench --bin table2_datasets [scale] [max_datasets]`

use pfg_bench::{build_suite, parse_scale_from_args};
use pfg_data::ucr_catalogue;

fn main() {
    let config = parse_scale_from_args();
    println!("# Table II: data sets (scale = {})", config.scale);
    println!(
        "{:>3} {:<28} {:>7} {:>6} {:>9} | {:>9} {:>8}",
        "ID", "Name", "n", "L", "#classes", "n(scaled)", "L(gen)"
    );
    let suite = build_suite(&config);
    for (spec, ds) in ucr_catalogue().iter().zip(suite.iter()) {
        println!(
            "{:>3} {:<28} {:>7} {:>6} {:>9} | {:>9} {:>8}",
            spec.id,
            spec.name,
            spec.n,
            spec.length,
            spec.num_classes,
            ds.len(),
            ds.series.first().map_or(0, |s| s.len()),
        );
    }
}
