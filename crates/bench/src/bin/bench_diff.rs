//! Compares two directories of `BENCH_*.json` records (as written by the
//! criterion shim and uploaded by CI) and flags mean-time regressions —
//! the consumer of the bench-record trajectory.
//!
//! Usage:
//!   `cargo run -p pfg_bench --bin bench_diff -- <baseline_dir> [current_dir] [--threshold <pct>]`
//!
//! `current_dir` defaults to the standard record directory
//! (`$BENCH_RECORD_DIR` or `target/bench-records`); the threshold defaults
//! to 30 (percent). Exits non-zero when any benchmark's mean time regressed
//! by more than the threshold, so CI can surface it.

use std::path::PathBuf;
use std::process::ExitCode;

use pfg_bench::records::{diff_directories, record_dir};

fn main() -> ExitCode {
    let mut positional: Vec<String> = Vec::new();
    let mut threshold = 30.0_f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threshold" {
            match args.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold requires a numeric percentage");
                    return ExitCode::from(2);
                }
            }
        } else {
            positional.push(arg);
        }
    }
    let Some(baseline) = positional.first().map(PathBuf::from) else {
        eprintln!("usage: bench_diff <baseline_dir> [current_dir] [--threshold <pct>]");
        return ExitCode::from(2);
    };
    let current = positional
        .get(1)
        .map(PathBuf::from)
        .unwrap_or_else(record_dir);

    let report = diff_directories(&baseline, &current);
    if report.comparisons.is_empty() {
        println!(
            "bench_diff: no overlapping records between {} and {} (nothing to compare)",
            baseline.display(),
            current.display()
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "{:<44} {:>12} {:>12} {:>9}",
        "benchmark", "baseline", "current", "change"
    );
    for c in &report.comparisons {
        println!(
            "{:<44} {:>10.0}ns {:>10.0}ns {:>+8.1}%{}",
            c.key,
            c.baseline_ns,
            c.current_ns,
            c.change_pct,
            if c.is_regression(threshold) {
                "  REGRESSION"
            } else {
                ""
            }
        );
    }
    for key in &report.only_current {
        println!("{key:<44} (new benchmark, no baseline)");
    }
    for key in &report.only_baseline {
        println!("{key:<44} (removed: present only in baseline)");
    }

    let regressions = report.regressions(threshold);
    if regressions.is_empty() {
        println!(
            "bench_diff: {} benchmarks compared, none regressed by more than {threshold}%",
            report.comparisons.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_diff: {} of {} benchmarks regressed by more than {threshold}%",
            regressions.len(),
            report.comparisons.len()
        );
        ExitCode::FAILURE
    }
}
