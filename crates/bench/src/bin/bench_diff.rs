//! Compares two directories of `BENCH_*.json` records (as written by the
//! criterion shim and uploaded by CI) and flags mean-time regressions —
//! the consumer of the bench-record trajectory.
//!
//! Usage:
//!   `cargo run -p pfg_bench --bin bench_diff -- <baseline_dir> [current_dir] [--threshold <pct>] [--allow <file>]`
//!
//! `current_dir` defaults to the standard record directory
//! (`$BENCH_RECORD_DIR` or `target/bench-records`); the threshold defaults
//! to 30 (percent). `--allow` names a per-series allowlist (the repo's
//! `bench.allow`, mirroring `lint.allow`): allowed series still print
//! their comparison but cannot fail the gate. Exits non-zero when any
//! non-allowed benchmark's mean time regressed by more than the
//! threshold, so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

use pfg_bench::records::{diff_directories, record_dir, BenchAllowlist};

fn main() -> ExitCode {
    let mut positional: Vec<String> = Vec::new();
    let mut threshold = 30.0_f64;
    let mut allow = BenchAllowlist::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threshold" {
            match args.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold requires a numeric percentage");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--allow" {
            let Some(path) = args.next() else {
                eprintln!("--allow requires a file path");
                return ExitCode::from(2);
            };
            match BenchAllowlist::load(PathBuf::from(&path).as_path()) {
                Ok(list) => allow = list,
                Err(err) => {
                    // A gate that silently loses its allowlist would fail
                    // on every known-noisy series; fail the invocation
                    // instead.
                    eprintln!("--allow {path}: {err}");
                    return ExitCode::from(2);
                }
            }
        } else {
            positional.push(arg);
        }
    }
    let Some(baseline) = positional.first().map(PathBuf::from) else {
        eprintln!(
            "usage: bench_diff <baseline_dir> [current_dir] [--threshold <pct>] [--allow <file>]"
        );
        return ExitCode::from(2);
    };
    let current = positional
        .get(1)
        .map(PathBuf::from)
        .unwrap_or_else(record_dir);

    let report = diff_directories(&baseline, &current);
    if report.comparisons.is_empty() {
        println!(
            "bench_diff: no overlapping records between {} and {} (nothing to compare)",
            baseline.display(),
            current.display()
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "{:<44} {:>12} {:>12} {:>9}",
        "benchmark", "baseline", "current", "change"
    );
    for c in &report.comparisons {
        println!(
            "{:<44} {:>10.0}ns {:>10.0}ns {:>+8.1}%{}",
            c.key,
            c.baseline_ns,
            c.current_ns,
            c.change_pct,
            match (c.is_regression(threshold), allow.is_allowed(&c.key)) {
                (true, false) => "  REGRESSION",
                (true, true) => "  REGRESSION (allowed)",
                _ => "",
            }
        );
    }
    for key in &report.only_current {
        println!("{key:<44} (new benchmark, no baseline)");
    }
    for key in &report.only_baseline {
        println!("{key:<44} (removed: present only in baseline)");
    }

    let gating = report.gating_regressions(threshold, &allow);
    let allowed = report.regressions(threshold).len() - gating.len();
    if gating.is_empty() {
        println!(
            "bench_diff: {} benchmarks compared, none regressed by more than {threshold}%{}",
            report.comparisons.len(),
            if allowed > 0 {
                format!(" ({allowed} allowed regressions ignored)")
            } else {
                String::new()
            }
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_diff: {} of {} benchmarks regressed by more than {threshold}%{}",
            gating.len(),
            report.comparisons.len(),
            if allowed > 0 {
                format!(" ({allowed} more allowed)")
            } else {
                String::new()
            }
        );
        ExitCode::FAILURE
    }
}
