//! Figure 9: sensitivity of K-MEANS-S to the number of nearest neighbors β
//! used by the spectral embedding.
//!
//! Usage: `cargo run --release -p pfg-bench --bin fig9_kmeans_s_sensitivity [scale] [max_datasets]`

use pfg_bench::{build_suite, parse_scale_from_args, run_method, Method, Record};

fn main() {
    let mut config = parse_scale_from_args();
    if config.max_datasets == usize::MAX {
        config.max_datasets = 8;
    }
    let suite = build_suite(&config);
    println!(
        "# Figure 9: K-MEANS-S ARI vs number of nearest neighbors β (scale = {})",
        config.scale
    );
    println!("{:<28} {:>6} {:>8}", "dataset", "beta", "ARI");
    for dataset in &suite {
        let n = dataset.len();
        // Sweep β from very local to nearly global, as in the paper.
        let betas: Vec<usize> = [
            n / 40,
            n / 20,
            n / 10,
            n / 5,
            n / 3,
            n / 2,
            (3 * n) / 4,
            n.saturating_sub(1),
        ]
        .iter()
        .map(|&b| b.clamp(2, n.saturating_sub(1)))
        .collect();
        let mut seen = std::collections::HashSet::new();
        for beta in betas {
            if !seen.insert(beta) {
                continue;
            }
            let output = run_method(Method::KMeansSpectral { neighbors: beta }, dataset);
            println!("{:<28} {:>6} {:>8.3}", dataset.name, beta, output.ari);
            Record {
                experiment: "fig9".into(),
                dataset: dataset.name.clone(),
                method: "K-MEANS-S".into(),
                params: format!("beta={beta}"),
                seconds: output.elapsed.as_secs_f64(),
                ari: Some(output.ari),
                value: Some(beta as f64),
            }
            .emit();
        }
    }
}
