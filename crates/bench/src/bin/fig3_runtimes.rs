//! Figure 3: running time of every hierarchical method on every data set,
//! on a single thread (top plot) and on all cores (bottom plot).
//!
//! Usage: `cargo run --release -p pfg-bench --bin fig3_runtimes [scale] [max_datasets]`

use pfg_bench::{build_suite, parse_scale_from_args, run_method, secs, Method, Record};

fn run_suite(threads: usize, config: &pfg_bench::SuiteConfig) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let suite = build_suite(config);
    // PMFG and the sequential baselines are only run on the smaller data
    // sets, mirroring the paper's timeouts for data sets 8, 17 and 18.
    let slow_method_limit = 600;
    println!("## {} thread(s)", threads);
    println!(
        "{:<28} {:<14} {:>10} {:>8}",
        "dataset", "method", "time(s)", "ARI"
    );
    for dataset in &suite {
        let mut methods = vec![
            Method::CompleteLinkage,
            Method::AverageLinkage,
            Method::ParTdbht { prefix: 1 },
            Method::ParTdbht { prefix: 10 },
        ];
        if dataset.len() <= slow_method_limit {
            methods.push(Method::SeqTdbht);
            methods.push(Method::PmfgDbht);
        }
        for method in methods {
            let output = pool.install(|| run_method(method, dataset));
            println!(
                "{:<28} {:<14} {:>10} {:>8.3}",
                dataset.name,
                method.name(),
                secs(output.elapsed),
                output.ari
            );
            let mut params = format!("threads={threads},n={}", dataset.len());
            if let Some(p) = output.pmfg_stats {
                // The PMFG row is the figure's slow baseline; report how
                // much of its rejection work ran speculatively in parallel.
                println!("  └ {}", p.summary_line());
                params.push_str(&p.params_suffix());
            }
            Record {
                experiment: "fig3".into(),
                dataset: dataset.name.clone(),
                method: method.name(),
                params,
                seconds: output.elapsed.as_secs_f64(),
                ari: Some(output.ari),
                value: None,
            }
            .emit();
        }
    }
}

fn main() {
    let config = parse_scale_from_args();
    println!(
        "# Figure 3: runtimes per data set (scale = {})",
        config.scale
    );
    run_suite(1, &config);
    run_suite(num_cpus(), &config);
}

fn num_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
