//! Figure 11: market-cap distribution per sector (a) and per PAR-TDBHT
//! cluster (b) on the simulated stock market. The paper's observation is
//! that sector medians are comparable while the "mixed" clusters skew
//! towards smaller caps.
//!
//! Usage: `cargo run --release -p pfg-bench --bin fig11_market_cap [num_stocks] [num_days]`

use pfg_baselines::{spectral_embedding, SpectralConfig};
use pfg_core::ParTdbht;
use pfg_data::{correlation_and_dissimilarity, StockMarket, StockMarketConfig, SECTORS};

fn quartiles(values: &mut [f64]) -> (f64, f64, f64) {
    values.sort_by(f64::total_cmp);
    let q = |f: f64| values[((values.len() - 1) as f64 * f) as usize];
    (q(0.25), q(0.5), q(0.75))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let num_stocks = args
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(400usize);
    let num_days = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(500usize);
    let market = StockMarket::generate(&StockMarketConfig {
        num_stocks,
        num_days,
        ..StockMarketConfig::default()
    });
    println!(
        "# Figure 11: market-cap distributions ({} stocks)",
        market.len()
    );

    println!("\n(a) per sector: 25% / median / 75% market cap");
    for (s, sector) in SECTORS.iter().enumerate() {
        let mut caps: Vec<f64> = (0..market.len())
            .filter(|&i| market.sector[i] == s)
            .map(|i| market.market_cap[i])
            .collect();
        if caps.is_empty() {
            continue;
        }
        let (q1, q2, q3) = quartiles(&mut caps);
        println!("{sector:<26} {q1:>14.0} {q2:>14.0} {q3:>14.0}");
    }

    // Cluster the market exactly as the fig10 harness does.
    let detrended = market.detrended_returns();
    let embedded = spectral_embedding(
        &detrended,
        &SpectralConfig {
            neighbors: (market.len() / 16).clamp(5, 100),
            dimensions: SECTORS.len(),
            iterations: 150,
            seed: 13,
        },
    );
    let (correlation, dissimilarity, _kernel) = correlation_and_dissimilarity(&embedded);
    let result = ParTdbht::with_prefix(30)
        .run(&correlation, &dissimilarity)
        .expect("valid matrices");
    let clusters = result.clusters(SECTORS.len());
    let num_clusters = clusters.iter().copied().max().unwrap_or(0) + 1;

    println!("\n(b) per PAR-TDBHT cluster: 25% / median / 75% market cap");
    for c in 0..num_clusters {
        let mut caps: Vec<f64> = (0..market.len())
            .filter(|&i| clusters[i] == c)
            .map(|i| market.market_cap[i])
            .collect();
        if caps.is_empty() {
            continue;
        }
        let (q1, q2, q3) = quartiles(&mut caps);
        println!("cluster {c:<18} {q1:>14.0} {q2:>14.0} {q3:>14.0}");
    }
}
