//! Figure 4: scalability of PAR-TDBHT.
//!
//! Two modes:
//!
//! * **Thread sweep** (default): self-relative speedup vs. thread count,
//!   for different prefix sizes, on the largest (Crop-like) data set.
//!   `cargo run --release -p pfg_bench --bin fig4_scalability [scale]`
//! * **n sweep** (`nsweep [--quick]`): end-to-end input-size scaling of
//!   the large-`n` configuration — `f32` tiled correlation kernel, top-K
//!   candidate prescreen, and the on-the-fly dissimilarity view (no dense
//!   `f64` correlation and no dense dissimilarity matrix are ever
//!   materialised). Emits one `Record` per size plus mean-time entries in
//!   `BENCH_fig4_nsweep.json` so `bench_diff` tracks the trajectory.
//!   `--quick` swaps the full sizes (2 000 / 8 000 / 30 000) for CI-sized
//!   ones (500 / 1 000).

use pfg_bench::records::{record_dir, write_json_array};
use pfg_bench::{parse_scale_from_args, BenchDataset, CorrelationRunStats, Record, SuiteConfig};
use pfg_core::{ParTdbht, ParTdbhtConfig};
use pfg_data::{correlation_matrix_f32, ucr_catalogue, TileConfig};
use pfg_metrics::adjusted_rand_index;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "nsweep") {
        nsweep(args.iter().any(|a| a == "--quick"));
    } else {
        thread_sweep();
    }
}

/// Synthetic labeled series (class archetypes plus noise), generated
/// directly so the sweep's input cost is only the pipeline's.
fn synthetic_series(
    n: usize,
    classes: usize,
    len: usize,
    noise: f64,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let archetypes: Vec<Vec<f64>> = (0..classes)
        .map(|_| {
            let freq = rng.gen_range(1.0..4.0);
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            (0..len)
                .map(|t| (freq * t as f64 / len as f64 * std::f64::consts::TAU + phase).sin())
                .collect()
        })
        .collect();
    let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
    let series = labels
        .iter()
        .map(|&c| {
            archetypes[c]
                .iter()
                .map(|&x| x + rng.gen_range(-noise..noise))
                .collect()
        })
        .collect();
    (series, labels)
}

fn nsweep(quick: bool) {
    let sizes: &[usize] = if quick {
        &[500, 1000]
    } else {
        &[2000, 8000, 30000]
    };
    let (classes, len, noise) = (24usize, 46usize, 0.35);
    let (prefix, prescreen_k) = (10usize, 48usize);
    println!(
        "# Figure 4 (n sweep): f32 tiled kernel + top-{prescreen_k} prescreen + \
         PAR-TDBHT-{prefix} over the dissimilarity view"
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>8} {:>10} {:>12}",
        "n", "kernel(s)", "cluster(s)", "total(s)", "ari", "rescans", "matrix(MB)"
    );
    let mut lines = Vec::new();
    for &n in sizes {
        let (series, labels) = synthetic_series(n, classes, len, noise, 20230309);
        let start = Instant::now();
        let (s32, kernel) = correlation_matrix_f32(&series, TileConfig::default());
        let kernel_time = start.elapsed();
        let runner = ParTdbht::new(ParTdbhtConfig::with_prefix(prefix).with_prescreen(prescreen_k));
        let start = Instant::now();
        let result = runner.run_f32(&s32).expect("valid matrices");
        let cluster_time = start.elapsed();
        let total = kernel_time + cluster_time;
        let ari = adjusted_rand_index(&labels, &result.clusters(classes));
        let stats = CorrelationRunStats::of(&kernel, result.tmfg.prescreen_rescans);
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>12.3} {:>8.3} {:>10} {:>12.1}",
            n,
            kernel_time.as_secs_f64(),
            cluster_time.as_secs_f64(),
            total.as_secs_f64(),
            ari,
            stats.prescreen_rescans,
            stats.output_bytes as f64 / 1e6
        );
        Record {
            experiment: "fig4_nsweep".into(),
            dataset: format!("synth-{n}"),
            method: format!("PAR-TDBHT-{prefix}(f32,topk{prescreen_k})"),
            params: format!(
                "n={n},len={len},classes={classes},prescreen_k={prescreen_k}{}",
                stats.params_suffix()
            ),
            seconds: total.as_secs_f64(),
            ari: Some(ari),
            value: Some(kernel_time.as_secs_f64()),
        }
        .emit();
        for (label, time) in [
            ("kernel", kernel_time),
            ("cluster", cluster_time),
            ("end_to_end", total),
        ] {
            lines.push(format!(
                "{{\"bench\":\"fig4_nsweep\",\"label\":\"{label}/{n}\",\"samples\":1,\"mean_ns\":{}}}",
                time.as_nanos()
            ));
        }
    }
    let path = record_dir().join("BENCH_fig4_nsweep.json");
    match write_json_array(&path, &lines) {
        Ok(()) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# failed to write {}: {e}", path.display()),
    }
}

fn thread_sweep() {
    let config = parse_scale_from_args();
    // The paper uses Crop (n = 19412); generate its scaled stand-in.
    let spec = ucr_catalogue()
        .into_iter()
        .find(|s| s.name == "Crop")
        .expect("Crop in catalogue");
    let dataset = BenchDataset::prepare(
        &spec,
        &SuiteConfig {
            scale: config.scale,
            ..config
        },
    );
    println!(
        "# Figure 4: self-relative speedup on {} (n = {}, scale = {})",
        dataset.name,
        dataset.len(),
        config.scale
    );
    let max_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_counts = vec![1, 2, 4, 8, 12, 24, 36, 48];
    thread_counts.retain(|&t| t <= max_threads);
    if !thread_counts.contains(&max_threads) {
        thread_counts.push(max_threads);
    }
    println!(
        "{:>8} {:>8} {:>12} {:>10}",
        "prefix", "threads", "time(s)", "speedup"
    );
    for prefix in [1usize, 2, 5, 10, 30, 50, 200] {
        let mut single_thread_time = None;
        for &threads in &thread_counts {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool");
            let start = Instant::now();
            let result = pool.install(|| {
                ParTdbht::with_prefix(prefix)
                    .run(&dataset.correlation, &dataset.dissimilarity)
                    .expect("valid matrices")
            });
            let elapsed = start.elapsed();
            drop(result);
            let baseline = *single_thread_time.get_or_insert(elapsed.as_secs_f64());
            let speedup = baseline / elapsed.as_secs_f64();
            println!(
                "{:>8} {:>8} {:>12.3} {:>10.2}",
                prefix,
                threads,
                elapsed.as_secs_f64(),
                speedup
            );
            Record {
                experiment: "fig4".into(),
                dataset: dataset.name.clone(),
                method: format!("PAR-TDBHT-{prefix}"),
                params: format!("threads={threads}"),
                seconds: elapsed.as_secs_f64(),
                ari: None,
                value: Some(speedup),
            }
            .emit();
        }
    }
}
