//! Figure 4: self-relative speedup of PAR-TDBHT vs. thread count, for
//! different prefix sizes, on the largest (Crop-like) data set.
//!
//! Usage: `cargo run --release -p pfg-bench --bin fig4_scalability [scale]`

use pfg_bench::{parse_scale_from_args, BenchDataset, Record, SuiteConfig};
use pfg_core::ParTdbht;
use pfg_data::ucr_catalogue;
use std::time::Instant;

fn main() {
    let config = parse_scale_from_args();
    // The paper uses Crop (n = 19412); generate its scaled stand-in.
    let spec = ucr_catalogue()
        .into_iter()
        .find(|s| s.name == "Crop")
        .expect("Crop in catalogue");
    let dataset = BenchDataset::prepare(
        &spec,
        &SuiteConfig {
            scale: config.scale,
            ..config
        },
    );
    println!(
        "# Figure 4: self-relative speedup on {} (n = {}, scale = {})",
        dataset.name,
        dataset.len(),
        config.scale
    );
    let max_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_counts = vec![1, 2, 4, 8, 12, 24, 36, 48];
    thread_counts.retain(|&t| t <= max_threads);
    if !thread_counts.contains(&max_threads) {
        thread_counts.push(max_threads);
    }
    println!(
        "{:>8} {:>8} {:>12} {:>10}",
        "prefix", "threads", "time(s)", "speedup"
    );
    for prefix in [1usize, 2, 5, 10, 30, 50, 200] {
        let mut single_thread_time = None;
        for &threads in &thread_counts {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool");
            let start = Instant::now();
            let result = pool.install(|| {
                ParTdbht::with_prefix(prefix)
                    .run(&dataset.correlation, &dataset.dissimilarity)
                    .expect("valid matrices")
            });
            let elapsed = start.elapsed();
            drop(result);
            let baseline = *single_thread_time.get_or_insert(elapsed.as_secs_f64());
            let speedup = baseline / elapsed.as_secs_f64();
            println!(
                "{:>8} {:>8} {:>12.3} {:>10.2}",
                prefix,
                threads,
                elapsed.as_secs_f64(),
                speedup
            );
            Record {
                experiment: "fig4".into(),
                dataset: dataset.name.clone(),
                method: format!("PAR-TDBHT-{prefix}"),
                params: format!("threads={threads}"),
                seconds: elapsed.as_secs_f64(),
                ari: None,
                value: Some(speedup),
            }
            .emit();
        }
    }
}
