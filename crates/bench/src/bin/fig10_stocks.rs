//! Figure 10: clustering of the (simulated) US stock market with
//! PAR-TDBHT (prefix 30) compared against the ICB-style sector labels —
//! the stacked sector-composition counts per cluster.
//!
//! Usage: `cargo run --release -p pfg-bench --bin fig10_stocks [num_stocks] [num_days]`

use pfg_baselines::{spectral_embedding, SpectralConfig};
use pfg_bench::Record;
use pfg_core::ParTdbht;
use pfg_data::{correlation_and_dissimilarity, StockMarket, StockMarketConfig, SECTORS};
use pfg_metrics::adjusted_rand_index;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let num_stocks = args
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(400usize);
    let num_days = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(500usize);
    let market = StockMarket::generate(&StockMarketConfig {
        num_stocks,
        num_days,
        ..StockMarketConfig::default()
    });
    println!(
        "# Figure 10: PAR-TDBHT-30 clusters vs sectors ({} stocks, {} days)",
        market.len(),
        num_days
    );

    // Preprocessing as in §VII: detrended log-returns → spectral embedding →
    // Pearson correlation of the embedded data.
    let detrended = market.detrended_returns();
    let embedded = spectral_embedding(
        &detrended,
        &SpectralConfig {
            neighbors: (market.len() / 16).clamp(5, 100),
            dimensions: SECTORS.len(),
            iterations: 150,
            seed: 13,
        },
    );
    let (correlation, dissimilarity, _kernel) = correlation_and_dissimilarity(&embedded);

    let start = std::time::Instant::now();
    let result = ParTdbht::with_prefix(30)
        .run(&correlation, &dissimilarity)
        .expect("valid matrices");
    let elapsed = start.elapsed();
    let clusters = result.clusters(SECTORS.len());
    let ari = adjusted_rand_index(&market.sector, &clusters);
    // The exact-TMFG variant, for the paper's "better than the original
    // TMFG algorithm" comparison (ARI 0.36 vs 0.28 in the paper).
    let exact = ParTdbht::with_prefix(1)
        .run(&correlation, &dissimilarity)
        .expect("valid matrices");
    let exact_ari = adjusted_rand_index(&market.sector, &exact.clusters(SECTORS.len()));
    println!("PAR-TDBHT-30 ARI = {ari:.3} ({elapsed:?}); exact-TMFG ARI = {exact_ari:.3}");

    let num_clusters = clusters.iter().copied().max().unwrap_or(0) + 1;
    println!("\ncluster composition (rows = clusters, columns = sectors):");
    print!("{:>8}", "cluster");
    for sector in SECTORS {
        print!(" {:>4}", &sector[..3.min(sector.len())]);
    }
    println!(" total");
    for c in 0..num_clusters {
        print!("{c:>8}");
        let mut total = 0;
        for s in 0..SECTORS.len() {
            let count = (0..market.len())
                .filter(|&i| clusters[i] == c && market.sector[i] == s)
                .count();
            total += count;
            print!(" {count:>4}");
        }
        println!(" {total:>5}");
    }
    Record {
        experiment: "fig10".into(),
        dataset: format!("stock-market-{num_stocks}"),
        method: "PAR-TDBHT-30".into(),
        params: format!("days={num_days}"),
        seconds: elapsed.as_secs_f64(),
        ari: Some(ari),
        value: Some(exact_ari),
    }
    .emit();
}
