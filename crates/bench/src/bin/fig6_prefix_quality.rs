//! Figure 6: clustering quality (ARI) of PAR-TDBHT for prefix sizes
//! 1, 2, 5, 10, 30, 50 and 200 on every data set, plus the batch
//! selector's fill-rate and staleness counters per prefix.
//!
//! Besides the text table (and the per-run JSON record lines shared by all
//! harnesses), the full agreement table is written machine-readably to
//! `<record dir>/FIG6_prefix_quality.json` (one flat object per
//! dataset × prefix cell), so the Fig. 6 trajectory can be tracked across
//! commits the same way the bench records are.
//!
//! Usage: `cargo run --release -p pfg_bench --bin fig6_prefix_quality [scale] [max_datasets]`

use pfg_bench::records::{json_string, record_dir, write_json_array};
use pfg_bench::{build_suite, parse_scale_from_args, run_method, Method, Record};

fn main() {
    let config = parse_scale_from_args();
    let suite = build_suite(&config);
    let prefixes = [1usize, 2, 5, 10, 30, 50, 200];
    println!("# Figure 6: ARI per prefix size (scale = {})", config.scale);
    print!("{:<28}", "dataset");
    for p in prefixes {
        print!(" {:>8}", format!("p={p}"));
    }
    println!();
    let mut table_lines: Vec<String> = Vec::new();
    // Selector counters aggregated per prefix across the suite.
    let mut totals = vec![(0usize, 0usize, 0usize, 0usize, 0.0f64); prefixes.len()];
    for dataset in &suite {
        print!("{:<28}", dataset.name);
        for (slot, &prefix) in prefixes.iter().enumerate() {
            let output = run_method(Method::ParTdbht { prefix }, dataset);
            print!(" {:>8.3}", output.ari);
            Record {
                experiment: "fig6".into(),
                dataset: dataset.name.clone(),
                method: format!("PAR-TDBHT-{prefix}"),
                params: format!("n={}", dataset.len()),
                seconds: output.elapsed.as_secs_f64(),
                ari: Some(output.ari),
                value: None,
            }
            .emit();
            let stats = output.tmfg_stats.expect("TMFG method reports stats");
            totals[slot].0 += stats.rounds;
            totals[slot].1 += stats.conflicts;
            totals[slot].2 += stats.rescans;
            totals[slot].3 += stats.reassigned;
            totals[slot].4 += stats.mean_fill_rate;
            table_lines.push(format!(
                "{{\"dataset\":{},\"n\":{},\"prefix\":{},\"ari\":{:.6},\"seconds\":{:.6},\"rounds\":{},\"mean_fill_rate\":{:.6},\"conflicts\":{},\"rescans\":{},\"reassigned\":{}}}",
                json_string(&dataset.name),
                dataset.len(),
                prefix,
                output.ari,
                output.elapsed.as_secs_f64(),
                stats.rounds,
                stats.mean_fill_rate,
                stats.conflicts,
                stats.rescans,
                stats.reassigned,
            ));
        }
        println!();
    }
    println!();
    println!("# batch selector counters (summed over the suite; fill rate is the mean)");
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "prefix", "rounds", "fill", "conflicts", "rescans", "reassigned"
    );
    let datasets = suite.len().max(1) as f64;
    for (slot, &prefix) in prefixes.iter().enumerate() {
        let (rounds, conflicts, rescans, reassigned, fill) = totals[slot];
        println!(
            "{:<8} {:>8} {:>10.4} {:>10} {:>10} {:>10}",
            prefix,
            rounds,
            fill / datasets,
            conflicts,
            rescans,
            reassigned
        );
    }
    let path = record_dir().join("FIG6_prefix_quality.json");
    match write_json_array(&path, &table_lines) {
        Ok(()) => println!("# agreement table written to {}", path.display()),
        Err(e) => eprintln!(
            "# failed to write agreement table to {}: {e}",
            path.display()
        ),
    }
}
