//! Figure 6: clustering quality (ARI) of PAR-TDBHT for prefix sizes
//! 1, 2, 5, 10, 30, 50 and 200 on every data set.
//!
//! Usage: `cargo run --release -p pfg-bench --bin fig6_prefix_quality [scale] [max_datasets]`

use pfg_bench::{build_suite, parse_scale_from_args, run_method, Method, Record};

fn main() {
    let config = parse_scale_from_args();
    let suite = build_suite(&config);
    let prefixes = [1usize, 2, 5, 10, 30, 50, 200];
    println!("# Figure 6: ARI per prefix size (scale = {})", config.scale);
    print!("{:<28}", "dataset");
    for p in prefixes {
        print!(" {:>8}", format!("p={p}"));
    }
    println!();
    for dataset in &suite {
        print!("{:<28}", dataset.name);
        for prefix in prefixes {
            let output = run_method(Method::ParTdbht { prefix }, dataset);
            print!(" {:>8.3}", output.ari);
            Record {
                experiment: "fig6".into(),
                dataset: dataset.name.clone(),
                method: format!("PAR-TDBHT-{prefix}"),
                params: format!("n={}", dataset.len()),
                seconds: output.elapsed.as_secs_f64(),
                ari: Some(output.ari),
                value: None,
            }
            .emit();
        }
        println!();
    }
}
