//! Figure 7: ratio of the filtered graph's total edge weight to that of the
//! sequential TMFG, for PMFG and for prefix sizes 1–200.
//!
//! Usage: `cargo run --release -p pfg-bench --bin fig7_edge_sum [scale] [max_datasets]`

use pfg_bench::{build_suite, parse_scale_from_args, Record};
use pfg_core::{pmfg, tmfg, TmfgConfig};

fn main() {
    let mut config = parse_scale_from_args();
    if config.max_datasets == usize::MAX {
        // The PMFG column is expensive; keep the default run modest.
        config.max_datasets = 8;
    }
    let suite = build_suite(&config);
    let prefixes = [2usize, 5, 10, 30, 50, 200];
    println!(
        "# Figure 7: edge-weight-sum ratio vs sequential TMFG (scale = {})",
        config.scale
    );
    print!("{:<28} {:>8}", "dataset", "PMFG");
    for p in prefixes {
        print!(" {:>8}", format!("p={p}"));
    }
    println!();
    for dataset in &suite {
        let sequential = tmfg(&dataset.correlation, TmfgConfig::with_prefix(1))
            .expect("valid matrices")
            .edge_weight_sum();
        let pmfg_ratio = pmfg(&dataset.correlation)
            .expect("valid matrices")
            .edge_weight_sum()
            / sequential;
        print!("{:<28} {:>8.4}", dataset.name, pmfg_ratio);
        Record {
            experiment: "fig7".into(),
            dataset: dataset.name.clone(),
            method: "PMFG".into(),
            params: String::new(),
            seconds: 0.0,
            ari: None,
            value: Some(pmfg_ratio),
        }
        .emit();
        for prefix in prefixes {
            let ratio = tmfg(&dataset.correlation, TmfgConfig::with_prefix(prefix))
                .expect("valid matrices")
                .edge_weight_sum()
                / sequential;
            print!(" {:>8.4}", ratio);
            Record {
                experiment: "fig7".into(),
                dataset: dataset.name.clone(),
                method: format!("TMFG-prefix-{prefix}"),
                params: String::new(),
                seconds: 0.0,
                ari: None,
                value: Some(ratio),
            }
            .emit();
        }
        println!();
    }
}
