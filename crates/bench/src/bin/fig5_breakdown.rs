//! Figure 5: breakdown of PAR-TDBHT runtime across the tmfg / apsp /
//! bubble-tree / hierarchy stages, per prefix size, on one thread and on
//! all cores, on the ECG5000-like data set.
//!
//! Usage: `cargo run --release -p pfg-bench --bin fig5_breakdown [scale]`

use pfg_bench::{parse_scale_from_args, BenchDataset, Record, SuiteConfig};
use pfg_core::ParTdbht;
use pfg_data::ucr_catalogue;

fn run(threads: usize, dataset: &BenchDataset) {
    println!("## {} thread(s)", threads);
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>11} {:>10}",
        "prefix", "tmfg(s)", "apsp(s)", "bubble(s)", "hier(s)", "total(s)"
    );
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    for prefix in [1usize, 2, 5, 10, 30, 50, 200] {
        let result = pool.install(|| {
            ParTdbht::with_prefix(prefix)
                .run(&dataset.correlation, &dataset.dissimilarity)
                .expect("valid matrices")
        });
        let t = result.timings;
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>12.3} {:>11.3} {:>10.3}",
            prefix,
            t.tmfg.as_secs_f64(),
            t.apsp.as_secs_f64(),
            t.bubble_tree.as_secs_f64(),
            t.hierarchy.as_secs_f64(),
            t.total().as_secs_f64()
        );
        for (stage, secs) in [
            ("tmfg", t.tmfg.as_secs_f64()),
            ("apsp", t.apsp.as_secs_f64()),
            ("bubble-tree", t.bubble_tree.as_secs_f64()),
            ("hierarchy", t.hierarchy.as_secs_f64()),
        ] {
            Record {
                experiment: "fig5".into(),
                dataset: dataset.name.clone(),
                method: format!("PAR-TDBHT-{prefix}"),
                params: format!("threads={threads},stage={stage}"),
                seconds: secs,
                ari: None,
                value: None,
            }
            .emit();
        }
    }
}

fn main() {
    let config = parse_scale_from_args();
    let spec = ucr_catalogue()
        .into_iter()
        .find(|s| s.name == "ECG5000")
        .expect("ECG5000 in catalogue");
    let dataset = BenchDataset::prepare(
        &spec,
        &SuiteConfig {
            scale: config.scale,
            ..config
        },
    );
    println!(
        "# Figure 5: runtime breakdown on {} (n = {}, scale = {})",
        dataset.name,
        dataset.len(),
        config.scale
    );
    run(1, &dataset);
    run(
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        &dataset,
    );
}
