//! Figure 5: breakdown of PAR-TDBHT runtime across the tmfg / apsp /
//! direction / assignment / hierarchy stages, per prefix size, on one
//! thread and on all cores, on the ECG5000-like data set.
//!
//! Earlier revisions lumped direction + assignment into a single
//! "bubble-tree" stage; the per-stage split lets `bench_diff` attribute
//! regressions to the exact pass. Each row also reports the restricted
//! APSP's output fraction (computed pairs / n²) as a `Record` value.
//!
//! Usage: `cargo run --release -p pfg-bench --bin fig5_breakdown [scale]`

use pfg_bench::{parse_scale_from_args, BenchDataset, Record, SuiteConfig};
use pfg_core::ParTdbht;
use pfg_data::ucr_catalogue;

fn run(threads: usize, dataset: &BenchDataset) {
    println!("## {} thread(s)", threads);
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "prefix", "tmfg(s)", "apsp(s)", "dir(s)", "asgn(s)", "hier(s)", "total(s)", "apsp-frac"
    );
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    for prefix in [1usize, 2, 5, 10, 30, 50, 200] {
        let result = pool.install(|| {
            ParTdbht::with_prefix(prefix)
                .run(&dataset.correlation, &dataset.dissimilarity)
                .expect("valid matrices")
        });
        let t = result.timings;
        let stats = result.dbht_stats;
        println!(
            "{:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>10.3}",
            prefix,
            t.tmfg.as_secs_f64(),
            t.apsp.as_secs_f64(),
            t.direction.as_secs_f64(),
            t.assignment.as_secs_f64(),
            t.hierarchy.as_secs_f64(),
            t.total().as_secs_f64(),
            stats.restricted_fraction()
        );
        for (stage, secs) in [
            ("tmfg", t.tmfg.as_secs_f64()),
            ("apsp", t.apsp.as_secs_f64()),
            ("direction", t.direction.as_secs_f64()),
            ("assignment", t.assignment.as_secs_f64()),
            ("hierarchy", t.hierarchy.as_secs_f64()),
        ] {
            Record {
                experiment: "fig5".into(),
                dataset: dataset.name.clone(),
                method: format!("PAR-TDBHT-{prefix}"),
                params: format!("threads={threads},stage={stage}{}", stats.params_suffix()),
                seconds: secs,
                ari: None,
                value: Some(stats.restricted_fraction()),
            }
            .emit();
        }
    }
}

fn main() {
    let config = parse_scale_from_args();
    let spec = ucr_catalogue()
        .into_iter()
        .find(|s| s.name == "ECG5000")
        .expect("ECG5000 in catalogue");
    let dataset = BenchDataset::prepare(
        &spec,
        &SuiteConfig {
            scale: config.scale,
            ..config
        },
    );
    println!(
        "# Figure 5: runtime breakdown on {} (n = {}, scale = {})",
        dataset.name,
        dataset.len(),
        config.scale
    );
    run(1, &dataset);
    run(
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        &dataset,
    );
}
