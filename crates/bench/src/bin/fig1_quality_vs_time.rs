//! Figure 1: sequential runtime vs. clustering quality (ARI) for
//! PMFG+DBHT, TMFG+DBHT, average linkage and complete linkage.
//!
//! One point per (method, data set); the paper's claim is that the filtered
//! -graph methods sit up and to the right (slower but better clusters).
//!
//! Usage: `cargo run --release -p pfg-bench --bin fig1_quality_vs_time [scale] [max_datasets]`

use pfg_bench::{build_suite, parse_scale_from_args, run_method, secs, Method, Record};

fn main() {
    let mut config = parse_scale_from_args();
    if config.max_datasets == usize::MAX {
        // PMFG is quadratic-with-planarity-tests; keep the default run small.
        config.max_datasets = 6;
    }
    let suite = build_suite(&config);
    println!(
        "# Figure 1: runtime vs ARI (scale = {}, {} data sets)",
        config.scale,
        suite.len()
    );
    println!(
        "{:<28} {:<14} {:>10} {:>8}",
        "dataset", "method", "time(s)", "ARI"
    );
    let methods = [
        Method::PmfgDbht,
        Method::SeqTdbht,
        Method::AverageLinkage,
        Method::CompleteLinkage,
    ];
    for dataset in &suite {
        for method in methods {
            let output = run_method(method, dataset);
            println!(
                "{:<28} {:<14} {:>10} {:>8.3}",
                dataset.name,
                method.name(),
                secs(output.elapsed),
                output.ari
            );
            let mut params = format!("n={}", dataset.len());
            if let Some(p) = output.pmfg_stats {
                // Speculative-test efficiency of the round-based PMFG:
                // the share of rejections decided off the critical path.
                println!("  └ {}", p.summary_line());
                params.push_str(&p.params_suffix());
            }
            Record {
                experiment: "fig1".into(),
                dataset: dataset.name.clone(),
                method: method.name(),
                params,
                seconds: output.elapsed.as_secs_f64(),
                ari: Some(output.ari),
                value: None,
            }
            .emit();
        }
    }
}
