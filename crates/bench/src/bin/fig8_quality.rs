//! Figure 8: clustering quality (ARI) of PAR-TDBHT-1, PAR-TDBHT-10,
//! PMFG+DBHT, COMP, AVG, K-MEANS and K-MEANS-S on every data set.
//!
//! Usage: `cargo run --release -p pfg-bench --bin fig8_quality [scale] [max_datasets]`

use pfg_bench::{build_suite, parse_scale_from_args, run_method, Method, Record};

fn main() {
    let config = parse_scale_from_args();
    let suite = build_suite(&config);
    println!("# Figure 8: ARI of all methods (scale = {})", config.scale);
    println!(
        "{:<28} {:<16} {:>8} {:>10}",
        "dataset", "method", "ARI", "time(s)"
    );
    for dataset in &suite {
        // β for K-MEANS-S: a neighbourhood about 10% of the data set, which
        // is a reasonable default per Figure 9's sweep.
        let beta = (dataset.len() / 10).clamp(5, 200);
        let mut methods = vec![
            Method::ParTdbht { prefix: 1 },
            Method::ParTdbht { prefix: 10 },
            Method::CompleteLinkage,
            Method::AverageLinkage,
            Method::KMeans,
            Method::KMeansSpectral { neighbors: beta },
        ];
        // PMFG times out on the largest data sets in the paper; mirror that.
        if dataset.len() <= 600 {
            methods.insert(2, Method::PmfgDbht);
        }
        for method in methods {
            let output = run_method(method, dataset);
            println!(
                "{:<28} {:<16} {:>8.3} {:>10.3}",
                dataset.name,
                method.name(),
                output.ari,
                output.elapsed.as_secs_f64()
            );
            Record {
                experiment: "fig8".into(),
                dataset: dataset.name.clone(),
                method: method.name(),
                params: format!("n={}", dataset.len()),
                seconds: output.elapsed.as_secs_f64(),
                ari: Some(output.ari),
                value: None,
            }
            .emit();
        }
    }
}
