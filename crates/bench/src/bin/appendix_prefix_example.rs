//! Appendix (Figures 12–13): the 6-point correlation matrix for which the
//! batched TMFG (prefix 3) recovers the ground-truth clustering while the
//! exact TMFG (prefix 1) does not.
//!
//! The prefix-3 run uses the paper's literal *simultaneous* batch
//! placement so the walkthrough matches Figure 13 step for step (the
//! library default, intra-round placement, would instead reproduce the
//! sequential insertion of vertex 2 into {0,4,5}).
//!
//! Usage: `cargo run --release -p pfg-bench --bin appendix_prefix_example`

use pfg_core::{tmfg, ParTdbht, TmfgConfig};
use pfg_graph::SymmetricMatrix;
use pfg_metrics::adjusted_rand_index;

fn main() {
    let rows = vec![
        1.0, 0.8, 0.4, 0.8, 0.8, 0.4, //
        0.8, 1.0, 0.41, 0.9, 0.4, 0.0, //
        0.4, 0.41, 1.0, 0.0, 0.4, 0.42, //
        0.8, 0.9, 0.0, 1.0, 0.8, 0.8, //
        0.8, 0.4, 0.4, 0.8, 1.0, 0.8, //
        0.4, 0.0, 0.42, 0.8, 0.8, 1.0,
    ];
    let s = SymmetricMatrix::from_rows(6, rows);
    let d = s.map(|p| (2.0 * (1.0 - p)).sqrt());
    let truth = vec![0usize, 0, 0, 1, 1, 1];
    println!("# Appendix example (Figure 12/13)");
    for prefix in [1usize, 3] {
        let config = TmfgConfig::with_prefix(prefix).simultaneous();
        let t = tmfg(&s, config).expect("valid matrix");
        println!("\nPREFIX = {prefix}:");
        println!("  initial clique: {:?}", t.initial_clique);
        for ins in &t.insertions {
            println!(
                "  round {}: insert {} into {} (gain {:.2})",
                ins.round, ins.vertex, ins.face, ins.gain
            );
        }
        let result = ParTdbht::new(pfg_core::ParTdbhtConfig {
            tmfg: config,
            prescreen: None,
        })
        .run(&s, &d)
        .expect("valid matrix");
        let labels = result.clusters(2);
        println!(
            "  2-cluster cut: {:?}  ARI vs {{0,1,2}}/{{3,4,5}} = {:.3}",
            labels,
            adjusted_rand_index(&truth, &labels)
        );
    }
}
