//! The benchmark data-set suite: scaled synthetic stand-ins for the 18 UCR
//! data sets of Table II.

use pfg_data::{
    correlation_and_dissimilarity, correlation_matrix, dissimilarity_from_correlation,
    ucr_catalogue, CorrelationKernelStats, UcrDatasetSpec,
};
use pfg_graph::SymmetricMatrix;

/// Configuration of the suite used by a harness run.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Fraction of each data set's Table II size to generate (1.0 = paper
    /// scale). The harnesses default to a small scale so they finish in
    /// minutes on a laptop; pass a scale argument to run larger.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Maximum number of data sets (in Table II order) to include.
    pub max_datasets: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            scale: 0.05,
            seed: 20230309,
            max_datasets: usize::MAX,
        }
    }
}

/// One prepared benchmark data set: the generated series plus the derived
/// correlation and dissimilarity matrices.
#[derive(Debug, Clone)]
pub struct BenchDataset {
    /// Table II id.
    pub id: usize,
    /// Data-set name.
    pub name: String,
    /// The raw series (input of the k-means baselines).
    pub series: Vec<Vec<f64>>,
    /// Ground-truth labels.
    pub labels: Vec<usize>,
    /// Number of ground-truth classes.
    pub num_classes: usize,
    /// Pearson correlation matrix (input of TMFG/PMFG).
    pub correlation: SymmetricMatrix,
    /// Dissimilarity matrix `sqrt(2(1 − ρ))`.
    pub dissimilarity: SymmetricMatrix,
    /// Counters of the tiled correlation kernel run that produced both
    /// matrices (`None` only for ragged series, which fall back to the
    /// reference kernel).
    pub kernel_stats: Option<CorrelationKernelStats>,
}

impl BenchDataset {
    /// Prepares one spec at the given scale. Both derived matrices come
    /// from one fused pass of the tiled kernel — the correlation is never
    /// materialised twice and never re-mapped into the dissimilarity.
    pub fn prepare(spec: &UcrDatasetSpec, config: &SuiteConfig) -> Self {
        let dataset = spec.generate(config.scale, config.seed);
        let uniform = dataset.series.windows(2).all(|w| w[0].len() == w[1].len());
        let (correlation, dissimilarity, kernel_stats) = if uniform && !dataset.series.is_empty() {
            let (c, d, stats) = correlation_and_dissimilarity(&dataset.series);
            (c, d, Some(stats))
        } else {
            let c = correlation_matrix(&dataset.series);
            let d = dissimilarity_from_correlation(&c);
            (c, d, None)
        };
        Self {
            id: spec.id,
            name: dataset.name.clone(),
            num_classes: dataset.num_classes(),
            series: dataset.series,
            labels: dataset.labels,
            correlation,
            dissimilarity,
            kernel_stats,
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if the data set is empty (never the case for catalogue specs).
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

/// Prepares the full suite (all Table II entries, truncated to
/// `max_datasets`) at the configured scale.
pub fn build_suite(config: &SuiteConfig) -> Vec<BenchDataset> {
    ucr_catalogue()
        .iter()
        .take(config.max_datasets)
        .map(|spec| BenchDataset::prepare(spec, config))
        .collect()
}

/// Parses harness command-line arguments of the form
/// `[scale] [max_datasets]`, falling back to the defaults.
pub fn parse_scale_from_args() -> SuiteConfig {
    let mut config = SuiteConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(scale) = args.first().and_then(|a| a.parse::<f64>().ok()) {
        config.scale = scale;
    }
    if let Some(max) = args.get(1).and_then(|a| a.parse::<usize>().ok()) {
        config.max_datasets = max;
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_small_dataset() {
        let spec = ucr_catalogue()[10]; // CBF
        let config = SuiteConfig {
            scale: 0.05,
            ..SuiteConfig::default()
        };
        let ds = BenchDataset::prepare(&spec, &config);
        assert_eq!(ds.correlation.n(), ds.len());
        assert_eq!(ds.dissimilarity.n(), ds.len());
        assert_eq!(ds.labels.len(), ds.len());
        assert!(ds.num_classes >= 2);
        assert!(!ds.is_empty());
    }

    #[test]
    fn build_suite_respects_max_datasets() {
        let config = SuiteConfig {
            scale: 0.02,
            max_datasets: 3,
            ..SuiteConfig::default()
        };
        let suite = build_suite(&config);
        assert_eq!(suite.len(), 3);
        assert_eq!(suite[0].id, 1);
    }
}
