//! A uniform interface over every clustering method the paper evaluates.

use std::time::{Duration, Instant};

use pfg_baselines::kmeans::Seeding;
use pfg_baselines::{hac, kmeans, spectral_embedding, KMeansConfig, Linkage, SpectralConfig};
use pfg_core::dbht::{dbht_for_planar_graph, dbht_for_tmfg};
use pfg_core::{pmfg, tmfg, DbhtRunStats, ParTdbht, TmfgConfig};
use pfg_data::CorrelationKernelStats;
use pfg_metrics::adjusted_rand_index;

use crate::suite::BenchDataset;

/// The clustering methods compared in §VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// PAR-TDBHT with the given TMFG prefix size.
    ParTdbht { prefix: usize },
    /// Sequential TMFG + DBHT (equivalent to `ParTdbht { prefix: 1 }` but
    /// reported separately, mirroring SEQ-TDBHT).
    SeqTdbht,
    /// PMFG construction + DBHT (the PMFG-DBHT baseline).
    PmfgDbht,
    /// Complete-linkage agglomerative clustering (COMP).
    CompleteLinkage,
    /// Average-linkage agglomerative clustering (AVG).
    AverageLinkage,
    /// Scalable k-means++ on the raw series (K-MEANS).
    KMeans,
    /// Spectral embedding followed by k-means (K-MEANS-S) with β neighbors.
    KMeansSpectral { neighbors: usize },
}

impl Method {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Method::ParTdbht { prefix } => format!("PAR-TDBHT-{prefix}"),
            Method::SeqTdbht => "SEQ-TDBHT".into(),
            Method::PmfgDbht => "PMFG-DBHT".into(),
            Method::CompleteLinkage => "COMP".into(),
            Method::AverageLinkage => "AVG".into(),
            Method::KMeans => "K-MEANS".into(),
            Method::KMeansSpectral { neighbors } => format!("K-MEANS-S(b={neighbors})"),
        }
    }
}

/// Construction statistics of a TMFG-based method: round counts plus the
/// fill-rate and staleness counters of the conflict-aware batch selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TmfgRunStats {
    /// Rounds of the outer construction loop (ρ).
    pub rounds: usize,
    /// Mean per-round fill rate (1.0 = every round hit its target).
    pub mean_fill_rate: f64,
    /// Vertex conflicts absorbed by next-best refills.
    pub conflicts: usize,
    /// Candidate-cache exhaustions that forced a full rescan.
    pub rescans: usize,
    /// Placements moved to a fresher face by intra-round placement.
    pub reassigned: usize,
}

impl TmfgRunStats {
    fn of(tmfg: &pfg_core::Tmfg) -> Self {
        Self {
            rounds: tmfg.rounds,
            mean_fill_rate: tmfg.mean_fill_rate(),
            conflicts: tmfg.total_conflicts(),
            rescans: tmfg.total_rescans(),
            reassigned: tmfg.total_reassigned(),
        }
    }
}

/// Construction statistics of the round-based parallel PMFG: how much of
/// the planarity-test work was decided speculatively (off the sequential
/// critical path) versus at commit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmfgRunStats {
    /// Rounds of the batched construction loop.
    pub rounds: usize,
    /// Candidate edges whose planarity was decided.
    pub candidates_examined: usize,
    /// Total rejected candidates (speculative + commit-time).
    pub rejections: usize,
    /// Rejections decided in a parallel phase — final by monotonicity.
    pub parallel_rejections: usize,
}

impl PmfgRunStats {
    fn of(p: &pfg_core::Pmfg) -> Self {
        Self {
            rounds: p.rounds,
            candidates_examined: p.candidates_examined,
            rejections: p.rejections,
            parallel_rejections: p.parallel_rejections,
        }
    }

    /// Fraction of all rejections decided speculatively in parallel
    /// (`1.0` = the entire rejection workload left the critical path).
    pub fn speculative_efficiency(&self) -> f64 {
        if self.rejections == 0 {
            1.0
        } else {
            self.parallel_rejections as f64 / self.rejections as f64
        }
    }

    /// Human-readable one-liner for the figure binaries' tables.
    pub fn summary_line(&self) -> String {
        format!(
            "pmfg rounds={} examined={} par_rej={}/{} spec_eff={:.3}",
            self.rounds,
            self.candidates_examined,
            self.parallel_rejections,
            self.rejections,
            self.speculative_efficiency()
        )
    }

    /// Suffix appended to a `Record`'s `params` field so the counters land
    /// in the machine-readable output too.
    pub fn params_suffix(&self) -> String {
        format!(
            ",rounds={},par_rej={},rej={}",
            self.rounds, self.parallel_rejections, self.rejections
        )
    }
}

/// Input-layer statistics of one method run: the tiled correlation
/// kernel's counters (shared by every method reading the data set's
/// matrices) plus the top-K prescreen's exact-fallback count for runs
/// that used it. Mirrors [`PmfgRunStats`] / [`DbhtRunStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorrelationRunStats {
    /// Matrix dimension (number of series).
    pub n: usize,
    /// Upper-triangle tile pairs the kernel computed.
    pub tiles_computed: usize,
    /// Peak intermediate allocation of the kernel in bytes (the flat
    /// z-profile buffer; the old path peaked at ≥ 2 n² output + `Vec<Vec>`
    /// rows).
    pub peak_intermediate_bytes: usize,
    /// Bytes of matrix output the kernel wrote.
    pub output_bytes: usize,
    /// Exact full-row fallback re-scans of the top-K prescreen (0 when
    /// the run used dense candidate scans).
    pub prescreen_rescans: usize,
}

impl CorrelationRunStats {
    /// Combines the data set's kernel counters with a run's prescreen
    /// fallback count.
    pub fn of(kernel: &CorrelationKernelStats, prescreen_rescans: usize) -> Self {
        Self {
            n: kernel.n,
            tiles_computed: kernel.tiles_computed,
            peak_intermediate_bytes: kernel.peak_intermediate_bytes,
            output_bytes: kernel.output_bytes,
            prescreen_rescans,
        }
    }

    /// Human-readable one-liner for the figure binaries' tables.
    pub fn summary_line(&self) -> String {
        format!(
            "corr n={} tiles={} peak_mb={:.1} out_mb={:.1} prescreen_rescans={}",
            self.n,
            self.tiles_computed,
            self.peak_intermediate_bytes as f64 / 1e6,
            self.output_bytes as f64 / 1e6,
            self.prescreen_rescans
        )
    }

    /// Suffix appended to a `Record`'s `params` field so the counters land
    /// in the machine-readable output too.
    pub fn params_suffix(&self) -> String {
        format!(
            ",tiles={},peak_bytes={},prescreen_rescans={}",
            self.tiles_computed, self.peak_intermediate_bytes, self.prescreen_rescans
        )
    }
}

/// The outcome of running one method on one data set.
#[derive(Debug, Clone)]
pub struct MethodOutput {
    /// Predicted cluster labels.
    pub labels: Vec<usize>,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// ARI against the data set's ground truth.
    pub ari: f64,
    /// Total filtered-graph edge weight, for graph-construction methods.
    pub edge_weight_sum: Option<f64>,
    /// Construction counters, for TMFG-based methods.
    pub tmfg_stats: Option<TmfgRunStats>,
    /// Construction counters, for the PMFG-based method.
    pub pmfg_stats: Option<PmfgRunStats>,
    /// DBHT back-half counters (HAC rounds, restricted-APSP output), for
    /// the DBHT-based methods.
    pub dbht_stats: Option<DbhtRunStats>,
    /// Input-layer counters (tiled kernel, prescreen fallbacks), for
    /// methods that consume the data set's derived matrices.
    pub correlation_stats: Option<CorrelationRunStats>,
}

/// Runs `method` on `dataset`, cutting dendrograms to the ground-truth
/// class count (the evaluation protocol of §VII).
pub fn run_method(method: Method, dataset: &BenchDataset) -> MethodOutput {
    let k = dataset.num_classes;
    let start = Instant::now();
    // The last element is `Some(prescreen_rescans)` for methods that read
    // the data set's derived matrices (their input went through the tiled
    // kernel), `None` for the raw-series baselines.
    let (labels, edge_weight_sum, tmfg_stats, pmfg_stats, dbht_stats, matrix_run) = match method {
        Method::ParTdbht { prefix } => {
            let result = ParTdbht::with_prefix(prefix)
                .run(&dataset.correlation, &dataset.dissimilarity)
                .expect("valid benchmark matrices");
            (
                result.clusters(k),
                Some(result.tmfg.edge_weight_sum()),
                Some(TmfgRunStats::of(&result.tmfg)),
                None,
                Some(result.dbht_stats),
                Some(result.tmfg.prescreen_rescans),
            )
        }
        Method::SeqTdbht => {
            let t = tmfg(&dataset.correlation, TmfgConfig::with_prefix(1))
                .expect("valid benchmark matrices");
            let weight = t.edge_weight_sum();
            let stats = TmfgRunStats::of(&t);
            let rescans = t.prescreen_rescans;
            let dbht = dbht_for_tmfg(&t, &dataset.dissimilarity).expect("valid DBHT input");
            (
                dbht.dendrogram.cut_to_clusters(k),
                Some(weight),
                Some(stats),
                None,
                Some(dbht.stats),
                Some(rescans),
            )
        }
        Method::PmfgDbht => {
            let p = pmfg(&dataset.correlation).expect("valid benchmark matrices");
            let weight = p.edge_weight_sum();
            let stats = PmfgRunStats::of(&p);
            let rescans = p.prescreen_rescans;
            let dbht =
                dbht_for_planar_graph(&p.graph, &dataset.dissimilarity).expect("valid DBHT input");
            (
                dbht.dendrogram.cut_to_clusters(k),
                Some(weight),
                None,
                Some(stats),
                Some(dbht.stats),
                Some(rescans),
            )
        }
        Method::CompleteLinkage => (
            hac(&dataset.dissimilarity, Linkage::Complete).cut_to_clusters(k),
            None,
            None,
            None,
            None,
            Some(0),
        ),
        Method::AverageLinkage => (
            hac(&dataset.dissimilarity, Linkage::Average).cut_to_clusters(k),
            None,
            None,
            None,
            None,
            Some(0),
        ),
        Method::KMeans => {
            let result = kmeans(
                &dataset.series,
                &KMeansConfig {
                    k,
                    seeding: Seeding::Scalable,
                    seed: 1,
                    ..KMeansConfig::default()
                },
            );
            (result.labels, None, None, None, None, None)
        }
        Method::KMeansSpectral { neighbors } => {
            let embedded = spectral_embedding(
                &dataset.series,
                &SpectralConfig {
                    neighbors,
                    dimensions: k,
                    iterations: 120,
                    seed: 1,
                },
            );
            let result = kmeans(
                &embedded,
                &KMeansConfig {
                    k,
                    seeding: Seeding::Scalable,
                    seed: 1,
                    ..KMeansConfig::default()
                },
            );
            (result.labels, None, None, None, None, None)
        }
    };
    let elapsed = start.elapsed();
    let ari = adjusted_rand_index(&dataset.labels, &labels);
    let correlation_stats = match (matrix_run, &dataset.kernel_stats) {
        (Some(rescans), Some(kernel)) => Some(CorrelationRunStats::of(kernel, rescans)),
        _ => None,
    };
    MethodOutput {
        labels,
        elapsed,
        ari,
        edge_weight_sum,
        tmfg_stats,
        pmfg_stats,
        dbht_stats,
        correlation_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{BenchDataset, SuiteConfig};
    use pfg_data::ucr_catalogue;

    #[test]
    fn every_method_runs_on_a_tiny_dataset() {
        let spec = ucr_catalogue()[14]; // SonyAIBORobotSurface2 (small, 2 classes)
        let config = SuiteConfig {
            scale: 0.03,
            ..SuiteConfig::default()
        };
        let dataset = BenchDataset::prepare(&spec, &config);
        let methods = [
            Method::ParTdbht { prefix: 10 },
            Method::SeqTdbht,
            Method::PmfgDbht,
            Method::CompleteLinkage,
            Method::AverageLinkage,
            Method::KMeans,
            Method::KMeansSpectral { neighbors: 8 },
        ];
        for method in methods {
            let output = run_method(method, &dataset);
            assert_eq!(output.labels.len(), dataset.len(), "{}", method.name());
            assert!(output.ari >= -1.0 && output.ari <= 1.0);
            assert!(output.elapsed.as_nanos() > 0);
            if method == Method::PmfgDbht {
                let stats = output.pmfg_stats.expect("PMFG reports its counters");
                assert!(stats.rounds >= 1);
                assert!(stats.parallel_rejections <= stats.rejections);
                assert!((0.0..=1.0).contains(&stats.speculative_efficiency()));
            } else {
                assert!(output.pmfg_stats.is_none(), "{}", method.name());
            }
            let dbht_based = matches!(
                method,
                Method::ParTdbht { .. } | Method::SeqTdbht | Method::PmfgDbht
            );
            if dbht_based {
                let stats = output.dbht_stats.expect("DBHT methods report counters");
                assert!(stats.hac_merges >= 1, "{}", method.name());
                assert!(stats.hac_rounds >= 1, "{}", method.name());
                assert!(
                    (0.0..=1.0).contains(&stats.restricted_fraction()),
                    "{}: fraction {}",
                    method.name(),
                    stats.restricted_fraction()
                );
            } else {
                assert!(output.dbht_stats.is_none(), "{}", method.name());
            }
            // Every matrix-consuming method carries the input kernel's
            // counters; the raw-series baselines carry none.
            let matrix_based = !matches!(method, Method::KMeans | Method::KMeansSpectral { .. });
            if matrix_based {
                let stats = output
                    .correlation_stats
                    .expect("matrix methods report kernel counters");
                assert_eq!(stats.n, dataset.len(), "{}", method.name());
                assert!(stats.tiles_computed >= 1, "{}", method.name());
                assert!(stats.output_bytes > 0, "{}", method.name());
                assert_eq!(stats.prescreen_rescans, 0, "{}: dense run", method.name());
            } else {
                assert!(output.correlation_stats.is_none(), "{}", method.name());
            }
        }
    }

    #[test]
    fn method_names_match_paper_labels() {
        assert_eq!(Method::ParTdbht { prefix: 10 }.name(), "PAR-TDBHT-10");
        assert_eq!(Method::SeqTdbht.name(), "SEQ-TDBHT");
        assert_eq!(Method::PmfgDbht.name(), "PMFG-DBHT");
        assert_eq!(Method::CompleteLinkage.name(), "COMP");
        assert_eq!(
            Method::KMeansSpectral { neighbors: 5 }.name(),
            "K-MEANS-S(b=5)"
        );
    }
}
