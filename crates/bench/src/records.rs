//! Reading, writing and diffing the machine-readable records that bench
//! runs and figure harnesses drop under `target/bench-records/`.
//!
//! The criterion shim appends one `BENCH_<bin>.json` file per bench binary
//! (a JSON array of flat objects with `bench`/`label` strings and `*_ns`
//! numbers). [`diff_directories`] compares two such directories and flags
//! mean-time regressions — the consumer half of the perf-trajectory loop
//! whose producer half has existed since the records were introduced. The
//! same module hosts the record-directory resolution and JSON-array writer
//! used by `fig6_prefix_quality` for its agreement table.
//!
//! All parsing is hand-rolled: the offline build has no `serde`, and the
//! record format is deliberately flat (string and number fields only).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use pfg_primitives::AllowFile;

/// A single flat JSON object: string and number fields only.
pub type FlatRecord = BTreeMap<String, JsonScalar>;

/// A scalar field of a record.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    /// A JSON string (unescaped).
    Str(String),
    /// A JSON number.
    Num(f64),
    /// `null` (emitted for non-finite numbers).
    Null,
}

impl JsonScalar {
    /// The string value, if this scalar is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this scalar is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonScalar::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// Parses a JSON array of flat objects (the record-file format). Nested
/// arrays/objects are rejected. Returns `None` on malformed input rather
/// than panicking, so a truncated record file degrades to "no baseline".
pub fn parse_flat_array(text: &str) -> Option<Vec<FlatRecord>> {
    let mut chars = text.chars().peekable();
    skip_ws(&mut chars);
    if chars.next()? != '[' {
        return None;
    }
    let mut records = Vec::new();
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            ']' => {
                chars.next();
                return Some(records);
            }
            ',' => {
                chars.next();
            }
            '{' => {
                records.push(parse_object(&mut chars)?);
            }
            _ => return None,
        }
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_object(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<FlatRecord> {
    if chars.next()? != '{' {
        return None;
    }
    let mut record = FlatRecord::new();
    loop {
        skip_ws(chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                return Some(record);
            }
            ',' => {
                chars.next();
            }
            '"' => {
                let key = parse_string(chars)?;
                skip_ws(chars);
                if chars.next()? != ':' {
                    return None;
                }
                skip_ws(chars);
                let value = match chars.peek()? {
                    '"' => JsonScalar::Str(parse_string(chars)?),
                    'n' => {
                        for expected in "null".chars() {
                            if chars.next()? != expected {
                                return None;
                            }
                        }
                        JsonScalar::Null
                    }
                    _ => JsonScalar::Num(parse_number(chars)?),
                };
                record.insert(key, value);
            }
            _ => return None,
        }
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let value = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(value)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn parse_number(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<f64> {
    let mut literal = String::new();
    while chars
        .peek()
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
    {
        literal.push(chars.next()?);
    }
    literal.parse().ok()
}

/// The directory bench records are written to: `BENCH_RECORD_DIR` if set,
/// otherwise `<target>/bench-records` derived from the running executable's
/// location (bench executables live in `<target>/<profile>/deps/`, figure
/// binaries in `<target>/<profile>/`).
pub fn record_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("BENCH_RECORD_DIR") {
        return PathBuf::from(dir);
    }
    let target = std::env::current_exe().ok().and_then(|exe| {
        let profile_dir = exe.parent()?;
        let profile_dir = if profile_dir.file_name().is_some_and(|n| n == "deps") {
            profile_dir.parent()?
        } else {
            profile_dir
        };
        Some(profile_dir.parent()?.to_path_buf())
    });
    target
        .unwrap_or_else(|| PathBuf::from("target"))
        .join("bench-records")
}

/// Escapes `s` as a JSON string literal (including the surrounding
/// quotes). The inverse of [`parse_flat_array`]'s string handling; shared
/// by every hand-rolled record emitter so free-form values (dataset names,
/// labels) cannot produce malformed record files.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes `lines` (single-line JSON objects) as a pretty-printed JSON array
/// at `path`, creating the parent directory if needed.
pub fn write_json_array(path: &Path, lines: &[String]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "[")?;
    for (i, line) in lines.iter().enumerate() {
        let comma = if i + 1 < lines.len() { "," } else { "" };
        writeln!(file, "  {line}{comma}")?;
    }
    writeln!(file, "]")
}

/// One benchmark present in both the baseline and the current records.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// `<file stem>/<label>` identifying the benchmark.
    pub key: String,
    /// Baseline mean nanoseconds.
    pub baseline_ns: f64,
    /// Current mean nanoseconds.
    pub current_ns: f64,
    /// Relative change in percent (positive = slower than baseline).
    pub change_pct: f64,
}

impl BenchComparison {
    /// Whether this comparison is a regression at `threshold_pct`.
    pub fn is_regression(&self, threshold_pct: f64) -> bool {
        self.change_pct > threshold_pct
    }
}

/// The outcome of diffing two record directories.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Benchmarks found in both directories, sorted by decreasing change.
    pub comparisons: Vec<BenchComparison>,
    /// Benchmarks present only in the current records (new benches).
    pub only_current: Vec<String>,
    /// Benchmarks present only in the baseline (removed benches).
    pub only_baseline: Vec<String>,
}

impl DiffReport {
    /// The comparisons regressing by more than `threshold_pct`.
    pub fn regressions(&self, threshold_pct: f64) -> Vec<&BenchComparison> {
        self.comparisons
            .iter()
            .filter(|c| c.is_regression(threshold_pct))
            .collect()
    }

    /// [`DiffReport::regressions`] minus the series matched by `allow` —
    /// the failing set for a gating CI run.
    pub fn gating_regressions(
        &self,
        threshold_pct: f64,
        allow: &BenchAllowlist,
    ) -> Vec<&BenchComparison> {
        self.comparisons
            .iter()
            .filter(|c| c.is_regression(threshold_pct) && !allow.is_allowed(&c.key))
            .collect()
    }
}

/// A per-series allowlist for the bench gate, mirroring `lint.allow`'s
/// discipline: one benchmark-key prefix per line, `#` comments and blank
/// lines ignored. An allowed series still prints its comparison — the
/// trajectory stays visible — but cannot fail the gate. Keep the file
/// short: an entry documents a series known to be scheduler- or
/// allocator-noisy on shared CI runners, not a license to regress.
///
/// Parsing and matching live in the shared [`pfg_primitives::allow`]
/// module (the linter's `lint.allow` uses the same line discipline); this
/// wrapper keeps the gate's load semantics — a missing file is an error.
#[derive(Debug, Clone, Default)]
pub struct BenchAllowlist {
    file: AllowFile,
}

impl BenchAllowlist {
    /// Parses allowlist text (prefix-per-line format described above).
    pub fn parse(text: &str) -> Self {
        BenchAllowlist {
            file: AllowFile::parse_prefixes(text),
        }
    }

    /// Loads and parses an allowlist file.
    ///
    /// # Errors
    /// Propagates the underlying read error (a missing file is an error:
    /// a gating CI step should fail loudly, not silently gate on nothing).
    pub fn load(path: &Path) -> std::io::Result<Self> {
        Ok(Self::parse(&std::fs::read_to_string(path)?))
    }

    /// Whether `key` (a `bench/label` benchmark key) matches any allowed
    /// prefix.
    pub fn is_allowed(&self, key: &str) -> bool {
        self.file.allows(None, key)
    }
}

/// Loads every `BENCH_*.json` file of `dir` into `(key, mean_ns)` pairs,
/// with the key combining the record's `bench` field (falling back to the
/// file stem) and its `label`.
fn load_means(dir: &Path) -> BTreeMap<String, f64> {
    let mut means = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return means;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        if !stem.starts_with("BENCH_") || path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        for record in parse_flat_array(&text).unwrap_or_default() {
            let bench = record
                .get("bench")
                .and_then(JsonScalar::as_str)
                .unwrap_or(&stem)
                .to_string();
            let Some(label) = record.get("label").and_then(JsonScalar::as_str) else {
                continue;
            };
            let Some(mean) = record.get("mean_ns").and_then(JsonScalar::as_f64) else {
                continue;
            };
            means.insert(format!("{bench}/{label}"), mean);
        }
    }
    means
}

/// Diffs the `BENCH_*.json` records of two directories by benchmark key.
pub fn diff_directories(baseline: &Path, current: &Path) -> DiffReport {
    let baseline_means = load_means(baseline);
    let mut current_means = load_means(current);
    let mut report = DiffReport::default();
    for (key, baseline_ns) in baseline_means {
        match current_means.remove(&key) {
            Some(current_ns) => {
                let change_pct = if baseline_ns > 0.0 {
                    (current_ns - baseline_ns) / baseline_ns * 100.0
                } else {
                    0.0
                };
                report.comparisons.push(BenchComparison {
                    key,
                    baseline_ns,
                    current_ns,
                    change_pct,
                });
            }
            None => report.only_baseline.push(key),
        }
    }
    report.only_current = current_means.into_keys().collect();
    report.comparisons.sort_by(|a, b| {
        b.change_pct
            .total_cmp(&a.change_pct)
            .then(a.key.cmp(&b.key))
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_criterion_shim_format() {
        let text = r#"[
  {"bench":"primitives","label":"sort/std/4096","samples":100,"mean_ns":12345,"median_ns":12000,"stddev_ns":42,"min_ns":11000,"max_ns":15000,"iqr_outliers":2},
  {"bench":"primitives","label":"max/\"quoted\"","samples":5,"mean_ns":1.5e3,"median_ns":null,"stddev_ns":0,"min_ns":0,"max_ns":0,"iqr_outliers":0}
]"#;
        let records = parse_flat_array(text).expect("valid array");
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0].get("label").and_then(JsonScalar::as_str),
            Some("sort/std/4096")
        );
        assert_eq!(
            records[0].get("mean_ns").and_then(JsonScalar::as_f64),
            Some(12345.0)
        );
        assert_eq!(
            records[1].get("label").and_then(JsonScalar::as_str),
            Some("max/\"quoted\"")
        );
        assert_eq!(
            records[1].get("mean_ns").and_then(JsonScalar::as_f64),
            Some(1500.0)
        );
        assert_eq!(records[1].get("median_ns"), Some(&JsonScalar::Null));
    }

    #[test]
    fn malformed_input_is_rejected_not_panicking() {
        assert!(parse_flat_array("").is_none());
        assert!(parse_flat_array("{}").is_none());
        assert!(parse_flat_array("[{\"a\":").is_none());
        assert!(parse_flat_array("[[1]]").is_none());
        assert_eq!(parse_flat_array("[]"), Some(Vec::new()));
    }

    #[test]
    fn diff_flags_regressions_and_membership_changes() {
        let dir = std::env::temp_dir().join(format!("pfg-bench-diff-{}", std::process::id()));
        let baseline = dir.join("baseline");
        let current = dir.join("current");
        std::fs::create_dir_all(&baseline).unwrap();
        std::fs::create_dir_all(&current).unwrap();
        std::fs::write(
            baseline.join("BENCH_a.json"),
            r#"[{"bench":"a","label":"x","mean_ns":100},{"bench":"a","label":"gone","mean_ns":10}]"#,
        )
        .unwrap();
        std::fs::write(
            current.join("BENCH_a.json"),
            r#"[{"bench":"a","label":"x","mean_ns":150},{"bench":"a","label":"new","mean_ns":5}]"#,
        )
        .unwrap();
        let report = diff_directories(&baseline, &current);
        assert_eq!(report.comparisons.len(), 1);
        let c = &report.comparisons[0];
        assert_eq!(c.key, "a/x");
        assert!((c.change_pct - 50.0).abs() < 1e-9);
        assert!(c.is_regression(30.0));
        assert!(!c.is_regression(60.0));
        assert_eq!(report.only_baseline, vec!["a/gone".to_string()]);
        assert_eq!(report.only_current, vec!["a/new".to_string()]);
        assert_eq!(report.regressions(30.0).len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn allowlist_matches_prefixes_and_ignores_comments() {
        let allow = BenchAllowlist::parse(
            "# noisy on shared runners\nexecutor/round_trip/spawn_per_call\n\nprimitives/write_ # inline comment\n",
        );
        assert!(allow.is_allowed("executor/round_trip/spawn_per_call/1024"));
        assert!(allow.is_allowed("primitives/write_max/10000"));
        assert!(!allow.is_allowed("executor/round_trip/work_stealing/1024"));
        assert!(!allow.is_allowed("primitives/sort/10000"));
        assert!(!BenchAllowlist::default().is_allowed("anything"));
    }

    #[test]
    fn gating_regressions_exclude_allowed_series() {
        let report = DiffReport {
            comparisons: vec![
                BenchComparison {
                    key: "a/noisy".into(),
                    baseline_ns: 100.0,
                    current_ns: 200.0,
                    change_pct: 100.0,
                },
                BenchComparison {
                    key: "a/real".into(),
                    baseline_ns: 100.0,
                    current_ns: 180.0,
                    change_pct: 80.0,
                },
            ],
            ..DiffReport::default()
        };
        let allow = BenchAllowlist::parse("a/noisy\n");
        assert_eq!(report.regressions(40.0).len(), 2);
        let gating = report.gating_regressions(40.0, &allow);
        assert_eq!(gating.len(), 1);
        assert_eq!(gating[0].key, "a/real");
    }

    #[test]
    fn missing_directories_yield_an_empty_report() {
        let report = diff_directories(
            Path::new("/nonexistent/baseline"),
            Path::new("/nonexistent/current"),
        );
        assert!(report.comparisons.is_empty());
        assert!(report.only_baseline.is_empty());
        assert!(report.only_current.is_empty());
    }

    #[test]
    fn write_json_array_round_trips_through_the_parser() {
        let dir = std::env::temp_dir().join(format!("pfg-bench-write-{}", std::process::id()));
        let path = dir.join("BENCH_roundtrip.json");
        let lines = vec![
            r#"{"bench":"t","label":"one","mean_ns":1}"#.to_string(),
            r#"{"bench":"t","label":"two","mean_ns":2}"#.to_string(),
        ];
        write_json_array(&path, &lines).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let records = parse_flat_array(&text).expect("valid array");
        assert_eq!(records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
