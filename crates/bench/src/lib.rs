//! Shared harness utilities for the experiment binaries that regenerate the
//! paper's tables and figures (see DESIGN.md §4 for the experiment index).
//!
//! Each binary in `src/bin/` reproduces one table or figure; this library
//! provides the pieces they share: building the UCR-like data-set suite at
//! a configurable scale, running every clustering method under a common
//! interface, timing, and tabular/JSON output.

pub mod methods;
pub mod suite;

pub use methods::{run_method, Method, MethodOutput};
pub use suite::{build_suite, parse_scale_from_args, BenchDataset, SuiteConfig};

use std::time::Duration;

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// A serialisable experiment record dumped by the harnesses so results can
/// be collected into EXPERIMENTS.md.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Record {
    /// Experiment id (e.g. "fig6").
    pub experiment: String,
    /// Data-set name.
    pub dataset: String,
    /// Method name (e.g. "PAR-TDBHT-10").
    pub method: String,
    /// Free-form parameter description (e.g. "prefix=10").
    pub params: String,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Adjusted Rand Index against ground truth, if measured.
    pub ari: Option<f64>,
    /// Additional metric value (e.g. edge-sum ratio or speedup).
    pub value: Option<f64>,
}

impl Record {
    /// Prints the record as a single JSON line (one record per line so the
    /// output of every harness can be concatenated and grepped).
    pub fn emit(&self) {
        println!("{}", serde_json::to_string(self).expect("record serialises"));
    }
}
