//! Shared harness utilities for the experiment binaries that regenerate the
//! paper's tables and figures (see DESIGN.md §4 for the experiment index).
//!
//! Each binary in `src/bin/` reproduces one table or figure; this library
//! provides the pieces they share: building the UCR-like data-set suite at
//! a configurable scale, running every clustering method under a common
//! interface, timing, and tabular/JSON output.

pub mod methods;
pub mod records;
pub mod suite;

pub use methods::{
    run_method, CorrelationRunStats, Method, MethodOutput, PmfgRunStats, TmfgRunStats,
};
pub use suite::{build_suite, parse_scale_from_args, BenchDataset, SuiteConfig};

use std::time::Duration;

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// A serialisable experiment record dumped by the harnesses so results can
/// be collected into EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct Record {
    /// Experiment id (e.g. "fig6").
    pub experiment: String,
    /// Data-set name.
    pub dataset: String,
    /// Method name (e.g. "PAR-TDBHT-10").
    pub method: String,
    /// Free-form parameter description (e.g. "prefix=10").
    pub params: String,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Adjusted Rand Index against ground truth, if measured.
    pub ari: Option<f64>,
    /// Additional metric value (e.g. edge-sum ratio or speedup).
    pub value: Option<f64>,
}

impl Record {
    /// Prints the record as a single JSON line (one record per line so the
    /// output of every harness can be concatenated and grepped).
    ///
    /// The JSON is written by hand — the offline build has no `serde` — and
    /// the field set is flat strings/numbers, so escaping string values is
    /// all that is needed.
    pub fn emit(&self) {
        println!("{}", self.to_json());
    }

    /// The record as a single-line JSON object.
    pub fn to_json(&self) -> String {
        use crate::records::json_string as json_str;
        fn json_f64(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                // JSON has no Infinity/NaN literals; null keeps lines parseable.
                "null".to_string()
            }
        }
        fn json_opt(x: Option<f64>) -> String {
            x.map_or_else(|| "null".to_string(), json_f64)
        }
        format!(
            "{{\"experiment\":{},\"dataset\":{},\"method\":{},\"params\":{},\"seconds\":{},\"ari\":{},\"value\":{}}}",
            json_str(&self.experiment),
            json_str(&self.dataset),
            json_str(&self.method),
            json_str(&self.params),
            json_f64(self.seconds),
            json_opt(self.ari),
            json_opt(self.value),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::Record;

    #[test]
    fn record_emits_valid_json_line() {
        let record = Record {
            experiment: "fig6".to_string(),
            dataset: "ucr\"1\"".to_string(),
            method: "PAR-TDBHT-10".to_string(),
            params: "prefix=10".to_string(),
            seconds: 1.25,
            ari: Some(0.5),
            value: None,
        };
        assert_eq!(
            record.to_json(),
            "{\"experiment\":\"fig6\",\"dataset\":\"ucr\\\"1\\\"\",\"method\":\"PAR-TDBHT-10\",\
             \"params\":\"prefix=10\",\"seconds\":1.25,\"ari\":0.5,\"value\":null}"
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let record = Record {
            experiment: String::new(),
            dataset: String::new(),
            method: String::new(),
            params: String::new(),
            seconds: f64::NAN,
            ari: Some(f64::INFINITY),
            value: Some(2.0),
        };
        let json = record.to_json();
        assert!(json.contains("\"seconds\":null"));
        assert!(json.contains("\"ari\":null"));
        assert!(json.contains("\"value\":2"));
    }
}
