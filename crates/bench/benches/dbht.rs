//! DBHT stage benchmarks: all-pairs shortest paths (the dominant cost),
//! direction + assignment, and the hierarchy step (Figure 5's categories).

use criterion::{criterion_group, criterion_main, Criterion};
use pfg_bench::{BenchDataset, SuiteConfig};
use pfg_core::dbht::{assignment, direction, hierarchy};
use pfg_core::{tmfg, TmfgConfig};
use pfg_data::ucr_catalogue;
use pfg_graph::{all_pairs_shortest_paths, WeightedGraph};
use std::hint::black_box;

fn bench_dbht_stages(c: &mut Criterion) {
    let spec = ucr_catalogue()
        .into_iter()
        .find(|s| s.name == "ECG5000")
        .expect("catalogue entry");
    let data = BenchDataset::prepare(
        &spec,
        &SuiteConfig {
            scale: 0.05,
            ..SuiteConfig::default()
        },
    );
    let t = tmfg(&data.correlation, TmfgConfig::with_prefix(10)).expect("valid");
    let mut dgraph = WeightedGraph::new(data.len());
    for (u, v, _) in t.graph.edges() {
        dgraph.add_edge(u, v, data.dissimilarity.get(u, v));
    }
    let spd = all_pairs_shortest_paths(&dgraph);
    let directed = direction::direct_tmfg_bubble_tree(&t.bubble_tree, &t.graph);
    let assigned = assignment::assign_vertices(&t.graph, &directed, &spd);

    let mut group = c.benchmark_group("dbht");
    group.sample_size(10);
    group.bench_function("apsp", |b| {
        b.iter(|| black_box(all_pairs_shortest_paths(&dgraph)))
    });
    group.bench_function("direction", |b| {
        b.iter(|| black_box(direction::direct_tmfg_bubble_tree(&t.bubble_tree, &t.graph)))
    });
    group.bench_function("assignment", |b| {
        b.iter(|| black_box(assignment::assign_vertices(&t.graph, &directed, &spd)))
    });
    group.bench_function("hierarchy", |b| {
        b.iter(|| black_box(hierarchy::build_hierarchy(&directed, &assigned, &spd)))
    });
    group.finish();
}

criterion_group!(benches, bench_dbht_stages);
criterion_main!(benches);
