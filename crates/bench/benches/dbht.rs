//! DBHT stage benchmarks: the dense APSP baseline against the restricted
//! (demand-driven) distance build, direction + assignment, and the
//! hierarchy step with both HAC engines (Figure 5's categories).

use criterion::{criterion_group, criterion_main, Criterion};
use pfg_bench::{BenchDataset, SuiteConfig};
use pfg_core::dbht::{
    assignment, converging_vertices, direction, dissimilarity_graph, hierarchy,
    restricted_distances,
};
use pfg_core::{tmfg, HacBackend, TmfgConfig};
use pfg_data::ucr_catalogue;
use pfg_graph::{all_pairs_shortest_paths, SourceRows};
use std::hint::black_box;

fn bench_dbht_stages(c: &mut Criterion) {
    let spec = ucr_catalogue()
        .into_iter()
        .find(|s| s.name == "ECG5000")
        .expect("catalogue entry");
    let data = BenchDataset::prepare(
        &spec,
        &SuiteConfig {
            scale: 0.05,
            ..SuiteConfig::default()
        },
    );
    let t = tmfg(&data.correlation, TmfgConfig::with_prefix(10)).expect("valid");
    let dgraph = dissimilarity_graph(&t.graph, &data.dissimilarity);
    let directed = direction::direct_tmfg_bubble_tree(&t.bubble_tree, &t.graph);
    let sources = converging_vertices(&directed);
    let rows = SourceRows::compute(&dgraph, &sources);
    let assigned = assignment::assign_vertices(&t.graph, &directed, &rows);
    let distances = restricted_distances(&dgraph, rows.clone(), &assigned);

    let mut group = c.benchmark_group("dbht");
    group.sample_size(10);
    group.bench_function("apsp_full", |b| {
        b.iter(|| black_box(all_pairs_shortest_paths(&dgraph)))
    });
    group.bench_function("apsp_restricted", |b| {
        b.iter(|| {
            let rows = SourceRows::compute(&dgraph, &sources);
            black_box(restricted_distances(&dgraph, rows, &assigned))
        })
    });
    group.bench_function("direction", |b| {
        b.iter(|| black_box(direction::direct_tmfg_bubble_tree(&t.bubble_tree, &t.graph)))
    });
    group.bench_function("assignment", |b| {
        b.iter(|| black_box(assignment::assign_vertices(&t.graph, &directed, &rows)))
    });
    group.bench_function("hierarchy", |b| {
        b.iter(|| black_box(hierarchy::build_hierarchy(&directed, &assigned, &distances)))
    });
    group.bench_function("hierarchy_nnchain", |b| {
        b.iter(|| {
            black_box(hierarchy::build_hierarchy_with(
                &directed,
                &assigned,
                &distances,
                HacBackend::NnChain,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dbht_stages);
criterion_main!(benches);
