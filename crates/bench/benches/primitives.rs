//! Table I microbenchmarks: parallel filter, sort, maximum, and the
//! priority concurrent writes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfg_primitives::{par_filter, par_max_index, par_sort_unstable_by, AtomicF64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[10_000usize, 100_000] {
        let data: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        group.bench_with_input(BenchmarkId::new("filter", n), &data, |b, data| {
            b.iter(|| black_box(par_filter(data, |x| *x > 0.5)))
        });
        group.bench_with_input(BenchmarkId::new("sort", n), &data, |b, data| {
            b.iter(|| {
                let mut v = data.clone();
                par_sort_unstable_by(&mut v, |a, b| a.partial_cmp(b).unwrap());
                black_box(v)
            })
        });
        group.bench_with_input(BenchmarkId::new("maximum", n), &data, |b, data| {
            b.iter(|| black_box(par_max_index(data, |x| *x)))
        });
        group.bench_with_input(BenchmarkId::new("write_max", n), &data, |b, data| {
            b.iter(|| {
                let cell = AtomicF64::new(f64::NEG_INFINITY);
                data.par_iter().for_each(|&x| {
                    cell.write_max(x);
                });
                black_box(cell.load())
            })
        });
        group.bench_with_input(BenchmarkId::new("write_add", n), &data, |b, data| {
            b.iter(|| {
                let cell = AtomicF64::new(0.0);
                data.par_iter().for_each(|&x| {
                    cell.write_add(x);
                });
                black_box(cell.load())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
