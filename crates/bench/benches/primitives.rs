//! Table I microbenchmarks: parallel filter, sort, maximum, and the
//! priority concurrent writes — plus executor microbenchmarks comparing
//! the persistent pool against the old spawn-per-call design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfg_primitives::{par_filter, par_max_index, par_sort_unstable_by, AtomicF64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::hint::black_box;

/// Worker count for the executor comparison. Fixed (rather than detected)
/// so the numbers are comparable across machines; oversubscription on
/// small boxes still measures exactly what we care about — per-round
/// scheduling overhead.
const EXECUTOR_THREADS: usize = 4;

/// One fork–join round the way the old shim executor ran it: spawn one
/// scoped thread per contiguous chunk, join them all, rebuild the result.
/// Kept here as the measurement baseline for the persistent pool.
fn spawn_per_call_map_sum(data: &[f64], threads: usize) -> f64 {
    let chunk_len = data.len().div_ceil(threads);
    let partials: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = data
            .chunks(chunk_len)
            .map(|chunk| s.spawn(move || chunk.iter().map(|&x| x * 1.000_1 + 0.5).sum::<f64>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    partials.iter().sum()
}

/// The same round on the shim's persistent pool (the pool is built once by
/// the caller; each call is one fork–join dispatch).
fn pool_map_sum(data: &[f64]) -> f64 {
    data.par_iter().map(|&x| x * 1.000_1 + 0.5).sum()
}

/// Executor round-trip overhead: many fine-grained fork–join rounds, the
/// pattern of TMFG gain recomputation and per-source shortest paths. The
/// `spawn_per_call` series is the old executor (fresh scoped threads per
/// round); `persistent_pool` is the new one (parked workers, chunk
/// dealing). Also reports parallel-sort throughput against the std sort.
fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(7);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(EXECUTOR_THREADS)
        .build()
        .expect("executor bench pool");
    // `rounds` small fork–join rounds per iteration: round-trip overhead
    // dominates, which is exactly the regime the persistent pool targets.
    for &(n, rounds) in &[(2_048usize, 64usize), (16_384, 16)] {
        let data: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        group.bench_with_input(
            BenchmarkId::new("round_trip/spawn_per_call", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for _ in 0..rounds {
                        acc += spawn_per_call_map_sum(data, EXECUTOR_THREADS);
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("round_trip/persistent_pool", n),
            &data,
            |b, data| {
                b.iter(|| {
                    pool.install(|| {
                        let mut acc = 0.0;
                        for _ in 0..rounds {
                            acc += pool_map_sum(data);
                        }
                        black_box(acc)
                    })
                })
            },
        );
    }
    for &n in &[50_000usize, 200_000] {
        let data: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        group.bench_with_input(
            BenchmarkId::new("sort/std_unstable", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut v = data.clone();
                    v.sort_unstable_by(f64::total_cmp);
                    black_box(v)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sort/par_merge_sort", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut v = data.clone();
                    pool.install(|| v.par_sort_unstable_by(f64::total_cmp));
                    black_box(v)
                })
            },
        );
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[10_000usize, 100_000] {
        let data: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        group.bench_with_input(BenchmarkId::new("filter", n), &data, |b, data| {
            b.iter(|| black_box(par_filter(data, |x| *x > 0.5)))
        });
        group.bench_with_input(BenchmarkId::new("sort", n), &data, |b, data| {
            b.iter(|| {
                let mut v = data.clone();
                par_sort_unstable_by(&mut v, f64::total_cmp);
                black_box(v)
            })
        });
        group.bench_with_input(BenchmarkId::new("maximum", n), &data, |b, data| {
            b.iter(|| black_box(par_max_index(data, |x| *x)))
        });
        group.bench_with_input(BenchmarkId::new("write_max", n), &data, |b, data| {
            b.iter(|| {
                let cell = AtomicF64::new(f64::NEG_INFINITY);
                data.par_iter().for_each(|&x| {
                    cell.write_max(x);
                });
                black_box(cell.load())
            })
        });
        group.bench_with_input(BenchmarkId::new("write_add", n), &data, |b, data| {
            b.iter(|| {
                let cell = AtomicF64::new(0.0);
                data.par_iter().for_each(|&x| {
                    cell.write_add(x);
                });
                black_box(cell.load())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_executor);
criterion_main!(benches);
