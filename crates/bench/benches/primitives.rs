//! Table I microbenchmarks: parallel filter, sort, maximum, and the
//! priority concurrent writes — plus executor microbenchmarks comparing
//! the work-stealing executor against the two designs it replaced: the
//! original spawn-per-call scoped threads and the PR 2 shared-FIFO batch
//! pool (replicated in [`fifo`] below as the measurement baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfg_primitives::{par_filter, par_max_index, par_sort_unstable_by, AtomicF64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::hint::black_box;

/// Worker count for the executor comparison. Fixed (rather than detected)
/// so the numbers are comparable across machines; oversubscription on
/// small boxes still measures exactly what we care about — per-round
/// scheduling overhead.
const EXECUTOR_THREADS: usize = 4;

/// A faithful replica of the PR 2 shared-FIFO batch executor, kept here as
/// the baseline the work-stealing executor is measured against at equal
/// thread counts: persistent workers parked on a condvar, one shared FIFO
/// of batches, `4 × threads` statically-decided pieces claimed through an
/// atomic counter, a `Mutex<Option<R>>` box per piece result, a
/// mutex-guarded `done` counter bumped per piece, and a `notify_all` per
/// round.
mod fifo {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    pub struct FifoPool {
        state: Arc<Shared>,
        workers: Vec<std::thread::JoinHandle<()>>,
        pub threads: usize,
    }

    struct Shared {
        queue: Mutex<VecDeque<Arc<Batch>>>,
        work_cv: Condvar,
        shutdown: AtomicBool,
    }

    struct Batch {
        runner: RunnerPtr,
        total: usize,
        next: AtomicUsize,
        done: Mutex<usize>,
        done_cv: Condvar,
    }

    struct RunnerPtr(*const (dyn Fn(usize) + Sync));
    // SAFETY: the pointee lives on the `run_batch` frame, which blocks
    // until every task completes — identical pinning argument to the PR 2
    // executor this replicates.
    unsafe impl Send for RunnerPtr {}
    // SAFETY: same pinning argument as `Send` directly above.
    unsafe impl Sync for RunnerPtr {}

    impl Batch {
        fn claim(&self) -> Option<usize> {
            if self.next.load(Ordering::Relaxed) >= self.total {
                return None;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            (i < self.total).then_some(i)
        }

        fn run_one(&self, i: usize) {
            // SAFETY: `i` was claimed, so the batch is still pinned.
            unsafe { (*self.runner.0)(i) };
            let mut done = self.done.lock().unwrap();
            *done += 1;
            if *done == self.total {
                self.done_cv.notify_all();
            }
        }
    }

    impl FifoPool {
        pub fn new(threads: usize) -> Self {
            let state = Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                work_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            });
            let workers = (0..threads.saturating_sub(1))
                .map(|_| {
                    let state = Arc::clone(&state);
                    std::thread::spawn(move || loop {
                        let batch = {
                            let mut queue = state.queue.lock().unwrap();
                            loop {
                                while queue
                                    .front()
                                    .is_some_and(|b| b.next.load(Ordering::Relaxed) >= b.total)
                                {
                                    queue.pop_front();
                                }
                                if let Some(batch) = queue.front() {
                                    break Arc::clone(batch);
                                }
                                if state.shutdown.load(Ordering::Acquire) {
                                    return;
                                }
                                queue = state.work_cv.wait(queue).unwrap();
                            }
                        };
                        while let Some(i) = batch.claim() {
                            batch.run_one(i);
                        }
                    })
                })
                .collect();
            FifoPool {
                state,
                workers,
                threads,
            }
        }

        /// One fork–join round, exactly as PR 2 ran it: enqueue, wake all
        /// workers, caller helps, per-slot mutex boxes collect results.
        pub fn run_batch<R, F>(&self, total: usize, task: F) -> Vec<R>
        where
            R: Send,
            F: Fn(usize) -> R + Sync,
        {
            let results: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
            let runner = |i: usize| {
                *results[i].lock().unwrap() = Some(task(i));
            };
            let runner: &(dyn Fn(usize) + Sync) = &runner;
            // SAFETY: lifetime erasure only; this frame blocks until
            // `done == total` below.
            let runner: &'static (dyn Fn(usize) + Sync) =
                // SAFETY: lifetime erasure only, per the note above.
                unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(runner) };
            let batch = Arc::new(Batch {
                runner: RunnerPtr(runner as *const _),
                total,
                next: AtomicUsize::new(0),
                done: Mutex::new(0),
                done_cv: Condvar::new(),
            });
            self.state
                .queue
                .lock()
                .unwrap()
                .push_back(Arc::clone(&batch));
            self.state.work_cv.notify_all();
            while let Some(i) = batch.claim() {
                batch.run_one(i);
            }
            let mut done = batch.done.lock().unwrap();
            while *done < total {
                done = batch.done_cv.wait(done).unwrap();
            }
            drop(done);
            results
                .into_iter()
                .map(|slot| slot.into_inner().unwrap().unwrap())
                .collect()
        }

        /// PR 2's static piece decision: `4 × threads` pieces of at least
        /// 128 items.
        pub fn pieces_for(&self, len: usize) -> usize {
            (self.threads * 4).min(len.div_ceil(128)).max(1)
        }
    }

    impl Drop for FifoPool {
        fn drop(&mut self) {
            {
                let _queue = self.state.queue.lock().unwrap();
                self.state.shutdown.store(true, Ordering::Release);
                self.state.work_cv.notify_all();
            }
            for w in self.workers.drain(..) {
                w.join().unwrap();
            }
        }
    }
}

/// One fork–join round the way the original shim executor ran it: spawn
/// one scoped thread per contiguous chunk, join them all.
fn spawn_per_call_map_sum(data: &[f64], threads: usize) -> f64 {
    let chunk_len = data.len().div_ceil(threads);
    let partials: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = data
            .chunks(chunk_len)
            .map(|chunk| s.spawn(move || chunk.iter().map(|&x| x * 1.000_1 + 0.5).sum::<f64>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    partials.iter().sum()
}

/// The same round on the PR 2 FIFO replica: static pieces, mutex result
/// boxes, `notify_all` per round.
fn fifo_map_sum(pool: &fifo::FifoPool, data: &[f64]) -> f64 {
    let pieces = pool.pieces_for(data.len());
    let piece_len = data.len().div_ceil(pieces);
    pool.run_batch(pieces, |p| {
        let lo = p * piece_len;
        let hi = ((p + 1) * piece_len).min(data.len());
        data[lo..hi].iter().map(|&x| x * 1.000_1 + 0.5).sum::<f64>()
    })
    .iter()
    .sum()
}

/// The same round on the shim's work-stealing executor (one split tree,
/// halves reclaimed inline when not stolen).
fn stealing_map_sum(data: &[f64]) -> f64 {
    data.par_iter().map(|&x| x * 1.000_1 + 0.5).sum()
}

/// Skewed per-item work: the last eighth of the index space spins ~48x
/// longer than the rest, so one statically-dealt tail piece gates a FIFO
/// round while the stealing executor keeps splitting the hot subtree.
fn skewed_work(x: f64, i: usize, n: usize) -> f64 {
    let spins = if i >= n - n / 8 { 48 } else { 1 };
    let mut acc = x;
    for _ in 0..spins {
        acc = acc * 1.000_000_1 + 0.5;
    }
    acc
}

/// Executor comparison: many fine-grained fork–join rounds (the pattern
/// of TMFG gain recomputation and per-source shortest paths) and a skewed
/// round, old designs vs the work-stealing executor at equal thread
/// counts. Also reports parallel-sort throughput against the std sort.
fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(7);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(EXECUTOR_THREADS)
        .build()
        .expect("executor bench pool");
    let fifo_pool = fifo::FifoPool::new(EXECUTOR_THREADS);
    // `rounds` small fork–join rounds per iteration: round-trip overhead
    // dominates, which is exactly the regime stealing's pop-back fast
    // path targets.
    for &(n, rounds) in &[(1_024usize, 128usize), (2_048, 64), (16_384, 16)] {
        let data: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        group.bench_with_input(
            BenchmarkId::new("round_trip/spawn_per_call", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for _ in 0..rounds {
                        acc += spawn_per_call_map_sum(data, EXECUTOR_THREADS);
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("round_trip/fifo_pool", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for _ in 0..rounds {
                        acc += fifo_map_sum(&fifo_pool, data);
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("round_trip/work_stealing", n),
            &data,
            |b, data| {
                b.iter(|| {
                    pool.install(|| {
                        let mut acc = 0.0;
                        for _ in 0..rounds {
                            acc += stealing_map_sum(data);
                        }
                        black_box(acc)
                    })
                })
            },
        );
    }
    // Deque-contention series: `with_max_len(1)` forces one job per item,
    // so the split tree floods the owner's deque with fine-grained jobs
    // while the other workers hammer its top with steal CASes — the
    // contended owner-pop vs thief-steal regime the lock-free Chase–Lev
    // deque exists for. The `owner_only` variant runs the same job flood
    // on a 1-thread pool: no thief ever CASes, isolating the uncontended
    // push/pop fast path that the old mutex ring paid a lock for on every
    // operation.
    {
        let owner_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("owner-only bench pool");
        for &n in &[1_024usize, 4_096] {
            let data: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
            group.bench_with_input(BenchmarkId::new("steal/contended", n), &data, |b, data| {
                b.iter(|| {
                    pool.install(|| {
                        let total: f64 = data
                            .par_iter()
                            .with_max_len(1)
                            .map(|&x| x * 1.000_1 + 0.5)
                            .sum();
                        black_box(total)
                    })
                })
            });
            group.bench_with_input(BenchmarkId::new("steal/owner_only", n), &data, |b, data| {
                b.iter(|| {
                    owner_pool.install(|| {
                        let total: f64 = data
                            .par_iter()
                            .with_max_len(1)
                            .map(|&x| x * 1.000_1 + 0.5)
                            .sum();
                        black_box(total)
                    })
                })
            });
        }
    }
    {
        let n = 32_768usize;
        let data: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        group.bench_with_input(BenchmarkId::new("skew/fifo_pool", n), &data, |b, data| {
            b.iter(|| {
                let pieces = fifo_pool.pieces_for(data.len());
                let piece_len = data.len().div_ceil(pieces);
                let partials = fifo_pool.run_batch(pieces, |p| {
                    let lo = p * piece_len;
                    let hi = ((p + 1) * piece_len).min(data.len());
                    data[lo..hi]
                        .iter()
                        .enumerate()
                        .map(|(k, &x)| skewed_work(x, lo + k, data.len()))
                        .sum::<f64>()
                });
                black_box(partials.iter().sum::<f64>())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("skew/work_stealing", n),
            &data,
            |b, data| {
                b.iter(|| {
                    pool.install(|| {
                        let total: f64 = data
                            .par_iter()
                            .enumerate()
                            .map(|(i, &x)| skewed_work(x, i, data.len()))
                            .sum();
                        black_box(total)
                    })
                })
            },
        );
    }
    for &n in &[50_000usize, 200_000] {
        let data: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        group.bench_with_input(
            BenchmarkId::new("sort/std_unstable", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut v = data.clone();
                    v.sort_unstable_by(f64::total_cmp);
                    black_box(v)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sort/par_merge_sort", n),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut v = data.clone();
                    pool.install(|| v.par_sort_unstable_by(f64::total_cmp));
                    black_box(v)
                })
            },
        );
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[10_000usize, 100_000] {
        let data: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        group.bench_with_input(BenchmarkId::new("filter", n), &data, |b, data| {
            b.iter(|| black_box(par_filter(data, |x| *x > 0.5)))
        });
        group.bench_with_input(BenchmarkId::new("sort", n), &data, |b, data| {
            b.iter(|| {
                let mut v = data.clone();
                par_sort_unstable_by(&mut v, f64::total_cmp);
                black_box(v)
            })
        });
        group.bench_with_input(BenchmarkId::new("maximum", n), &data, |b, data| {
            b.iter(|| black_box(par_max_index(data, |x| *x)))
        });
        group.bench_with_input(BenchmarkId::new("write_max", n), &data, |b, data| {
            b.iter(|| {
                let cell = AtomicF64::new(f64::NEG_INFINITY);
                data.par_iter().for_each(|&x| {
                    cell.write_max(x);
                });
                black_box(cell.load())
            })
        });
        group.bench_with_input(BenchmarkId::new("write_add", n), &data, |b, data| {
            b.iter(|| {
                let cell = AtomicF64::new(0.0);
                data.par_iter().for_each(|&x| {
                    cell.write_add(x);
                });
                black_box(cell.load())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_executor);
criterion_main!(benches);
