//! Baseline benchmarks: COMP/AVG linkage, k-means and the spectral
//! embedding (the methods PAR-TDBHT is compared against in Figure 3).

use criterion::{criterion_group, criterion_main, Criterion};
use pfg_baselines::{hac, kmeans, spectral_embedding, KMeansConfig, Linkage, SpectralConfig};
use pfg_bench::{BenchDataset, SuiteConfig};
use pfg_data::ucr_catalogue;
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let spec = ucr_catalogue()
        .into_iter()
        .find(|s| s.name == "CBF")
        .expect("catalogue entry");
    let data = BenchDataset::prepare(
        &spec,
        &SuiteConfig {
            scale: 0.3,
            ..SuiteConfig::default()
        },
    );
    let k = data.num_classes;
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("complete_linkage", |b| {
        b.iter(|| black_box(hac(&data.dissimilarity, Linkage::Complete)))
    });
    group.bench_function("average_linkage", |b| {
        b.iter(|| black_box(hac(&data.dissimilarity, Linkage::Average)))
    });
    group.bench_function("kmeans", |b| {
        b.iter(|| {
            black_box(kmeans(
                &data.series,
                &KMeansConfig {
                    k,
                    seed: 1,
                    ..KMeansConfig::default()
                },
            ))
        })
    });
    group.bench_function("spectral_embedding", |b| {
        b.iter(|| {
            black_box(spectral_embedding(
                &data.series,
                &SpectralConfig {
                    neighbors: 20,
                    dimensions: k,
                    iterations: 60,
                    seed: 1,
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
