//! Input-layer benchmarks: the tiled z-normalize-once correlation kernel
//! against the pre-tiling reference (normalised `Vec<Vec>` rows plus an
//! averaging symmetrise tail), the `f32`-storage variant, the fused
//! correlation+dissimilarity pass, and the top-K prescreen build that
//! feeds the sparse construction paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfg_data::{
    correlation_and_dissimilarity, correlation_matrix_f32, correlation_matrix_reference,
    correlation_matrix_with, TileConfig,
};
use pfg_graph::TopKCandidates;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Synthetic uniform-length series: class archetypes plus noise, the same
/// shape the UCR stand-ins use, generated directly so the benchmark's
/// input cost is nothing but the kernel's.
fn series(n: usize, len: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(7);
    let classes = 24;
    let archetypes: Vec<Vec<f64>> = (0..classes)
        .map(|_| {
            let freq = rng.gen_range(1.0..4.0);
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            (0..len)
                .map(|t| (freq * t as f64 / len as f64 * std::f64::consts::TAU + phase).sin())
                .collect()
        })
        .collect();
    (0..n)
        .map(|i| {
            archetypes[i % classes]
                .iter()
                .map(|&x| x + rng.gen_range(-0.35..0.35))
                .collect()
        })
        .collect()
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("correlation");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let data = series(n, 64);
        group.bench_with_input(BenchmarkId::new("tiled", n), &data, |b, data| {
            b.iter(|| black_box(correlation_matrix_with(data, TileConfig::default())))
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &data, |b, data| {
            b.iter(|| black_box(correlation_matrix_reference(data)))
        });
    }
    let data = series(2000, 64);
    group.bench_function(BenchmarkId::new("f32", 2000), |b| {
        b.iter(|| black_box(correlation_matrix_f32(&data, TileConfig::default())))
    });
    group.bench_function(BenchmarkId::new("fused_corr_diss", 2000), |b| {
        b.iter(|| black_box(correlation_and_dissimilarity(&data)))
    });
    group.finish();
}

fn bench_prescreen(c: &mut Criterion) {
    let mut group = c.benchmark_group("prescreen");
    group.sample_size(10);
    let data = series(2000, 64);
    let (matrix, _) = correlation_matrix_with(&data, TileConfig::default());
    group.bench_function(BenchmarkId::new("topk_build", 2000), |b| {
        b.iter(|| black_box(TopKCandidates::build(&matrix, 48)))
    });
    group.finish();
}

criterion_group!(benches, bench_kernel, bench_prescreen);
criterion_main!(benches);
