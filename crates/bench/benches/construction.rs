//! Filtered-graph construction benchmarks: sequential TMFG, prefix-batched
//! TMFG (the Figure 4/5 "tmfg" stage), and the PMFG — both the sequential
//! baseline and the round-based parallel construction, whose ratio tracks
//! the paper's headline TMFG-vs-PMFG runtime gap (Figures 1/3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfg_bench::{BenchDataset, SuiteConfig};
use pfg_core::{pmfg, pmfg_sequential, tmfg, TmfgConfig};
use pfg_data::ucr_catalogue;
use std::hint::black_box;

fn dataset(scale: f64) -> BenchDataset {
    let spec = ucr_catalogue()
        .into_iter()
        .find(|s| s.name == "ECG5000")
        .expect("catalogue entry");
    BenchDataset::prepare(
        &spec,
        &SuiteConfig {
            scale,
            ..SuiteConfig::default()
        },
    )
}

fn bench_tmfg(c: &mut Criterion) {
    let data = dataset(0.05);
    let mut group = c.benchmark_group("tmfg");
    group.sample_size(10);
    for prefix in [1usize, 10, 50, 200] {
        group.bench_with_input(BenchmarkId::new("prefix", prefix), &prefix, |b, &prefix| {
            b.iter(|| {
                black_box(tmfg(&data.correlation, TmfgConfig::with_prefix(prefix)).expect("valid"))
            })
        });
    }
    group.finish();
}

fn bench_pmfg(c: &mut Criterion) {
    // PMFG runs a planarity test per candidate edge; keep the sizes
    // moderate. "n" is the round-based parallel construction (the label
    // the seed used for the sequential one, so bench_diff tracks the
    // trajectory of the default `pmfg()` entry point across PRs);
    // "seq_n" is the one-candidate-at-a-time baseline on the same
    // scratch-reusing planarity core.
    let mut group = c.benchmark_group("pmfg");
    group.sample_size(10);
    for scale in [0.02, 0.05] {
        let data = dataset(scale);
        group.bench_function(BenchmarkId::new("n", data.len()), |b| {
            b.iter(|| black_box(pmfg(&data.correlation).expect("valid")))
        });
        group.bench_function(BenchmarkId::new("seq_n", data.len()), |b| {
            b.iter(|| black_box(pmfg_sequential(&data.correlation).expect("valid")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tmfg, bench_pmfg);
criterion_main!(benches);
