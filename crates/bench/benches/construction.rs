//! Filtered-graph construction benchmarks: sequential TMFG, prefix-batched
//! TMFG (the Figure 4/5 "tmfg" stage), and the PMFG baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfg_bench::{BenchDataset, SuiteConfig};
use pfg_core::{pmfg, tmfg, TmfgConfig};
use pfg_data::ucr_catalogue;
use std::hint::black_box;

fn dataset(scale: f64) -> BenchDataset {
    let spec = ucr_catalogue()
        .into_iter()
        .find(|s| s.name == "ECG5000")
        .expect("catalogue entry");
    BenchDataset::prepare(
        &spec,
        &SuiteConfig {
            scale,
            ..SuiteConfig::default()
        },
    )
}

fn bench_tmfg(c: &mut Criterion) {
    let data = dataset(0.05);
    let mut group = c.benchmark_group("tmfg");
    group.sample_size(10);
    for prefix in [1usize, 10, 50, 200] {
        group.bench_with_input(BenchmarkId::new("prefix", prefix), &prefix, |b, &prefix| {
            b.iter(|| {
                black_box(tmfg(&data.correlation, TmfgConfig::with_prefix(prefix)).expect("valid"))
            })
        });
    }
    group.finish();
}

fn bench_pmfg(c: &mut Criterion) {
    // PMFG runs a planarity test per candidate edge; keep it small.
    let data = dataset(0.02);
    let mut group = c.benchmark_group("pmfg");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("n", data.len()), |b| {
        b.iter(|| black_box(pmfg(&data.correlation).expect("valid")))
    });
    group.finish();
}

criterion_group!(benches, bench_tmfg, bench_pmfg);
criterion_main!(benches);
