//! End-to-end PAR-TDBHT benchmarks across prefix sizes and data-set sizes
//! (the headline Figure 3/4 comparison at criterion scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfg_bench::{BenchDataset, SuiteConfig};
use pfg_core::ParTdbht;
use pfg_data::ucr_catalogue;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let spec = ucr_catalogue()
        .into_iter()
        .find(|s| s.name == "ECG5000")
        .expect("catalogue entry");
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for &scale in &[0.03, 0.06] {
        let data = BenchDataset::prepare(
            &spec,
            &SuiteConfig {
                scale,
                ..SuiteConfig::default()
            },
        );
        for prefix in [1usize, 10] {
            group.bench_with_input(
                BenchmarkId::new(format!("prefix_{prefix}"), data.len()),
                &data,
                |b, data| {
                    b.iter(|| {
                        black_box(
                            ParTdbht::with_prefix(prefix)
                                .run(&data.correlation, &data.dissimilarity)
                                .expect("valid"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
