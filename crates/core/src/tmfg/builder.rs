//! Algorithm 1: parallel (prefix-batched) TMFG construction.

use pfg_graph::{SymmetricMatrix, WeightedGraph};
use rayon::prelude::*;

use crate::bubble_tree::BubbleTree;
use crate::error::CoreError;
use crate::face::Triangle;
use crate::tmfg::gains::GainTable;

/// Configuration for [`tmfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmfgConfig {
    /// Maximum number of vertices inserted per round (`PREFIX` in the
    /// paper). `prefix = 1` reproduces the sequential TMFG exactly.
    pub prefix: usize,
}

impl Default for TmfgConfig {
    fn default() -> Self {
        // The paper uses prefix 10 for most experiments as a good
        // speed/quality trade-off (§VII-A).
        Self { prefix: 10 }
    }
}

impl TmfgConfig {
    /// Configuration with the given prefix size.
    pub fn with_prefix(prefix: usize) -> Self {
        Self { prefix }
    }
}

/// One vertex insertion performed during TMFG construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Insertion {
    /// The inserted vertex.
    pub vertex: usize,
    /// The face it was inserted into.
    pub face: Triangle,
    /// The gain (sum of the three new edge weights).
    pub gain: f64,
    /// The round (iteration of the outer while loop) of the insertion.
    pub round: usize,
}

/// The result of TMFG construction: the filtered graph, the bubble tree
/// built alongside it (Algorithm 2), and the insertion trace.
#[derive(Debug, Clone)]
pub struct Tmfg {
    /// The filtered graph; edge weights are similarities from the input
    /// matrix.
    pub graph: WeightedGraph,
    /// The bubble tree constructed during insertion.
    pub bubble_tree: BubbleTree,
    /// The initial 4-clique (the four vertices with largest row sums, in
    /// decreasing row-sum order).
    pub initial_clique: [usize; 4],
    /// Every vertex insertion, in the order it was applied.
    pub insertions: Vec<Insertion>,
    /// Number of rounds of the outer loop (ρ in the paper's analysis).
    pub rounds: usize,
}

impl Tmfg {
    /// Sum of all edge weights of the filtered graph (used by the Figure 7
    /// edge-weight-sum-ratio experiment).
    pub fn edge_weight_sum(&self) -> f64 {
        self.graph.total_edge_weight()
    }

    /// Number of vertices of the filtered graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }
}

/// Builds the TMFG of the similarity matrix `s` (Algorithm 1).
///
/// # Errors
/// Returns [`CoreError::TooFewVertices`] if `s` has fewer than 4 rows and
/// [`CoreError::InvalidPrefix`] if `config.prefix == 0`.
pub fn tmfg(s: &SymmetricMatrix, config: TmfgConfig) -> Result<Tmfg, CoreError> {
    if config.prefix == 0 {
        return Err(CoreError::InvalidPrefix);
    }
    let n = s.n();
    if n < 4 {
        return Err(CoreError::TooFewVertices { got: n });
    }
    Ok(Builder::new(s, config).run())
}

/// Builds the sequential TMFG (equivalent to `prefix = 1`).
pub fn tmfg_sequential(s: &SymmetricMatrix) -> Result<Tmfg, CoreError> {
    tmfg(s, TmfgConfig::with_prefix(1))
}

/// Internal construction state for Algorithm 1.
struct Builder<'a> {
    s: &'a SymmetricMatrix,
    prefix: usize,
    graph: WeightedGraph,
    /// Face id → triangle.
    faces: Vec<Triangle>,
    /// Face id → still a face of the planar subgraph?
    face_active: Vec<bool>,
    /// Face id → bubble id owning the face.
    face_bubble: Vec<usize>,
    /// Vertex → still waiting to be inserted?
    remaining: Vec<bool>,
    num_remaining: usize,
    gains: GainTable,
    tree: BubbleTree,
    initial_clique: [usize; 4],
    insertions: Vec<Insertion>,
    rounds: usize,
}

impl<'a> Builder<'a> {
    fn new(s: &'a SymmetricMatrix, config: TmfgConfig) -> Self {
        let n = s.n();
        // Lines 1–2: the four vertices with the highest row sums and all six
        // edges among them.
        let top = s.top_rows_by_sum(4);
        let initial_clique = [top[0], top[1], top[2], top[3]];
        let mut graph = WeightedGraph::new(n);
        for i in 0..4 {
            for j in (i + 1)..4 {
                let (u, v) = (initial_clique[i], initial_clique[j]);
                graph.add_edge(u, v, s.get(u, v));
            }
        }
        // Line 3: the four triangular faces of the initial clique.
        let [v1, v2, v3, v4] = initial_clique;
        let faces = vec![
            Triangle::new(v1, v2, v3),
            Triangle::new(v1, v2, v4),
            Triangle::new(v1, v3, v4),
            Triangle::new(v2, v3, v4),
        ];
        // Line 4: the remaining vertices.
        let mut remaining = vec![true; n];
        for &v in &initial_clique {
            remaining[v] = false;
        }
        let num_remaining = n - 4;
        // Lines 6–7: the bubble tree starts with the initial clique and the
        // outer face {v1, v2, v3}.
        let outer_face = Triangle::new(v1, v2, v3);
        let tree = BubbleTree::new(initial_clique, outer_face, n);
        // Line 5: the best vertex for each initial face.
        let mut gains = GainTable::new(n);
        let face_best: Vec<Option<(usize, f64)>> = faces
            .par_iter()
            .map(|&t| GainTable::best_for_face(s, t, &remaining))
            .collect();
        let mut face_active = Vec::with_capacity(4);
        let mut face_bubble = Vec::with_capacity(4);
        for best in face_best {
            let id = gains.push_face();
            face_active.push(true);
            face_bubble.push(0);
            match best {
                Some((v, g)) => gains.record_best(id, Some(v), g),
                None => gains.record_best(id, None, f64::NEG_INFINITY),
            }
        }
        Self {
            s,
            prefix: config.prefix,
            graph,
            faces,
            face_active,
            face_bubble,
            remaining,
            num_remaining,
            gains,
            tree,
            initial_clique,
            insertions: Vec::with_capacity(num_remaining),
            rounds: 0,
        }
    }

    fn run(mut self) -> Tmfg {
        // Lines 8–17: insert the remaining vertices in rounds of up to
        // `prefix` vertices.
        while self.num_remaining > 0 {
            self.rounds += 1;
            let selected = self.select_batch();
            debug_assert!(
                !selected.is_empty(),
                "a round must insert at least one vertex"
            );
            self.apply_batch(&selected);
        }
        debug_assert!(self.graph.has_maximal_planar_edge_count());
        Tmfg {
            graph: self.graph,
            bubble_tree: self.tree,
            initial_clique: self.initial_clique,
            insertions: self.insertions,
            rounds: self.rounds,
        }
    }

    /// Lines 9–10: pick the `prefix` vertex–face pairs with the largest
    /// gains and resolve vertex conflicts in favour of the largest gain.
    /// Returns `(face_id, vertex, gain)` triples.
    fn select_batch(&self) -> Vec<(usize, usize, f64)> {
        // Gather the candidate (gain, face, vertex) triples from active
        // faces whose recorded best vertex is still available. The filter
        // and the lookup fuse into one parallel pass over the face ids,
        // preserving face order, so the sorted selection below is
        // independent of the worker count.
        let mut candidates: Vec<(usize, usize, f64)> = (0..self.faces.len())
            .into_par_iter()
            .filter(|&f| self.face_active[f])
            .filter_map(|f| {
                let v = self.gains.best_vertex(f)?;
                debug_assert!(self.remaining[v], "gain table entries must be fresh");
                Some((f, v, self.gains.best_gain(f)))
            })
            .collect();

        if self.prefix == 1 {
            // Fast path: a single parallel maximum (Line 9 simplification).
            let best = pfg_primitives::par_max_index(&candidates, |&(_, _, g)| g)
                .expect("at least one candidate while vertices remain");
            return vec![candidates[best]];
        }

        // Parallel sort by decreasing gain (ties: face id, then vertex id,
        // so the selection is deterministic).
        pfg_primitives::par_sort_unstable_by(&mut candidates, |a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });
        candidates.truncate(self.prefix);

        // Line 10: a vertex paired with multiple faces keeps only its
        // maximum-gain pair (the first occurrence in the sorted order).
        let mut taken = std::collections::HashSet::new();
        candidates
            .into_iter()
            .filter(|&(_, v, _)| taken.insert(v))
            .collect()
    }

    /// Lines 11–17: insert the selected vertices, update faces, the gain
    /// table and the bubble tree.
    fn apply_batch(&mut self, selected: &[(usize, usize, f64)]) {
        let round = self.rounds;
        // Line 11: remove the selected vertices from V first, so gain
        // recomputation below never proposes a vertex inserted this round.
        for &(_, v, _) in selected {
            debug_assert!(self.remaining[v]);
            self.remaining[v] = false;
            self.num_remaining -= 1;
        }

        let mut faces_to_refresh: Vec<usize> = Vec::new();
        for &(face_id, v, gain) in selected {
            let t = self.faces[face_id];
            let [a, b, c] = t.corners();
            // Line 13: add the three edges from v to the face corners.
            self.graph.add_edge(v, a, self.s.get(v, a));
            self.graph.add_edge(v, b, self.s.get(v, b));
            self.graph.add_edge(v, c, self.s.get(v, c));
            // Line 17: update the bubble tree (Algorithm 2).
            let bubble = self.face_bubble[face_id];
            let new_bubble = self.tree.insert(v, t, bubble);
            // Line 14: replace face t by the three new faces.
            self.face_active[face_id] = false;
            for new_face in t.split_with(v) {
                let id = self.gains.push_face();
                self.faces.push(new_face);
                self.face_active.push(true);
                self.face_bubble.push(new_bubble);
                debug_assert_eq!(id, self.faces.len() - 1);
                faces_to_refresh.push(id);
            }
            // Line 15: faces that previously had v as their best vertex.
            for &f in self.gains.faces_possibly_best_for(v) {
                if self.face_active[f] && self.gains.best_vertex(f) == Some(v) {
                    faces_to_refresh.push(f);
                }
            }
            self.insertions.push(Insertion {
                vertex: v,
                face: t,
                gain,
                round,
            });
        }

        faces_to_refresh.sort_unstable();
        faces_to_refresh.dedup();

        // Line 16: recompute the best vertex for the affected faces, in
        // parallel (each face scans the remaining vertex set).
        let s = self.s;
        let remaining = &self.remaining;
        let faces = &self.faces;
        let updates: Vec<(usize, Option<(usize, f64)>)> = faces_to_refresh
            .par_iter()
            .map(|&f| (f, GainTable::best_for_face(s, faces[f], remaining)))
            .collect();
        for (f, best) in updates {
            match best {
                Some((v, g)) => self.gains.record_best(f, Some(v), g),
                None => self.gains.record_best(f, None, f64::NEG_INFINITY),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The correlation matrix of Figure 12 in the paper's appendix.
    fn appendix_matrix() -> SymmetricMatrix {
        let rows = vec![
            1.0, 0.8, 0.4, 0.8, 0.8, 0.4, //
            0.8, 1.0, 0.41, 0.9, 0.4, 0.0, //
            0.4, 0.41, 1.0, 0.0, 0.4, 0.42, //
            0.8, 0.9, 0.0, 1.0, 0.8, 0.8, //
            0.8, 0.4, 0.4, 0.8, 1.0, 0.8, //
            0.4, 0.0, 0.42, 0.8, 0.8, 1.0,
        ];
        SymmetricMatrix::from_rows(6, rows)
    }

    fn random_similarity(n: usize, seed: u64) -> SymmetricMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        SymmetricMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { rng.gen_range(0.0..1.0) })
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let s = SymmetricMatrix::filled(3, 1.0);
        assert!(matches!(
            tmfg(&s, TmfgConfig::default()),
            Err(CoreError::TooFewVertices { got: 3 })
        ));
        let s = SymmetricMatrix::filled(5, 1.0);
        assert!(matches!(
            tmfg(&s, TmfgConfig::with_prefix(0)),
            Err(CoreError::InvalidPrefix)
        ));
    }

    #[test]
    fn four_vertices_is_just_the_clique() {
        let s = SymmetricMatrix::filled(4, 0.5);
        let t = tmfg_sequential(&s).unwrap();
        assert_eq!(t.graph.num_edges(), 6);
        assert_eq!(t.bubble_tree.len(), 1);
        assert_eq!(t.rounds, 0);
        assert!(t.insertions.is_empty());
    }

    #[test]
    fn appendix_prefix_one_matches_paper_example() {
        // Figure 13(a)-(d): with PREFIX = 1 the algorithm starts from the
        // clique {0,1,3,4}, inserts 5 into {0,3,4} and then 2 into {0,4,5}.
        let s = appendix_matrix();
        let t = tmfg_sequential(&s).unwrap();
        let mut clique = t.initial_clique;
        clique.sort_unstable();
        assert_eq!(clique, [0, 1, 3, 4]);
        assert_eq!(t.insertions.len(), 2);
        assert_eq!(t.insertions[0].vertex, 5);
        assert_eq!(t.insertions[0].face, Triangle::new(0, 3, 4));
        assert_eq!(t.insertions[1].vertex, 2);
        assert_eq!(t.insertions[1].face, Triangle::new(0, 4, 5));
        assert_eq!(t.rounds, 2);
    }

    #[test]
    fn appendix_prefix_three_matches_paper_example() {
        // Figure 13(e)-(h): with PREFIX = 3, vertices 5 and 2 are inserted
        // in the same round; 2 goes into {0,1,4} because {0,4,5} does not
        // exist yet.
        let s = appendix_matrix();
        let t = tmfg(&s, TmfgConfig::with_prefix(3)).unwrap();
        assert_eq!(t.rounds, 1);
        assert_eq!(t.insertions.len(), 2);
        let by_vertex: std::collections::HashMap<usize, Triangle> = t
            .insertions
            .iter()
            .map(|ins| (ins.vertex, ins.face))
            .collect();
        assert_eq!(by_vertex[&5], Triangle::new(0, 3, 4));
        assert_eq!(by_vertex[&2], Triangle::new(0, 1, 4));
    }

    #[test]
    fn tmfg_has_maximal_planar_structure() {
        for seed in 0..3 {
            let n = 40;
            let s = random_similarity(n, seed);
            for prefix in [1, 2, 5, 50] {
                let t = tmfg(&s, TmfgConfig::with_prefix(prefix)).unwrap();
                assert_eq!(t.graph.num_edges(), 3 * n - 6, "prefix {prefix}");
                assert!(t.graph.is_connected());
                assert!(pfg_graph::is_planar(&t.graph), "TMFG must be planar");
                assert_eq!(t.bubble_tree.len(), n - 3);
                t.bubble_tree.check_invariants().unwrap();
                // Every non-clique vertex inserted exactly once.
                assert_eq!(t.insertions.len(), n - 4);
            }
        }
    }

    #[test]
    fn edge_weights_come_from_similarity_matrix() {
        let s = random_similarity(25, 7);
        let t = tmfg_sequential(&s).unwrap();
        for (u, v, w) in t.graph.edges() {
            assert!((w - s.get(u, v)).abs() < 1e-12);
        }
    }

    #[test]
    fn prefix_one_is_greedy_optimal_each_step() {
        // For the sequential TMFG, each insertion's gain must be the best
        // available at that time; in particular gains of later insertions
        // can exceed earlier ones only if enabled by newly created faces.
        let s = random_similarity(20, 3);
        let t = tmfg_sequential(&s).unwrap();
        assert_eq!(t.rounds, 16);
        for ins in &t.insertions {
            assert!(ins.gain.is_finite());
        }
    }

    #[test]
    fn larger_prefix_needs_fewer_rounds() {
        let s = random_similarity(60, 11);
        let seq = tmfg(&s, TmfgConfig::with_prefix(1)).unwrap();
        let par = tmfg(&s, TmfgConfig::with_prefix(20)).unwrap();
        assert_eq!(seq.rounds, 56);
        assert!(par.rounds < seq.rounds);
        // Quality stays close: parallel edge weight sum within a few percent.
        let ratio = par.edge_weight_sum() / seq.edge_weight_sum();
        assert!(ratio > 0.85 && ratio < 1.05, "ratio {ratio}");
    }

    #[test]
    fn huge_prefix_still_valid() {
        let n = 30;
        let s = random_similarity(n, 5);
        let t = tmfg(&s, TmfgConfig::with_prefix(10_000)).unwrap();
        assert_eq!(t.graph.num_edges(), 3 * n - 6);
        assert!(pfg_graph::is_planar(&t.graph));
    }

    #[test]
    fn parallel_pool_matches_sequential_reference() {
        // The gain recomputation, candidate gathering and batch selection
        // run on the persistent pool; their results must be bit-identical
        // to the single-threaded reference regardless of the worker count
        // (candidate order is preserved and the selection sort's
        // comparator is total).
        //
        // n is chosen so the parallel path actually dispatches: the shim
        // runs pipelines under 512 items inline, and select_batch iterates
        // every tracked face id (4 + 3·(n − 4)), so n = 300 pushes the
        // candidate-gathering pipeline well past the threshold in the
        // later rounds. With n = 60 both runs would execute the identical
        // inline code path and the comparison would be vacuous.
        let n = 300;
        let s = random_similarity(n, 13);
        for prefix in [1, 10] {
            let sequential = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap()
                .install(|| tmfg(&s, TmfgConfig::with_prefix(prefix)).unwrap());
            let parallel = rayon::ThreadPoolBuilder::new()
                .num_threads(4)
                .build()
                .unwrap()
                .install(|| tmfg(&s, TmfgConfig::with_prefix(prefix)).unwrap());
            assert_eq!(
                sequential.insertions, parallel.insertions,
                "prefix {prefix}: insertion traces (incl. gains) must match"
            );
            assert_eq!(sequential.initial_clique, parallel.initial_clique);
            assert_eq!(sequential.rounds, parallel.rounds);
            let seq_edges: Vec<_> = sequential.graph.edges().collect();
            let par_edges: Vec<_> = parallel.graph.edges().collect();
            assert_eq!(
                seq_edges, par_edges,
                "prefix {prefix}: edge sets must match"
            );
        }
    }

    #[test]
    fn initial_clique_has_highest_row_sums() {
        let s = random_similarity(30, 9);
        let t = tmfg_sequential(&s).unwrap();
        let sums = s.row_sums();
        let min_clique_sum = t
            .initial_clique
            .iter()
            .map(|&v| sums[v])
            .fold(f64::INFINITY, f64::min);
        let max_other = (0..30)
            .filter(|v| !t.initial_clique.contains(v))
            .map(|v| sums[v])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(min_clique_sum >= max_other);
    }
}
