//! Algorithm 1: parallel (prefix-batched) TMFG construction.
//!
//! Batch selection (Lines 9–10) is conflict-aware: the round keeps drawing
//! the globally next-best `(face, vertex, gain)` pair — a face whose
//! candidate loses a vertex conflict immediately re-enters with its
//! next-best vertex — until `PREFIX` distinct vertices are selected, the
//! remaining pool is empty, or every active face is used. Conflicts
//! therefore shrink neither the batch nor the candidate pool: the round
//! inserts exactly `min(prefix, |remaining|, |active faces|)` vertices,
//! matching the paper's semantics where near-sequential quality at
//! moderate prefixes depends on contested faces staying in the running
//! with fresh next-best choices rather than sitting the round out.

use std::collections::BinaryHeap;

use pfg_graph::{SimilaritySource, TopKCandidates, WeightedGraph};
use rayon::prelude::*;

use crate::bubble_tree::BubbleTree;
use crate::error::CoreError;
use crate::face::Triangle;
use crate::tmfg::gains::{GainTable, NextBest};

/// How a selected batch is placed within a round.
///
/// The quality difference between the two modes is dominated by *arrival
/// cohorts*: when a cluster of mutually-similar vertices first becomes the
/// best remaining choice, a whole batch of them is selected in one round.
/// Placed simultaneously, they scatter across the stale round-start faces
/// (none of which belong to their cluster yet) and the cluster never forms
/// a coherent region of the filtered graph; placed with intra-round
/// freshness, the first arrival nucleates and the rest of the cohort
/// attaches to the faces it creates, exactly as the sequential algorithm
/// would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchFreshness {
    /// All selected insertions are applied against the round-start face
    /// set, as written in the paper's Algorithm 1 (and its Figure 13
    /// walkthrough): a vertex selected this round can never be placed into
    /// a face created this round.
    Simultaneous,
    /// The selected cohort is placed one vertex at a time in decreasing
    /// fresh-gain order, and the three faces created by each placement are
    /// immediately available to the rest of the cohort. Selection (which
    /// vertices enter this round) still uses round-start information only,
    /// so the round structure and parallel gain maintenance of Algorithm 1
    /// are unchanged; the O(batch²) sequential placement pass is
    /// negligible next to the parallel candidate refresh. This is the
    /// default: it removes the arrival-cohort quality cliff and tracks
    /// sequential TMFG quality closely at every prefix.
    #[default]
    IntraRound,
}

/// Configuration for [`tmfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmfgConfig {
    /// Maximum number of vertices inserted per round (`PREFIX` in the
    /// paper). `prefix = 1` reproduces the sequential TMFG exactly.
    pub prefix: usize,
    /// Whether batch placement sees faces created earlier in the same
    /// round (see [`BatchFreshness`]).
    pub freshness: BatchFreshness,
}

impl Default for TmfgConfig {
    fn default() -> Self {
        // The paper uses prefix 10 for most experiments as a good
        // speed/quality trade-off (§VII-A).
        Self {
            prefix: 10,
            freshness: BatchFreshness::default(),
        }
    }
}

impl TmfgConfig {
    /// Configuration with the given prefix size (default freshness).
    pub fn with_prefix(prefix: usize) -> Self {
        Self {
            prefix,
            ..Self::default()
        }
    }

    /// The same configuration with the paper's literal simultaneous batch
    /// placement (Figure 13 semantics) instead of intra-round freshness.
    pub fn simultaneous(self) -> Self {
        Self {
            freshness: BatchFreshness::Simultaneous,
            ..self
        }
    }
}

/// One vertex insertion performed during TMFG construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Insertion {
    /// The inserted vertex.
    pub vertex: usize,
    /// The face it was inserted into.
    pub face: Triangle,
    /// The gain (sum of the three new edge weights).
    pub gain: f64,
    /// The round (iteration of the outer while loop) of the insertion.
    pub round: usize,
}

/// Per-round accounting of the batch selector: how full the round was and
/// how much staleness (conflicts, cache exhaustion) it had to absorb.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundStats {
    /// Upper bound on this round's insertions:
    /// `min(prefix, |remaining|, |active faces|)` at round start.
    pub target: usize,
    /// Distinct vertices actually inserted this round. The conflict-aware
    /// selector always fills the round: `selected == target`.
    pub selected: usize,
    /// Drawn candidates discarded because their vertex was already taken
    /// by a higher-gain pair this round (each one triggers a next-best
    /// refill for the losing face).
    pub conflicts: usize,
    /// Refills that outran the face's cached candidate list and fell back
    /// to a full rescan of the remaining pool.
    pub rescans: usize,
    /// Cohort vertices placed into a face created earlier in the same
    /// round instead of their round-start face (always 0 under
    /// [`BatchFreshness::Simultaneous`]). A high count means the
    /// round-start information was stale and intra-round freshness
    /// recovered quality the simultaneous placement would have lost.
    pub reassigned: usize,
    /// Wall time of this round's placement pass in nanoseconds — the
    /// O(batch²) sequential loop of [`BatchFreshness::IntraRound`] (or the
    /// straight-line application under
    /// [`BatchFreshness::Simultaneous`]). The construction bench folds
    /// this into the per-stage breakdown: if intra-round placement ever
    /// dominated the parallel candidate refresh it pays for, the freshness
    /// default would need revisiting.
    pub placement_ns: u64,
}

/// `placement_ns` is wall-clock noise, not algorithm state: two
/// byte-identical constructions time differently, so the timer is excluded
/// from equality. The differential tests compare `round_stats` across
/// thread counts, prescreen modes and chaos seeds, and must keep passing
/// bit-for-bit on every *semantic* counter.
impl PartialEq for RoundStats {
    fn eq(&self, other: &Self) -> bool {
        self.target == other.target
            && self.selected == other.selected
            && self.conflicts == other.conflicts
            && self.rescans == other.rescans
            && self.reassigned == other.reassigned
    }
}

impl Eq for RoundStats {}

impl RoundStats {
    /// Fraction of the round's target that was actually inserted (1.0 for
    /// the conflict-aware selector; historical selectors under-filled).
    pub fn fill_rate(&self) -> f64 {
        if self.target == 0 {
            1.0
        } else {
            self.selected as f64 / self.target as f64
        }
    }
}

/// The result of TMFG construction: the filtered graph, the bubble tree
/// built alongside it (Algorithm 2), and the insertion trace.
#[derive(Debug, Clone)]
pub struct Tmfg {
    /// The filtered graph; edge weights are similarities from the input
    /// matrix.
    pub graph: WeightedGraph,
    /// The bubble tree constructed during insertion.
    pub bubble_tree: BubbleTree,
    /// The initial 4-clique (the four vertices with largest row sums, in
    /// decreasing row-sum order).
    pub initial_clique: [usize; 4],
    /// Every vertex insertion, in the order it was applied.
    pub insertions: Vec<Insertion>,
    /// Number of rounds of the outer loop (ρ in the paper's analysis).
    pub rounds: usize,
    /// Per-round fill-rate and staleness counters, one entry per round.
    pub round_stats: Vec<RoundStats>,
    /// Candidate refreshes the top-K prescreen could not certify as exact
    /// and that fell back to a full scan (always 0 on the dense path).
    pub prescreen_rescans: usize,
}

impl Tmfg {
    /// Sum of all edge weights of the filtered graph (used by the Figure 7
    /// edge-weight-sum-ratio experiment).
    pub fn edge_weight_sum(&self) -> f64 {
        self.graph.total_edge_weight()
    }

    /// Number of vertices of the filtered graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Mean per-round fill rate (1.0 when every round inserted its full
    /// target; 1.0 for a construction with no rounds).
    pub fn mean_fill_rate(&self) -> f64 {
        if self.round_stats.is_empty() {
            1.0
        } else {
            self.round_stats
                .iter()
                .map(RoundStats::fill_rate)
                .sum::<f64>()
                / self.round_stats.len() as f64
        }
    }

    /// Total vertex conflicts absorbed by the selector across all rounds.
    pub fn total_conflicts(&self) -> usize {
        self.round_stats.iter().map(|r| r.conflicts).sum()
    }

    /// Total candidate-cache exhaustions that forced a full rescan.
    pub fn total_rescans(&self) -> usize {
        self.round_stats.iter().map(|r| r.rescans).sum()
    }

    /// Total cohort vertices whose placement moved to a fresher face than
    /// their round-start selection (staleness absorbed by intra-round
    /// placement).
    pub fn total_reassigned(&self) -> usize {
        self.round_stats.iter().map(|r| r.reassigned).sum()
    }

    /// Total nanoseconds spent in the sequential placement pass across all
    /// rounds (see [`RoundStats::placement_ns`]).
    pub fn total_placement_ns(&self) -> u64 {
        self.round_stats.iter().map(|r| r.placement_ns).sum()
    }
}

/// Builds the TMFG of the similarity matrix `s` (Algorithm 1).
///
/// # Errors
/// Returns [`CoreError::TooFewVertices`] if `s` has fewer than 4 rows,
/// [`CoreError::InvalidPrefix`] if `config.prefix == 0`, and
/// [`CoreError::NanSimilarity`] if any off-diagonal entry is NaN — the
/// selector never picks NaN gains, so a vertex with an all-NaN row could
/// never be inserted and construction would not terminate.
pub fn tmfg<S: SimilaritySource>(s: &S, config: TmfgConfig) -> Result<Tmfg, CoreError> {
    if config.prefix == 0 {
        return Err(CoreError::InvalidPrefix);
    }
    let n = s.n();
    if n < 4 {
        return Err(CoreError::TooFewVertices { got: n });
    }
    // Parallel scan (one row per task, matching the builder's other
    // whole-matrix passes); the trait default's `min` makes the reported
    // entry deterministic.
    if let Some((row, col)) = s.find_nan() {
        return Err(CoreError::NanSimilarity { row, col });
    }
    Ok(Builder::new(s, config, None).run())
}

/// Builds the sequential TMFG (equivalent to `prefix = 1`).
pub fn tmfg_sequential<S: SimilaritySource>(s: &S) -> Result<Tmfg, CoreError> {
    tmfg(s, TmfgConfig::with_prefix(1))
}

/// Builds the TMFG through the top-K sparse prescreen: the initial clique
/// comes from the prescreen's exact row sums, and candidate refreshes
/// gather from the corners' top-K neighbor lists whenever the K-th-weight
/// bound certifies the pooled result equals the full scan's (falling back
/// to the full scan — counted in [`Tmfg::prescreen_rescans`] — when it
/// cannot). The constructed graph is therefore *identical* to
/// [`tmfg`]'s, at a fraction of the per-round scan work for `K ≪ n`.
///
/// # Errors
/// The same conditions as [`tmfg`]; the NaN scan reuses the entry the
/// prescreen pass recorded, so no extra `O(n²)` sweep runs here.
///
/// # Panics
/// Panics if `topk` was built over a different number of vertices.
pub fn tmfg_prescreened<S: SimilaritySource>(
    s: &S,
    topk: &TopKCandidates,
    config: TmfgConfig,
) -> Result<Tmfg, CoreError> {
    assert_eq!(
        topk.n(),
        s.n(),
        "prescreen and similarity source disagree on vertex count"
    );
    if config.prefix == 0 {
        return Err(CoreError::InvalidPrefix);
    }
    let n = s.n();
    if n < 4 {
        return Err(CoreError::TooFewVertices { got: n });
    }
    if let Some((row, col)) = topk.nan_entry() {
        return Err(CoreError::NanSimilarity { row, col });
    }
    Ok(Builder::new(s, config, Some(topk)).run())
}

/// A drawn `(face, vertex, gain)` candidate in the round's selection heap.
///
/// The heap pops the maximum gain first; ties break towards the smaller
/// face id, then the smaller vertex id, so the pop order is a strict total
/// order (each face has at most one live entry) and the selection is
/// deterministic regardless of worker count.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    face: usize,
    vertex: usize,
    gain: f64,
    /// Position of this candidate in the face's cached list, or
    /// [`OFF_CACHE`] if it came from a full rescan (a later refill for the
    /// same face must rescan again).
    pos: usize,
}

/// Sentinel list position for candidates produced by a full rescan.
const OFF_CACHE: usize = usize::MAX;

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // total_cmp keeps the comparator a total order even for NaN gains
        // (which the gain table filters out anyway).
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.face.cmp(&self.face))
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// Internal construction state for Algorithm 1.
struct Builder<'a, S: SimilaritySource> {
    s: &'a S,
    /// When present, candidate refreshes go through the certified top-K
    /// pool first (see [`GainTable::compute_candidates_prescreened`]).
    prescreen: Option<&'a TopKCandidates>,
    prescreen_rescans: usize,
    prefix: usize,
    freshness: BatchFreshness,
    graph: WeightedGraph,
    /// Face id → triangle.
    faces: Vec<Triangle>,
    /// Face id → still a face of the planar subgraph?
    face_active: Vec<bool>,
    /// Number of `true` entries in `face_active`.
    num_active_faces: usize,
    /// Face id → bubble id owning the face.
    face_bubble: Vec<usize>,
    /// Vertex → still waiting to be inserted?
    remaining: Vec<bool>,
    num_remaining: usize,
    gains: GainTable,
    tree: BubbleTree,
    initial_clique: [usize; 4],
    insertions: Vec<Insertion>,
    rounds: usize,
    round_stats: Vec<RoundStats>,
}

impl<'a, S: SimilaritySource> Builder<'a, S> {
    fn new(s: &'a S, config: TmfgConfig, prescreen: Option<&'a TopKCandidates>) -> Self {
        let n = s.n();
        // Lines 1–2: the four vertices with the highest row sums and all six
        // edges among them. The prescreen carries exact row sums, so its
        // seed is bitwise the same selection.
        let top = match prescreen {
            Some(topk) => topk.top_rows_by_sum(4),
            None => s.top_rows_by_sum(4),
        };
        let initial_clique = [top[0], top[1], top[2], top[3]];
        let mut graph = WeightedGraph::new(n);
        for i in 0..4 {
            for j in (i + 1)..4 {
                let (u, v) = (initial_clique[i], initial_clique[j]);
                graph.add_edge(u, v, s.get(u, v));
            }
        }
        // Line 3: the four triangular faces of the initial clique.
        let [v1, v2, v3, v4] = initial_clique;
        let faces = vec![
            Triangle::new(v1, v2, v3),
            Triangle::new(v1, v2, v4),
            Triangle::new(v1, v3, v4),
            Triangle::new(v2, v3, v4),
        ];
        // Line 4: the remaining vertices.
        let mut remaining = vec![true; n];
        for &v in &initial_clique {
            remaining[v] = false;
        }
        let num_remaining = n - 4;
        // Lines 6–7: the bubble tree starts with the initial clique and the
        // outer face {v1, v2, v3}.
        let outer_face = Triangle::new(v1, v2, v3);
        let tree = BubbleTree::new(initial_clique, outer_face, n);
        // Line 5: the candidate lists for each initial face.
        let mut gains = GainTable::new(n, config.prefix);
        let depth = gains.depth();
        let face_candidates: Vec<(crate::tmfg::gains::CandidateList, bool)> = faces
            .par_iter()
            .map(|&t| refreshed_candidates(s, prescreen, t, &remaining, num_remaining, depth))
            .collect();
        let mut face_active = Vec::with_capacity(4);
        let mut face_bubble = Vec::with_capacity(4);
        let mut prescreen_rescans = 0;
        for ((list, truncated), fell_back) in face_candidates {
            let id = gains.push_face();
            face_active.push(true);
            face_bubble.push(0);
            gains.install(id, list, truncated);
            prescreen_rescans += fell_back as usize;
        }
        Self {
            s,
            prescreen,
            prescreen_rescans,
            prefix: config.prefix,
            freshness: config.freshness,
            graph,
            faces,
            face_active,
            num_active_faces: 4,
            face_bubble,
            remaining,
            num_remaining,
            gains,
            tree,
            initial_clique,
            insertions: Vec::with_capacity(num_remaining),
            rounds: 0,
            round_stats: Vec::new(),
        }
    }

    fn run(mut self) -> Tmfg {
        // Lines 8–17: insert the remaining vertices in rounds of up to
        // `prefix` vertices.
        while self.num_remaining > 0 {
            self.rounds += 1;
            let mut stats = RoundStats {
                target: self
                    .prefix
                    .min(self.num_remaining)
                    .min(self.num_active_faces),
                ..RoundStats::default()
            };
            let selected = self.select_batch(&mut stats);
            stats.selected = selected.len();
            debug_assert_eq!(
                stats.selected, stats.target,
                "the conflict-aware selector must fill every round"
            );
            self.apply_batch(&selected, &mut stats);
            self.round_stats.push(stats);
        }
        debug_assert!(self.graph.has_maximal_planar_edge_count());
        Tmfg {
            graph: self.graph,
            bubble_tree: self.tree,
            initial_clique: self.initial_clique,
            insertions: self.insertions,
            rounds: self.rounds,
            round_stats: self.round_stats,
            prescreen_rescans: self.prescreen_rescans,
        }
    }

    /// Lines 9–10: select up to `prefix` vertex–face pairs in decreasing
    /// gain order, resolving vertex conflicts in favour of the largest gain
    /// *without* shrinking the batch — a face that loses its candidate
    /// re-enters the draw with its next-best vertex. Returns
    /// `(face_id, vertex, gain)` triples in the order they were accepted
    /// (non-increasing gain).
    fn select_batch(&self, stats: &mut RoundStats) -> Vec<(usize, usize, f64)> {
        // Gather the head candidate of every active face. The filter and
        // the lookup fuse into one parallel pass over the face ids,
        // preserving face order, so the result is independent of the
        // worker count.
        let candidates: Vec<Candidate> = (0..self.faces.len())
            .into_par_iter()
            .filter(|&f| self.face_active[f])
            .filter_map(|f| {
                let (vertex, gain) = self.gains.head(f)?;
                debug_assert!(self.remaining[vertex], "heads must be fresh");
                Some(Candidate {
                    face: f,
                    vertex,
                    gain,
                    pos: self.gains.head_pos(f),
                })
            })
            .collect();

        if self.prefix == 1 {
            // Fast path: a single parallel maximum (Line 9 simplification).
            // Gains, faces and vertices reproduce the heap's pop order, so
            // ties resolve identically to the general path below.
            let best = pfg_primitives::par_max_index(&candidates, |c| c.gain)
                .expect("at least one candidate while vertices remain");
            let c = candidates[best];
            return vec![(c.face, c.vertex, c.gain)];
        }

        let target = stats.target;
        let mut heap: BinaryHeap<Candidate> = candidates.into();
        let mut taken = vec![false; self.remaining.len()];
        let mut selected: Vec<(usize, usize, f64)> = Vec::with_capacity(target);
        while selected.len() < target {
            let Some(c) = heap.pop() else { break };
            if !taken[c.vertex] {
                taken[c.vertex] = true;
                selected.push((c.face, c.vertex, c.gain));
                continue;
            }
            // Conflict: a higher-gain pair already claimed this vertex.
            // Refill the face with its next-best available candidate so the
            // conflict shrinks neither the batch nor the candidate pool.
            stats.conflicts += 1;
            let next = if c.pos == OFF_CACHE {
                NextBest::Exhausted { truncated: true }
            } else {
                self.gains
                    .next_best(c.face, c.pos + 1, &self.remaining, &taken)
            };
            match next {
                NextBest::Found { pos, vertex, gain } => heap.push(Candidate {
                    face: c.face,
                    vertex,
                    gain,
                    pos,
                }),
                NextBest::Exhausted { truncated: true } => {
                    // The cached list ran dry but the remaining pool holds
                    // more: rescan it, excluding this round's selections.
                    stats.rescans += 1;
                    if let Some((vertex, gain)) = GainTable::rescan_excluding(
                        self.s,
                        self.faces[c.face],
                        &self.remaining,
                        &taken,
                    ) {
                        heap.push(Candidate {
                            face: c.face,
                            vertex,
                            gain,
                            pos: OFF_CACHE,
                        });
                    }
                }
                NextBest::Exhausted { truncated: false } => {}
            }
        }
        selected
    }

    /// Inserts `v` into face `face_id`: adds the three edges, updates the
    /// bubble tree, deactivates the face and registers its three children.
    /// Returns the new face ids.
    fn insert_vertex(&mut self, face_id: usize, v: usize) -> [usize; 3] {
        let t = self.faces[face_id];
        let [a, b, c] = t.corners();
        // Line 13: add the three edges from v to the face corners.
        self.graph.add_edge(v, a, self.s.get(v, a));
        self.graph.add_edge(v, b, self.s.get(v, b));
        self.graph.add_edge(v, c, self.s.get(v, c));
        // Line 17: update the bubble tree (Algorithm 2).
        let bubble = self.face_bubble[face_id];
        let new_bubble = self.tree.insert(v, t, bubble);
        // Line 14: replace face t by the three new faces.
        self.face_active[face_id] = false;
        let mut ids = [0usize; 3];
        for (slot, new_face) in t.split_with(v).into_iter().enumerate() {
            let id = self.gains.push_face();
            self.faces.push(new_face);
            self.face_active.push(true);
            self.face_bubble.push(new_bubble);
            debug_assert_eq!(id, self.faces.len() - 1);
            ids[slot] = id;
        }
        self.num_active_faces += 2;
        ids
    }

    /// Lines 11–17: insert the selected vertices, update faces, the gain
    /// table and the bubble tree.
    fn apply_batch(&mut self, selected: &[(usize, usize, f64)], stats: &mut RoundStats) {
        // Line 11: remove the selected vertices from V first, so candidate
        // maintenance below never proposes a vertex inserted this round.
        for &(_, v, _) in selected {
            debug_assert!(self.remaining[v]);
            self.remaining[v] = false;
            self.num_remaining -= 1;
        }

        let placement_start = std::time::Instant::now();
        let groups: Vec<ChildGroup> = match self.freshness {
            BatchFreshness::Simultaneous => self.place_simultaneous(selected),
            BatchFreshness::IntraRound => self.place_intra_round(selected, stats),
        };
        stats.placement_ns = placement_start.elapsed().as_nanos() as u64;

        // Line 15: lazily advance the faces whose head vertex was inserted
        // this round; only faces whose truncated cache drained need a full
        // recomputation.
        let mut faces_to_refresh: Vec<usize> = Vec::new();
        for &(_, v, _) in selected {
            self.gains.on_vertex_inserted(
                v,
                &self.remaining,
                &self.face_active,
                &mut faces_to_refresh,
            );
        }

        let s = self.s;
        let remaining = &self.remaining;
        let depth = self.gains.depth();

        // Line 16, children: each insertion's three new faces refresh off
        // one fused scan of the remaining pool (4 similarity loads per
        // vertex instead of 9 — the follow-up paper's gain maintenance).
        // Children consumed later in the same round (intra-round freshness)
        // are skipped at install. The prescreened source keeps the per-face
        // certified refresh instead: its pooled top-K gather is already
        // sublinear, and the exactness certificate is per-face.
        if self.prescreen.is_none() {
            let fused: Vec<(ChildGroup, [crate::tmfg::gains::CandidateList; 3])> = groups
                .par_iter()
                .map(|&g| {
                    (
                        g,
                        GainTable::compute_candidates_for_children(
                            s, g.parent, g.vertex, remaining, depth,
                        ),
                    )
                })
                .collect();
            for (g, lists) in fused {
                for (slot, (list, truncated)) in lists.into_iter().enumerate() {
                    let f = g.children[slot];
                    if self.face_active[f] {
                        self.gains.install(f, list, truncated);
                    }
                }
            }
        } else {
            faces_to_refresh.extend(groups.iter().flat_map(|g| g.children));
        }

        faces_to_refresh.sort_unstable();
        faces_to_refresh.dedup();
        faces_to_refresh.retain(|&f| self.face_active[f]);

        // Line 16, drained survivors (and, on the prescreened path, the
        // children): recompute the candidate lists in parallel (each face
        // scans the remaining vertex set — or, when the prescreen certifies
        // it, just the corners' pooled top-K lists).
        let prescreen = self.prescreen;
        let num_remaining = self.num_remaining;
        let faces = &self.faces;
        let updates: Vec<(usize, (crate::tmfg::gains::CandidateList, bool))> = faces_to_refresh
            .par_iter()
            .map(|&f| {
                (
                    f,
                    refreshed_candidates(s, prescreen, faces[f], remaining, num_remaining, depth),
                )
            })
            .collect();
        for (f, ((list, truncated), fell_back)) in updates {
            self.gains.install(f, list, truncated);
            self.prescreen_rescans += fell_back as usize;
        }
    }

    /// Applies every selected pair against the round-start face set (the
    /// paper's literal semantics). Returns the created child groups.
    fn place_simultaneous(&mut self, selected: &[(usize, usize, f64)]) -> Vec<ChildGroup> {
        let round = self.rounds;
        let mut groups = Vec::with_capacity(selected.len());
        for &(face_id, v, gain) in selected {
            let t = self.faces[face_id];
            let children = self.insert_vertex(face_id, v);
            groups.push(ChildGroup {
                parent: t,
                vertex: v,
                children,
            });
            self.insertions.push(Insertion {
                vertex: v,
                face: t,
                gain,
                round,
            });
        }
        groups
    }

    /// Places the selected cohort one vertex at a time in decreasing
    /// fresh-gain order, letting each placement's three new faces compete
    /// for the rest of the cohort — the intra-round freshness that lets an
    /// arrival cohort nucleate the way sequential insertion would. Each
    /// vertex keeps its phase-1 face reserved as a fallback, so the cohort
    /// always places completely. O(batch²) sequential work, timed into
    /// [`RoundStats::placement_ns`] by the caller. Returns the created
    /// child groups; groups whose faces were consumed later in the same
    /// round are filtered by the caller's `face_active` check.
    fn place_intra_round(
        &mut self,
        selected: &[(usize, usize, f64)],
        stats: &mut RoundStats,
    ) -> Vec<ChildGroup> {
        let round = self.rounds;
        struct Pending {
            vertex: usize,
            /// The phase-1 face, reserved for this vertex only.
            reserved: usize,
            reserved_gain: f64,
            /// Best placement known so far (the reserved face or a face
            /// created earlier this round).
            best_face: usize,
            best_gain: f64,
        }
        let mut pending: Vec<Pending> = selected
            .iter()
            .map(|&(face, vertex, gain)| Pending {
                vertex,
                reserved: face,
                reserved_gain: gain,
                best_face: face,
                best_gain: gain,
            })
            .collect();
        // Faces created this round that are still unused; every pending
        // vertex may claim any of them.
        let mut open_children: Vec<usize> = Vec::with_capacity(3 * selected.len());
        let mut groups: Vec<ChildGroup> = Vec::with_capacity(selected.len());

        while !pending.is_empty() {
            // Deterministic argmax: gain, ties towards the smaller vertex.
            let next = pending
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.best_gain
                        .total_cmp(&b.best_gain)
                        .then_with(|| b.vertex.cmp(&a.vertex))
                })
                .map(|(i, _)| i)
                .expect("pending is non-empty");
            let p = pending.swap_remove(next);
            let face_id = p.best_face;
            let t = self.faces[face_id];
            if face_id != p.reserved {
                stats.reassigned += 1;
                open_children.retain(|&c| c != face_id);
            }
            let created = self.insert_vertex(face_id, p.vertex);
            self.insertions.push(Insertion {
                vertex: p.vertex,
                face: t,
                gain: p.best_gain,
                round,
            });
            open_children.extend(created);
            groups.push(ChildGroup {
                parent: t,
                vertex: p.vertex,
                children: created,
            });

            for q in &mut pending {
                if q.best_face == face_id {
                    // The face this vertex targeted was just consumed:
                    // fall back to its reserved face, then re-derive the
                    // best open child.
                    q.best_face = q.reserved;
                    q.best_gain = q.reserved_gain;
                    for &child in &open_children {
                        let gain = GainTable::gain_of(self.s, self.faces[child], q.vertex);
                        if gain.total_cmp(&q.best_gain).is_gt() {
                            q.best_face = child;
                            q.best_gain = gain;
                        }
                    }
                } else {
                    for &child in &created {
                        let gain = GainTable::gain_of(self.s, self.faces[child], q.vertex);
                        if gain.total_cmp(&q.best_gain).is_gt() {
                            q.best_face = child;
                            q.best_gain = gain;
                        }
                    }
                }
            }
        }
        groups
    }
}

/// One insertion's split, kept together for the fused candidate refresh:
/// the consumed parent face, the inserted vertex, and the three child face
/// ids in [`Triangle::split_with`] order (so
/// [`GainTable::compute_candidates_for_children`]'s k-th list installs
/// into `children[k]`).
#[derive(Debug, Clone, Copy)]
struct ChildGroup {
    parent: Triangle,
    vertex: usize,
    children: [usize; 3],
}

/// One candidate refresh, routed through the prescreen when available:
/// returns the list plus whether the prescreen failed to certify exactness
/// and a full scan ran instead.
fn refreshed_candidates<S: SimilaritySource>(
    s: &S,
    prescreen: Option<&TopKCandidates>,
    t: Triangle,
    remaining: &[bool],
    num_remaining: usize,
    depth: usize,
) -> (crate::tmfg::gains::CandidateList, bool) {
    if let Some(topk) = prescreen {
        if let Some(list) =
            GainTable::compute_candidates_prescreened(s, topk, t, remaining, num_remaining, depth)
        {
            return (list, false);
        }
        return (GainTable::compute_candidates(s, t, remaining, depth), true);
    }
    (GainTable::compute_candidates(s, t, remaining, depth), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfg_graph::SymmetricMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The correlation matrix of Figure 12 in the paper's appendix.
    fn appendix_matrix() -> SymmetricMatrix {
        let rows = vec![
            1.0, 0.8, 0.4, 0.8, 0.8, 0.4, //
            0.8, 1.0, 0.41, 0.9, 0.4, 0.0, //
            0.4, 0.41, 1.0, 0.0, 0.4, 0.42, //
            0.8, 0.9, 0.0, 1.0, 0.8, 0.8, //
            0.8, 0.4, 0.4, 0.8, 1.0, 0.8, //
            0.4, 0.0, 0.42, 0.8, 0.8, 1.0,
        ];
        SymmetricMatrix::from_rows(6, rows)
    }

    fn random_similarity(n: usize, seed: u64) -> SymmetricMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        SymmetricMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { rng.gen_range(0.0..1.0) })
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let s = SymmetricMatrix::filled(3, 1.0);
        assert!(matches!(
            tmfg(&s, TmfgConfig::default()),
            Err(CoreError::TooFewVertices { got: 3 })
        ));
        let s = SymmetricMatrix::filled(5, 1.0);
        assert!(matches!(
            tmfg(&s, TmfgConfig::with_prefix(0)),
            Err(CoreError::InvalidPrefix)
        ));
    }

    #[test]
    fn nan_similarity_is_rejected_up_front() {
        // A vertex whose similarities are all NaN (e.g. the correlation of
        // a series containing a NaN sample) could never be selected — the
        // candidate generation skips NaN gains — so construction must
        // reject the input instead of looping forever.
        let s = SymmetricMatrix::from_fn(6, |i, j| {
            if i == j {
                1.0
            } else if i.max(j) == 4 {
                f64::NAN
            } else {
                0.5
            }
        });
        for prefix in [1, 3] {
            assert!(matches!(
                tmfg(&s, TmfgConfig::with_prefix(prefix)),
                Err(CoreError::NanSimilarity { .. })
            ));
        }
    }

    #[test]
    fn four_vertices_is_just_the_clique() {
        let s = SymmetricMatrix::filled(4, 0.5);
        let t = tmfg_sequential(&s).unwrap();
        assert_eq!(t.graph.num_edges(), 6);
        assert_eq!(t.bubble_tree.len(), 1);
        assert_eq!(t.rounds, 0);
        assert!(t.insertions.is_empty());
        assert!(t.round_stats.is_empty());
        assert!((t.mean_fill_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn appendix_prefix_one_matches_paper_example() {
        // Figure 13(a)-(d): with PREFIX = 1 the algorithm starts from the
        // clique {0,1,3,4}, inserts 5 into {0,3,4} and then 2 into {0,4,5}.
        let s = appendix_matrix();
        let t = tmfg_sequential(&s).unwrap();
        let mut clique = t.initial_clique;
        clique.sort_unstable();
        assert_eq!(clique, [0, 1, 3, 4]);
        assert_eq!(t.insertions.len(), 2);
        assert_eq!(t.insertions[0].vertex, 5);
        assert_eq!(t.insertions[0].face, Triangle::new(0, 3, 4));
        assert_eq!(t.insertions[1].vertex, 2);
        assert_eq!(t.insertions[1].face, Triangle::new(0, 4, 5));
        assert_eq!(t.rounds, 2);
    }

    #[test]
    fn appendix_prefix_three_matches_paper_example() {
        // Figure 13(e)-(h): with PREFIX = 3 and the paper's simultaneous
        // placement, vertices 5 and 2 are inserted in the same round; 2
        // goes into {0,1,4} because {0,4,5} does not exist yet.
        let s = appendix_matrix();
        let t = tmfg(&s, TmfgConfig::with_prefix(3).simultaneous()).unwrap();
        assert_eq!(t.rounds, 1);
        assert_eq!(t.insertions.len(), 2);
        let by_vertex: std::collections::HashMap<usize, Triangle> = t
            .insertions
            .iter()
            .map(|ins| (ins.vertex, ins.face))
            .collect();
        assert_eq!(by_vertex[&5], Triangle::new(0, 3, 4));
        assert_eq!(by_vertex[&2], Triangle::new(0, 1, 4));
        assert_eq!(t.total_reassigned(), 0);
    }

    #[test]
    fn appendix_prefix_three_intra_round_recovers_sequential_placement() {
        // Same input, default (intra-round) freshness: 5 still lands in
        // {0,3,4}, but 2 is placed after 5 and sees the freshly created
        // {0,4,5} (gain 1.22 > 1.21), reproducing the sequential TMFG in a
        // single round. Exactly one placement moved off its round-start
        // face, and the counters record it.
        let s = appendix_matrix();
        let batched = tmfg(&s, TmfgConfig::with_prefix(3)).unwrap();
        let sequential = tmfg_sequential(&s).unwrap();
        assert_eq!(batched.rounds, 1);
        assert_eq!(batched.total_reassigned(), 1);
        let batched_pairs: Vec<(usize, Triangle)> = batched
            .insertions
            .iter()
            .map(|ins| (ins.vertex, ins.face))
            .collect();
        let sequential_pairs: Vec<(usize, Triangle)> = sequential
            .insertions
            .iter()
            .map(|ins| (ins.vertex, ins.face))
            .collect();
        assert_eq!(batched_pairs, sequential_pairs);
        let batched_edges: Vec<_> = batched.graph.edges().collect();
        let sequential_edges: Vec<_> = sequential.graph.edges().collect();
        assert_eq!(batched_edges, sequential_edges);
    }

    #[test]
    fn tmfg_has_maximal_planar_structure() {
        for seed in 0..3 {
            let n = 40;
            let s = random_similarity(n, seed);
            for prefix in [1, 2, 5, 50] {
                let t = tmfg(&s, TmfgConfig::with_prefix(prefix)).unwrap();
                assert_eq!(t.graph.num_edges(), 3 * n - 6, "prefix {prefix}");
                assert!(t.graph.is_connected());
                assert!(pfg_graph::is_planar(&t.graph), "TMFG must be planar");
                assert_eq!(t.bubble_tree.len(), n - 3);
                t.bubble_tree.check_invariants().unwrap();
                // Every non-clique vertex inserted exactly once.
                assert_eq!(t.insertions.len(), n - 4);
            }
        }
    }

    #[test]
    fn edge_weights_come_from_similarity_matrix() {
        let s = random_similarity(25, 7);
        let t = tmfg_sequential(&s).unwrap();
        for (u, v, w) in t.graph.edges() {
            assert!((w - s.get(u, v)).abs() < 1e-12);
        }
    }

    #[test]
    fn prefix_one_is_greedy_optimal_each_step() {
        // For the sequential TMFG, each insertion's gain must be the best
        // available at that time; in particular gains of later insertions
        // can exceed earlier ones only if enabled by newly created faces.
        let s = random_similarity(20, 3);
        let t = tmfg_sequential(&s).unwrap();
        assert_eq!(t.rounds, 16);
        for ins in &t.insertions {
            assert!(ins.gain.is_finite());
        }
    }

    #[test]
    fn larger_prefix_needs_fewer_rounds() {
        let s = random_similarity(60, 11);
        let seq = tmfg(&s, TmfgConfig::with_prefix(1)).unwrap();
        let par = tmfg(&s, TmfgConfig::with_prefix(20)).unwrap();
        assert_eq!(seq.rounds, 56);
        assert!(par.rounds < seq.rounds);
        // Quality stays close: parallel edge weight sum within a few percent.
        let ratio = par.edge_weight_sum() / seq.edge_weight_sum();
        assert!(ratio > 0.85 && ratio < 1.05, "ratio {ratio}");
    }

    #[test]
    fn every_round_is_fully_filled() {
        // The conflict-aware selector's defining property: a round inserts
        // exactly min(prefix, |remaining|, |active faces|) vertices — a
        // conflict never shrinks the batch. (The old truncate-then-dedup
        // selector failed this whenever several faces championed the same
        // vertex inside the top-prefix pairs.)
        for (n, prefix, seed) in [(60, 5, 2u64), (60, 10, 4), (90, 16, 8)] {
            let s = random_similarity(n, seed);
            let t = tmfg(&s, TmfgConfig::with_prefix(prefix)).unwrap();
            let mut remaining = n - 4;
            let mut active_faces = 4usize;
            for (i, stats) in t.round_stats.iter().enumerate() {
                let expect = prefix.min(remaining).min(active_faces);
                assert_eq!(
                    stats.target, expect,
                    "round {i}: target (n {n}, prefix {prefix})"
                );
                assert_eq!(
                    stats.selected, expect,
                    "round {i}: under-filled (n {n}, prefix {prefix})"
                );
                assert!((stats.fill_rate() - 1.0).abs() < 1e-12);
                remaining -= stats.selected;
                active_faces += 2 * stats.selected;
            }
            assert_eq!(remaining, 0);
            assert!((t.mean_fill_rate() - 1.0).abs() < 1e-12);
            assert_eq!(t.round_stats.len(), t.rounds);
        }
    }

    #[test]
    fn conflicts_are_detected_and_absorbed() {
        // A rank-one-ish similarity concentrates every face's best on the
        // same few vertices, so a batched round must absorb conflicts; the
        // counters record them and the batch still fills.
        let n = 40;
        let mut rng = StdRng::seed_from_u64(17);
        let pull: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
        let s = SymmetricMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { pull[i] * pull[j] });
        let t = tmfg(&s, TmfgConfig::with_prefix(8)).unwrap();
        assert!(
            t.total_conflicts() > 0,
            "shared-champion input must conflict"
        );
        assert!((t.mean_fill_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn huge_prefix_still_valid() {
        let n = 30;
        let s = random_similarity(n, 5);
        let t = tmfg(&s, TmfgConfig::with_prefix(10_000)).unwrap();
        assert_eq!(t.graph.num_edges(), 3 * n - 6);
        assert!(pfg_graph::is_planar(&t.graph));
    }

    #[test]
    fn sequential_selector_matches_uncached_reference() {
        // prefix = 1 must reproduce the sequential TMFG exactly. Replay the
        // insertion trace against a from-scratch reference that rescans
        // every face's best vertex at every step (no candidate caching, no
        // reverse index), with the same gain/face/vertex tie-breaking.
        let s = random_similarity(50, 21);
        let seq = tmfg(&s, TmfgConfig::with_prefix(1)).unwrap();
        // Reference: a fresh sequential TMFG computed via best_for_face
        // scans only (no caching), validating the cached selector.
        let n = s.n();
        let mut remaining = vec![true; n];
        for &v in &seq.initial_clique {
            remaining[v] = false;
        }
        let mut faces = vec![
            Triangle::new(
                seq.initial_clique[0],
                seq.initial_clique[1],
                seq.initial_clique[2],
            ),
            Triangle::new(
                seq.initial_clique[0],
                seq.initial_clique[1],
                seq.initial_clique[3],
            ),
            Triangle::new(
                seq.initial_clique[0],
                seq.initial_clique[2],
                seq.initial_clique[3],
            ),
            Triangle::new(
                seq.initial_clique[1],
                seq.initial_clique[2],
                seq.initial_clique[3],
            ),
        ];
        let mut active = vec![true; 4];
        for ins in &seq.insertions {
            // Recompute every face's best from scratch and take the max.
            let mut best: Option<(usize, usize, f64)> = None;
            for (f, &t) in faces.iter().enumerate() {
                if !active[f] {
                    continue;
                }
                if let Some((v, g)) = GainTable::best_for_face(&s, t, &remaining) {
                    let better = match best {
                        None => true,
                        Some((bf, bv, bg)) => g
                            .total_cmp(&bg)
                            .then_with(|| bf.cmp(&f))
                            .then_with(|| bv.cmp(&v))
                            .is_gt(),
                    };
                    if better {
                        best = Some((f, v, g));
                    }
                }
            }
            let (f, v, g) = best.expect("candidates remain");
            assert_eq!(ins.vertex, v);
            assert_eq!(ins.face, faces[f]);
            assert!((ins.gain - g).abs() < 1e-12);
            remaining[v] = false;
            active[f] = false;
            for nf in faces[f].split_with(v) {
                faces.push(nf);
                active.push(true);
            }
        }
    }

    #[test]
    fn parallel_pool_matches_sequential_reference() {
        // The candidate maintenance, head gathering and batch selection
        // run on the work-stealing executor; their results must be
        // bit-identical to the single-threaded reference for every worker
        // count (the split-tree decomposition depends on input length
        // only, stealing may reorder execution but never results,
        // candidate order is preserved, and the selection heap is a
        // strict total order).
        //
        // n is chosen so the parallel path actually dispatches: the shim
        // runs pipelines under 512 items inline, and select_batch iterates
        // every tracked face id (4 + 3·(n − 4)), so n = 300 pushes the
        // candidate-gathering pipeline well past the threshold in the
        // later rounds. With n = 60 both runs would execute the identical
        // inline code path and the comparison would be vacuous.
        let n = 300;
        let s = random_similarity(n, 13);
        for freshness in [BatchFreshness::IntraRound, BatchFreshness::Simultaneous] {
            for prefix in [1, 10, 50] {
                let config = TmfgConfig { prefix, freshness };
                let sequential = rayon::ThreadPoolBuilder::new()
                    .num_threads(1)
                    .build()
                    .unwrap()
                    .install(|| tmfg(&s, config).unwrap());
                for threads in [2, 8] {
                    let parallel = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .unwrap()
                        .install(|| tmfg(&s, config).unwrap());
                    let ctx = format!("prefix {prefix} {freshness:?} threads {threads}");
                    assert_eq!(
                        sequential.insertions, parallel.insertions,
                        "{ctx}: insertion traces (incl. gains) must match"
                    );
                    assert_eq!(sequential.initial_clique, parallel.initial_clique);
                    assert_eq!(sequential.rounds, parallel.rounds);
                    assert_eq!(
                        sequential.round_stats, parallel.round_stats,
                        "{ctx}: fill/staleness counters must match"
                    );
                    let seq_edges: Vec<_> = sequential.graph.edges().collect();
                    let par_edges: Vec<_> = parallel.graph.edges().collect();
                    assert_eq!(seq_edges, par_edges, "{ctx}: edge sets must match");
                }
            }
        }
    }

    #[test]
    fn prescreened_matches_dense() {
        // The prescreened TMFG must be byte-identical to the dense one:
        // identical seed clique (exact row sums), identical insertion
        // trace (certified candidate lists or full-scan fallback), and
        // identical counters — only `prescreen_rescans` differs from
        // zero, counting faces whose certificate failed.
        let clustered = |n: usize, blocks: usize, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            SymmetricMatrix::from_fn(n, |i, j| {
                if i == j {
                    1.0
                } else {
                    let base = if i % blocks == j % blocks { 0.8 } else { 0.2 };
                    base + rng.gen_range(0.0..0.1)
                }
            })
        };
        for (name, s) in [
            ("random", random_similarity(60, 7)),
            ("clustered", clustered(48, 4, 21)),
        ] {
            for prefix in [1, 10] {
                let config = TmfgConfig {
                    prefix,
                    freshness: BatchFreshness::IntraRound,
                };
                let dense = tmfg(&s, config).unwrap();
                assert_eq!(dense.prescreen_rescans, 0, "dense path never rescans");
                // Small K forces certificate failures; a near-complete K
                // certifies everything.
                for k in [8usize, s.n() - 1] {
                    let topk = TopKCandidates::build(&s, k);
                    let p = tmfg_prescreened(&s, &topk, config).unwrap();
                    let ctx = format!("{name}, prefix {prefix}, K = {k}");
                    assert_eq!(dense.initial_clique, p.initial_clique, "{ctx}: seed");
                    assert_eq!(dense.insertions, p.insertions, "{ctx}: insertions");
                    assert_eq!(dense.rounds, p.rounds, "{ctx}: rounds");
                    assert_eq!(dense.round_stats, p.round_stats, "{ctx}: round stats");
                    let dense_edges: Vec<_> = dense.graph.edges().collect();
                    let p_edges: Vec<_> = p.graph.edges().collect();
                    assert_eq!(dense_edges, p_edges, "{ctx}: edges");
                    assert_eq!(
                        format!("{:?}", dense.bubble_tree),
                        format!("{:?}", p.bubble_tree),
                        "{ctx}: bubble tree"
                    );
                    if k == s.n() - 1 {
                        assert_eq!(p.prescreen_rescans, 0, "{ctx}: complete lists");
                    }
                }
            }
        }
    }

    #[test]
    fn prescreened_runs_on_f32_storage() {
        // Same guarantee on the f32 source: prescreened == dense over the
        // rounded weights.
        let s = random_similarity(40, 29);
        let f32_data: Vec<f32> = s.as_slice().iter().map(|&x| x as f32).collect();
        let s32 = pfg_graph::SymmetricMatrixF32::from_symmetrized(s.n(), f32_data);
        let config = TmfgConfig::default();
        let dense = tmfg(&s32, config).unwrap();
        let topk = TopKCandidates::build(&s32, 8);
        let p = tmfg_prescreened(&s32, &topk, config).unwrap();
        assert_eq!(dense.insertions, p.insertions);
        let dense_edges: Vec<_> = dense.graph.edges().collect();
        let p_edges: Vec<_> = p.graph.edges().collect();
        assert_eq!(dense_edges, p_edges);
    }

    #[test]
    fn initial_clique_has_highest_row_sums() {
        let s = random_similarity(30, 9);
        let t = tmfg_sequential(&s).unwrap();
        let sums = s.row_sums();
        let min_clique_sum = t
            .initial_clique
            .iter()
            .map(|&v| sums[v])
            .fold(f64::INFINITY, f64::min);
        let max_other = (0..30)
            .filter(|v| !t.initial_clique.contains(v))
            .map(|v| sums[v])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(min_clique_sum >= max_other);
    }
}
