//! Triangulated Maximally Filtered Graph construction (§IV, Algorithm 1).
//!
//! The TMFG approximates the NP-hard Weighted Maximum Planar Graph problem
//! by starting from the 4-clique of the four vertices with the largest row
//! sums and repeatedly inserting a remaining vertex into a triangular face,
//! adding the three edges to the face corners that maximise the gain.
//!
//! The parallel algorithm of the paper inserts up to `PREFIX` vertices per
//! round: the `PREFIX` vertex–face pairs with the largest gains are
//! selected, conflicts (a vertex chosen by several faces) are resolved in
//! favour of the maximum-gain pair, and the gain table is rebuilt in
//! parallel only for the faces whose best vertex was consumed and for the
//! newly created faces. With `prefix = 1` the construction is identical to
//! the sequential TMFG of Massara et al.
//!
//! The bubble tree (Algorithm 2) is maintained during construction at no
//! extra asymptotic cost and is returned alongside the graph.

mod builder;
mod gains;

pub use builder::{tmfg, tmfg_sequential, Insertion, Tmfg, TmfgConfig};
pub use gains::GainTable;
