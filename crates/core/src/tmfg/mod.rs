//! Triangulated Maximally Filtered Graph construction (§IV, Algorithm 1).
//!
//! The TMFG approximates the NP-hard Weighted Maximum Planar Graph problem
//! by starting from the 4-clique of the four vertices with the largest row
//! sums and repeatedly inserting a remaining vertex into a triangular face,
//! adding the three edges to the face corners that maximise the gain.
//!
//! The parallel algorithm of the paper inserts up to `PREFIX` vertices per
//! round. Selection is conflict-aware: candidate `(face, vertex, gain)`
//! pairs are drawn in decreasing gain order and a vertex claimed by several
//! faces goes to the maximum-gain pair, while every losing face re-enters
//! the draw with its next-best remaining vertex, so conflicts shrink
//! neither the batch nor the candidate pool — each round inserts exactly
//! `min(PREFIX, |remaining|, |active faces|)` vertices. The per-face
//! candidate lists are maintained lazily (see [`GainTable`]) and rebuilt in
//! parallel only for newly created faces and for faces whose cached
//! candidates ran dry. With `prefix = 1` the construction is identical to
//! the sequential TMFG of Massara et al.
//!
//! The bubble tree (Algorithm 2) is maintained during construction at no
//! extra asymptotic cost and is returned alongside the graph.

mod builder;
mod gains;

pub use builder::{
    tmfg, tmfg_prescreened, tmfg_sequential, BatchFreshness, Insertion, RoundStats, Tmfg,
    TmfgConfig,
};
pub use gains::{CandidateList, GainTable, NextBest, MAX_CACHE_DEPTH, MIN_CACHE_DEPTH};
