//! The gain table: per-face top-k candidate lists with lazy invalidation.
//!
//! Algorithm 1 keeps, for each face `t`, the best remaining vertex
//! `GAINS[t] = argmax_{u ∈ V} Σ_{c ∈ t} S[c, u]`. A single best vertex per
//! face is not enough for the prefix-batched selection of Lines 9–10,
//! though: when several faces champion the same vertex, every face that
//! loses the conflict must immediately offer its *next*-best vertex so the
//! round can still fill up to `PREFIX` distinct insertions. This table
//! therefore caches, per face, the top-k candidate `(vertex, gain)` pairs
//! found at the face's last refresh, in decreasing gain order.
//!
//! Two properties make the cache cheap to keep fresh:
//!
//! * **Gains are immutable.** The gain of inserting `v` into face `t`
//!   depends only on the input matrix, so a cached list never reorders; the
//!   candidate pool only ever *shrinks* as vertices are inserted.
//! * **Lazy invalidation.** Entries for inserted vertices are not eagerly
//!   removed; readers skip them. Each face keeps a cursor to its first
//!   still-valid entry, advanced via the vertex → faces reverse index when
//!   the head vertex is inserted. A face is recomputed from scratch only
//!   when its cached list runs dry *and* the list was truncated (the
//!   remaining pool held more candidates than the cache depth), so refresh
//!   work stays proportional to the faces actually affected by a round.
//! * **Fused child refresh.** The only faces that *must* be recomputed
//!   every round are the 3 per insertion that did not exist before it.
//!   Those three share two corners with the consumed parent and one with
//!   each other, so one scan over the remaining pool serves all three —
//!   4 similarity loads per vertex instead of 9 — via
//!   [`GainTable::compute_candidates_for_children`], bitwise identical to
//!   three standalone refreshes.
//!
//! The reverse index `faces_of_best` maps each vertex to the faces whose
//! current head it is. A face re-registers on every head change and each
//! entry is consumed (and stale entries dropped) the moment its vertex is
//! inserted, so the index holds at most one live entry per face plus a
//! bounded number of stale ones — O(faces), not O(insertions × faces).
//!
//! NaN similarities are skipped when candidate lists are built, so a NaN
//! gain can never be selected (mirroring `pfg_primitives::par_max_index`,
//! whose NaN keys never win).

use pfg_graph::{SimilaritySource, TopKCandidates};

use crate::face::Triangle;
use crate::schedule::BatchSchedule;

/// Smallest per-face candidate cache depth
/// ([`BatchSchedule::TMFG_CACHE_DEPTH`]`.initial`).
pub const MIN_CACHE_DEPTH: usize = BatchSchedule::TMFG_CACHE_DEPTH.initial;

/// Largest per-face candidate cache depth
/// ([`BatchSchedule::TMFG_CACHE_DEPTH`]`.cap`). Deeper caches make
/// mid-round conflict refills cheaper but every face refresh pays
/// O(depth) per candidate hit; 32 keeps the memory and refresh cost
/// trivial while making full rescans rare even for large prefixes.
pub const MAX_CACHE_DEPTH: usize = BatchSchedule::TMFG_CACHE_DEPTH.cap;

/// A freshly computed per-face candidate list (decreasing gain) and
/// whether it was truncated at the cache depth.
pub type CandidateList = (Vec<(usize, f64)>, bool);

/// Result of asking a face for its next still-available candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NextBest {
    /// The next candidate, with the list position it was found at (pass
    /// `pos + 1` as `from` on the next call for this face).
    Found {
        /// Position in the face's cached list.
        pos: usize,
        /// The candidate vertex.
        vertex: usize,
        /// The (exact) gain of inserting it into the face.
        gain: f64,
    },
    /// The cached list is out of available candidates. If `truncated`, the
    /// remaining pool held more candidates than the cache at refresh time,
    /// so the caller must fall back to [`GainTable::rescan_excluding`]; if
    /// not, the face genuinely has no candidate left.
    Exhausted {
        /// Whether the cached list was truncated at refresh time.
        truncated: bool,
    },
}

/// Per-face candidate bookkeeping for the faces of the graph under
/// construction.
#[derive(Debug, Clone)]
pub struct GainTable {
    /// Cache depth: how many candidates each refresh retains per face.
    depth: usize,
    /// `lists[f]` is face `f`'s candidate list from its last refresh, in
    /// decreasing gain order (ties towards the smaller vertex id). Entries
    /// go stale lazily as their vertices are inserted.
    lists: Vec<Vec<(usize, f64)>>,
    /// `cursor[f]` indexes the first entry of `lists[f]` whose vertex is
    /// still remaining (== `lists[f].len()` when the list is drained).
    cursor: Vec<usize>,
    /// `truncated[f]` records whether the remaining pool held more than
    /// `depth` candidates when `lists[f]` was computed.
    truncated: Vec<bool>,
    /// `faces_of_best[v]` lists face ids whose current head is (or recently
    /// was) `v`. Entries may be stale; they are dropped when processed.
    faces_of_best: Vec<Vec<usize>>,
}

impl GainTable {
    /// Creates an empty table for a graph on `num_vertices` vertices whose
    /// construction inserts up to `prefix` vertices per round. The cache
    /// depth scales with the prefix (clamped to
    /// [`MIN_CACHE_DEPTH`]..=[`MAX_CACHE_DEPTH`]) because a round can steal
    /// at most `prefix − 1` of a face's top candidates before the face is
    /// asked for another.
    pub fn new(num_vertices: usize, prefix: usize) -> Self {
        Self {
            depth: BatchSchedule::TMFG_CACHE_DEPTH.clamp(prefix),
            lists: Vec::new(),
            cursor: Vec::new(),
            truncated: Vec::new(),
            faces_of_best: vec![Vec::new(); num_vertices],
        }
    }

    /// Number of faces tracked (active or not).
    pub fn num_faces(&self) -> usize {
        self.lists.len()
    }

    /// The per-face candidate cache depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Registers a new face id; its candidate list starts empty (install
    /// one with [`GainTable::install`]).
    pub fn push_face(&mut self) -> usize {
        self.lists.push(Vec::new());
        self.cursor.push(0);
        self.truncated.push(false);
        self.lists.len() - 1
    }

    /// The face's best still-remaining candidate, if any. The head is kept
    /// valid by [`GainTable::on_vertex_inserted`]; its gain is exact, not
    /// an upper bound, because gains never change.
    #[inline]
    pub fn head(&self, face: usize) -> Option<(usize, f64)> {
        self.lists[face].get(self.cursor[face]).copied()
    }

    /// The cursor position of the face's head (pass to
    /// [`GainTable::next_best`] as the starting point of a round-local
    /// walk).
    #[inline]
    pub fn head_pos(&self, face: usize) -> usize {
        self.cursor[face]
    }

    /// Whether the face's cached list was truncated at its last refresh.
    #[inline]
    pub fn is_truncated(&self, face: usize) -> bool {
        self.truncated[face]
    }

    /// Faces whose recorded head may be `v` (possibly stale).
    #[inline]
    pub fn faces_possibly_best_for(&self, v: usize) -> &[usize] {
        &self.faces_of_best[v]
    }

    /// Walks face `face`'s cached list from position `from`, skipping
    /// vertices that are no longer `remaining` or are `taken` by the
    /// current round, and returns the first available candidate.
    pub fn next_best(
        &self,
        face: usize,
        from: usize,
        remaining: &[bool],
        taken: &[bool],
    ) -> NextBest {
        for (offset, &(v, gain)) in self.lists[face][from.min(self.lists[face].len())..]
            .iter()
            .enumerate()
        {
            if remaining[v] && !taken[v] {
                return NextBest::Found {
                    pos: from + offset,
                    vertex: v,
                    gain,
                };
            }
        }
        NextBest::Exhausted {
            truncated: self.truncated[face],
        }
    }

    /// Installs a freshly computed candidate list for `face` (see
    /// [`GainTable::compute_candidates`]) and registers the face under its
    /// head vertex in the reverse index.
    pub fn install(&mut self, face: usize, list: Vec<(usize, f64)>, truncated: bool) {
        if let Some(&(head, _)) = list.first() {
            self.faces_of_best[head].push(face);
        }
        self.lists[face] = list;
        self.cursor[face] = 0;
        self.truncated[face] = truncated;
    }

    /// Reacts to the insertion of vertex `v`: every face registered under
    /// `v` advances its cursor to the next still-remaining entry and
    /// re-registers under the new head. Faces whose list drained while
    /// truncated are appended to `needs_rescan` (the caller recomputes and
    /// [`GainTable::install`]s them). Stale registrations — faces that are
    /// no longer active or whose head moved on — are dropped, which keeps
    /// the reverse index O(faces).
    pub fn on_vertex_inserted(
        &mut self,
        v: usize,
        remaining: &[bool],
        face_active: &[bool],
        needs_rescan: &mut Vec<usize>,
    ) {
        let registered = std::mem::take(&mut self.faces_of_best[v]);
        for face in registered {
            if !face_active[face] {
                continue;
            }
            let list = &self.lists[face];
            let mut cursor = self.cursor[face];
            if list.get(cursor).map(|&(head, _)| head) != Some(v) {
                // Stale registration: the face was refreshed (or advanced)
                // under a different head since this entry was pushed.
                continue;
            }
            while cursor < list.len() && !remaining[list[cursor].0] {
                cursor += 1;
            }
            self.cursor[face] = cursor;
            match self.lists[face].get(cursor) {
                Some(&(new_head, _)) => self.faces_of_best[new_head].push(face),
                None if self.truncated[face] => needs_rescan.push(face),
                None => {}
            }
        }
    }

    /// Computes the gain of inserting `vertex` into `triangle` under the
    /// similarity matrix `s`: the sum of the three new edge weights.
    #[inline]
    pub fn gain_of<S: SimilaritySource>(s: &S, triangle: Triangle, vertex: usize) -> f64 {
        let [a, b, c] = triangle.corners();
        s.get(a, vertex) + s.get(b, vertex) + s.get(c, vertex)
    }

    /// Scans `remaining` (a mask over vertices) for the up-to-`depth` best
    /// vertices to insert into `triangle`, in decreasing gain order (ties
    /// towards the smaller vertex id). Returns the list and whether it was
    /// truncated (more than `depth` candidates remained). NaN gains are
    /// skipped.
    pub fn compute_candidates<S: SimilaritySource>(
        s: &S,
        triangle: Triangle,
        remaining: &[bool],
        depth: usize,
    ) -> CandidateList {
        let mut list: Vec<(usize, f64)> = Vec::with_capacity(depth + 1);
        let mut truncated = false;
        for (v, &is_remaining) in remaining.iter().enumerate() {
            if !is_remaining {
                continue;
            }
            let gain = Self::gain_of(s, triangle, v);
            if gain.is_nan() {
                continue;
            }
            if list.len() == depth {
                // Full cache: only gains strictly above the current worst
                // displace an entry (equal gains lose to the smaller vertex
                // id already present).
                let (_, worst) = list[depth - 1];
                if gain <= worst {
                    truncated = true;
                    continue;
                }
                truncated = true;
            }
            // Descending by gain, ties towards the smaller vertex id: the
            // scan visits vertices in increasing id order, so inserting
            // *after* equal gains preserves the tie-break.
            let at = list.partition_point(|&(_, g)| g >= gain);
            list.insert(at, (v, gain));
            list.truncate(depth);
        }
        (list, truncated)
    }

    /// Fused candidate refresh for the three child faces created by one
    /// insertion: splitting `parent = {a, b, c}` with `vertex = v` yields
    /// `{v,a,b}`, `{v,b,c}`, `{v,a,c}` (in [`Triangle::split_with`]
    /// order), and the three scans share all of their similarity reads —
    /// each remaining vertex `u` needs only the four loads `s(a,u)`,
    /// `s(b,u)`, `s(c,u)`, `s(v,u)` instead of the nine that three
    /// independent [`GainTable::compute_candidates`] calls would issue.
    /// This is the follow-up paper's cheap per-round gain maintenance:
    /// refresh work is driven by the round's insertions (3 lists per
    /// insertion off one scan), not by full candidate-cache invalidation.
    ///
    /// Byte-identity with the unfused path is load-bearing: each child's
    /// gain is summed **in that child's sorted-corner order** (the order
    /// [`GainTable::gain_of`] uses), because float addition is not
    /// associative and the differential tests compare gains bitwise. The
    /// per-child selection loop (NaN skip, strict-worst displacement,
    /// `partition_point` insert) is the same code shape as
    /// [`GainTable::compute_candidates`], so each returned list is exactly
    /// what a standalone refresh of that child would have produced.
    pub fn compute_candidates_for_children<S: SimilaritySource>(
        s: &S,
        parent: Triangle,
        vertex: usize,
        remaining: &[bool],
        depth: usize,
    ) -> [CandidateList; 3] {
        let [a, b, c] = parent.corners();
        // Load order of the shared reads; slot 3 is the inserted vertex.
        let ids = [a, b, c, vertex];
        // perm[k][i]: which shared load is child k's i-th sorted corner.
        let mut perm = [[0usize; 3]; 3];
        for (k, child) in parent.split_with(vertex).iter().enumerate() {
            for (i, corner) in child.corners().into_iter().enumerate() {
                perm[k][i] = ids
                    .iter()
                    .position(|&x| x == corner)
                    .expect("child corners come from {parent} ∪ {vertex}");
            }
        }
        let mut lists: [Vec<(usize, f64)>; 3] =
            std::array::from_fn(|_| Vec::with_capacity(depth + 1));
        let mut truncated = [false; 3];
        for (u, &is_remaining) in remaining.iter().enumerate() {
            if !is_remaining {
                continue;
            }
            let w = [s.get(a, u), s.get(b, u), s.get(c, u), s.get(vertex, u)];
            for k in 0..3 {
                let [i, j, l] = perm[k];
                let gain = w[i] + w[j] + w[l];
                if gain.is_nan() {
                    continue;
                }
                let list = &mut lists[k];
                if list.len() == depth {
                    let (_, worst) = list[depth - 1];
                    if gain <= worst {
                        truncated[k] = true;
                        continue;
                    }
                    truncated[k] = true;
                }
                let at = list.partition_point(|&(_, g)| g >= gain);
                list.insert(at, (u, gain));
                list.truncate(depth);
            }
        }
        let [l0, l1, l2] = lists;
        [(l0, truncated[0]), (l1, truncated[1]), (l2, truncated[2])]
    }

    /// Scans for the best vertex to insert into `triangle` among vertices
    /// that are `remaining` and not `taken` — the fallback when a truncated
    /// cached list runs dry mid-round. Ties break towards the smaller
    /// vertex id; NaN gains never win. Returns `(vertex, gain)` or `None`.
    pub fn rescan_excluding<S: SimilaritySource>(
        s: &S,
        triangle: Triangle,
        remaining: &[bool],
        taken: &[bool],
    ) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (v, &is_remaining) in remaining.iter().enumerate() {
            if !is_remaining || taken[v] {
                continue;
            }
            let gain = Self::gain_of(s, triangle, v);
            if gain.is_nan() {
                continue;
            }
            match best {
                None => best = Some((v, gain)),
                Some((_, bg)) if gain > bg => best = Some((v, gain)),
                _ => {}
            }
        }
        best
    }

    /// Scans `remaining` for the single best vertex to insert into
    /// `triangle`. Equivalent to [`GainTable::rescan_excluding`] with an
    /// empty `taken` set.
    pub fn best_for_face<S: SimilaritySource>(
        s: &S,
        triangle: Triangle,
        remaining: &[bool],
    ) -> Option<(usize, f64)> {
        let (list, _) = Self::compute_candidates(s, triangle, remaining, 1);
        list.first().copied()
    }

    /// Prescreened variant of [`GainTable::compute_candidates`]: gathers
    /// candidates from the union of the three corners' top-K neighbor
    /// lists instead of scanning all `remaining` vertices, and *certifies*
    /// that the result equals the full scan's before returning it.
    ///
    /// The certificate: a remaining vertex `v` outside all three lists has
    /// `s(v, x) <= kth_weight(x)` for each corner `x` (otherwise its pair
    /// would have made `x`'s list), so its gain is at most
    /// `B = kth(a) + kth(b) + kth(c)`. If the pool yields a full `depth`
    /// candidates whose worst gain is **strictly** above `B` (strict, so
    /// an outside vertex can never displace an entry via the smaller-id
    /// tie-break either), the pool's top-`depth` is exactly the full
    /// scan's top-`depth`. When some corner's list is complete (the vertex
    /// has fewer than K neighbors), there are no outside vertices at all
    /// and the pool is trivially exact. Returns `None` when the bound
    /// cannot certify exactness — the caller falls back to the full scan
    /// and counts a prescreen rescan.
    ///
    /// `num_remaining` is the population of the `remaining` mask (tracked
    /// by the builder; passing it avoids an O(n) recount here).
    pub fn compute_candidates_prescreened<S: SimilaritySource>(
        s: &S,
        topk: &TopKCandidates,
        triangle: Triangle,
        remaining: &[bool],
        num_remaining: usize,
        depth: usize,
    ) -> Option<CandidateList> {
        let [a, b, c] = triangle.corners();
        let mut pool: Vec<usize> = Vec::with_capacity(3 * topk.k());
        for corner in [a, b, c] {
            for &(other, _) in topk.neighbors(corner) {
                let v = other as usize;
                if remaining[v] {
                    pool.push(v);
                }
            }
        }
        // Increasing id order with duplicates removed, so the selection
        // loop below resolves gain ties exactly like the full scan.
        pool.sort_unstable();
        pool.dedup();
        let outside = num_remaining - pool.len();
        let bound = if outside > 0 {
            match (topk.kth_weight(a), topk.kth_weight(b), topk.kth_weight(c)) {
                (Some(wa), Some(wb), Some(wc)) => Some(wa + wb + wc),
                // A complete corner list covers every remaining vertex, so
                // `outside > 0` is impossible here; unreachable in
                // practice, but fall back conservatively.
                _ => return None,
            }
        } else {
            None
        };
        // The same selection loop as the full scan, over the pool only.
        let mut list: Vec<(usize, f64)> = Vec::with_capacity(depth + 1);
        let mut truncated = false;
        for &v in &pool {
            let gain = Self::gain_of(s, triangle, v);
            if gain.is_nan() {
                continue;
            }
            if list.len() == depth {
                let (_, worst) = list[depth - 1];
                if gain <= worst {
                    truncated = true;
                    continue;
                }
                truncated = true;
            }
            let at = list.partition_point(|&(_, g)| g >= gain);
            list.insert(at, (v, gain));
            list.truncate(depth);
        }
        if let Some(bound) = bound {
            // Outside vertices exist: exact only if the pool filled the
            // whole list with gains strictly above what any outside vertex
            // can reach.
            if list.len() < depth || list[depth - 1].1 <= bound {
                return None;
            }
            truncated = true;
        }
        Some((list, truncated))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfg_graph::SymmetricMatrix;

    fn matrix() -> SymmetricMatrix {
        // 5 vertices; vertex 4 is strongly attached to {0,1,2}.
        SymmetricMatrix::from_fn(5, |i, j| {
            if i == j {
                1.0
            } else if (i, j) == (0, 4) || (i, j) == (1, 4) || (i, j) == (2, 4) {
                0.9
            } else {
                0.1
            }
        })
    }

    #[test]
    fn gain_is_sum_of_three_edges() {
        let s = matrix();
        let t = Triangle::new(0, 1, 2);
        assert!((GainTable::gain_of(&s, t, 4) - 2.7).abs() < 1e-12);
        assert!((GainTable::gain_of(&s, t, 3) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn best_for_face_prefers_highest_gain() {
        let s = matrix();
        let t = Triangle::new(0, 1, 2);
        let remaining = vec![false, false, false, true, true];
        let (v, gain) = GainTable::best_for_face(&s, t, &remaining).unwrap();
        assert_eq!(v, 4);
        assert!((gain - 2.7).abs() < 1e-12);
    }

    #[test]
    fn best_for_face_tie_breaks_to_smaller_index() {
        let s = SymmetricMatrix::filled(5, 0.5);
        let t = Triangle::new(0, 1, 2);
        let remaining = vec![false, false, false, true, true];
        let (v, _) = GainTable::best_for_face(&s, t, &remaining).unwrap();
        assert_eq!(v, 3);
    }

    #[test]
    fn best_for_face_none_when_empty() {
        let s = matrix();
        let t = Triangle::new(0, 1, 2);
        let remaining = vec![false; 5];
        assert!(GainTable::best_for_face(&s, t, &remaining).is_none());
    }

    #[test]
    fn candidates_are_sorted_with_ties_to_smaller_vertex() {
        let s = SymmetricMatrix::from_fn(6, |i, j| {
            if i == j {
                1.0
            } else if i.min(j) < 3 && i.max(j) == 4 {
                0.9
            } else {
                0.5
            }
        });
        let t = Triangle::new(0, 1, 2);
        let remaining = vec![false, false, false, true, true, true];
        let (list, truncated) = GainTable::compute_candidates(&s, t, &remaining, 8);
        assert!(!truncated);
        let vertices: Vec<usize> = list.iter().map(|&(v, _)| v).collect();
        // 4 has gain 2.7; 3 and 5 tie at 1.5 → smaller id first.
        assert_eq!(vertices, vec![4, 3, 5]);
        assert!(list.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn candidates_truncate_and_flag() {
        let s = SymmetricMatrix::from_fn(10, |i, j| {
            if i == j {
                1.0
            } else {
                ((i * 7 + j * 3) % 11) as f64 / 11.0
            }
        });
        let t = Triangle::new(0, 1, 2);
        let mut remaining = vec![true; 10];
        for slot in remaining.iter_mut().take(3) {
            *slot = false;
        }
        let (full, full_truncated) = GainTable::compute_candidates(&s, t, &remaining, 10);
        assert_eq!(full.len(), 7);
        assert!(!full_truncated);
        let (top3, truncated) = GainTable::compute_candidates(&s, t, &remaining, 3);
        assert!(truncated);
        assert_eq!(top3, full[..3].to_vec());
    }

    #[test]
    fn candidates_skip_nan_gains() {
        let s = SymmetricMatrix::from_fn(6, |i, j| {
            if i == j {
                1.0
            } else if i.max(j) == 4 {
                f64::NAN
            } else {
                0.5
            }
        });
        let t = Triangle::new(0, 1, 2);
        let remaining = vec![false, false, false, true, true, true];
        let (list, _) = GainTable::compute_candidates(&s, t, &remaining, 8);
        let vertices: Vec<usize> = list.iter().map(|&(v, _)| v).collect();
        assert_eq!(vertices, vec![3, 5], "NaN-gain vertex 4 must be skipped");
        assert!(
            GainTable::rescan_excluding(&s, t, &remaining, &[false; 6])
                .is_some_and(|(v, _)| v != 4),
            "rescan must not pick a NaN gain"
        );
    }

    #[test]
    fn fused_child_refresh_is_bitwise_identical_to_unfused() {
        // The fused scan must reproduce, bit for bit, what three
        // independent compute_candidates calls produce for the children of
        // one insertion — including gain sums (addition order), tie-break
        // order and truncation flags. Irrational-ish weights make any
        // addition-order deviation visible.
        let n = 24;
        let s = SymmetricMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else {
                (((i * 31 + j * 17) % 97) as f64 / 97.0).sin().abs()
            }
        });
        let parent = Triangle::new(2, 11, 19);
        let vertex = 7;
        let mut remaining = vec![true; n];
        for v in [2, 11, 19, 7, 0, 1] {
            remaining[v] = false;
        }
        for depth in [1, 4, 32] {
            let fused =
                GainTable::compute_candidates_for_children(&s, parent, vertex, &remaining, depth);
            for (k, child) in parent.split_with(vertex).into_iter().enumerate() {
                let unfused = GainTable::compute_candidates(&s, child, &remaining, depth);
                assert_eq!(fused[k].1, unfused.1, "depth {depth} child {k}: flag");
                assert_eq!(fused[k].0.len(), unfused.0.len());
                for (f, u) in fused[k].0.iter().zip(&unfused.0) {
                    assert_eq!(f.0, u.0, "depth {depth} child {k}: vertex");
                    assert_eq!(
                        f.1.to_bits(),
                        u.1.to_bits(),
                        "depth {depth} child {k}: gain bits"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_child_refresh_skips_nan_gains() {
        let s = SymmetricMatrix::from_fn(8, |i, j| {
            if i == j {
                1.0
            } else if i.max(j) == 6 {
                f64::NAN
            } else {
                0.5
            }
        });
        let parent = Triangle::new(0, 1, 2);
        let mut remaining = vec![true; 8];
        for v in [0, 1, 2, 3] {
            remaining[v] = false;
        }
        let fused = GainTable::compute_candidates_for_children(&s, parent, 3, &remaining, 8);
        for (k, (list, _)) in fused.iter().enumerate() {
            assert!(
                list.iter().all(|&(v, g)| v != 6 && !g.is_nan()),
                "child {k} must skip the NaN vertex"
            );
        }
    }

    #[test]
    fn next_best_skips_taken_and_inserted() {
        let s = matrix();
        let t = Triangle::new(0, 1, 2);
        let mut table = GainTable::new(5, 4);
        let f = table.push_face();
        let remaining = vec![false, false, false, true, true];
        let (list, truncated) = GainTable::compute_candidates(&s, t, &remaining, table.depth());
        table.install(f, list, truncated);
        assert_eq!(table.head(f), Some((4, 2.7)));

        let mut taken = vec![false; 5];
        taken[4] = true;
        match table.next_best(f, table.head_pos(f), &remaining, &taken) {
            NextBest::Found { vertex, gain, pos } => {
                assert_eq!((vertex, pos), (3, 1));
                assert!((gain - 0.3).abs() < 1e-12);
            }
            other => panic!("expected vertex 3, got {other:?}"),
        }
        taken[3] = true;
        assert_eq!(
            table.next_best(f, table.head_pos(f), &remaining, &taken),
            NextBest::Exhausted { truncated: false }
        );
    }

    #[test]
    fn on_vertex_inserted_advances_cursor_and_reregisters() {
        let s = matrix();
        let t = Triangle::new(0, 1, 2);
        let mut table = GainTable::new(5, 4);
        let f = table.push_face();
        let mut remaining = vec![false, false, false, true, true];
        let (list, truncated) = GainTable::compute_candidates(&s, t, &remaining, table.depth());
        table.install(f, list, truncated);
        assert_eq!(table.faces_possibly_best_for(4), &[f]);

        remaining[4] = false;
        let mut needs_rescan = Vec::new();
        table.on_vertex_inserted(4, &remaining, &[true], &mut needs_rescan);
        assert!(needs_rescan.is_empty());
        let (head, gain) = table.head(f).unwrap();
        assert_eq!(head, 3);
        assert!((gain - 0.3).abs() < 1e-12);
        assert!(table.faces_possibly_best_for(4).is_empty(), "consumed");
        assert_eq!(table.faces_possibly_best_for(3), &[f]);
    }

    #[test]
    fn drained_truncated_list_requests_rescan() {
        let s = SymmetricMatrix::filled(8, 0.5);
        let t = Triangle::new(0, 1, 2);
        let mut table = GainTable::new(8, 1); // depth clamps to MIN_CACHE_DEPTH
        assert_eq!(table.depth(), MIN_CACHE_DEPTH);
        let f = table.push_face();
        let mut remaining = vec![true; 8];
        for slot in remaining.iter_mut().take(3) {
            *slot = false;
        }
        let (list, truncated) = GainTable::compute_candidates(&s, t, &remaining, table.depth());
        assert!(truncated, "5 candidates > depth 4");
        table.install(f, list, truncated);
        // Insert the four cached candidates one by one; draining the list
        // must request a rescan because more candidates exist off-cache.
        let mut needs_rescan = Vec::new();
        for v in 3..7 {
            remaining[v] = false;
            table.on_vertex_inserted(v, &remaining, &[true], &mut needs_rescan);
        }
        assert_eq!(needs_rescan, vec![f]);
        assert_eq!(table.head(f), None);
        let (fresh, fresh_truncated) =
            GainTable::compute_candidates(&s, t, &remaining, table.depth());
        assert_eq!(fresh, vec![(7, 1.5)]);
        assert!(!fresh_truncated);
    }

    #[test]
    fn stale_registrations_are_dropped() {
        let s = matrix();
        let t = Triangle::new(0, 1, 2);
        let mut table = GainTable::new(5, 4);
        let f = table.push_face();
        let remaining = vec![false, false, false, true, true];
        let (list, truncated) = GainTable::compute_candidates(&s, t, &remaining, table.depth());
        table.install(f, list.clone(), truncated);
        // Reinstall under the same head: the old registration is now a
        // duplicate. Processing the vertex must drop both (one consumed,
        // one stale) without double-advancing the cursor.
        table.install(f, list, truncated);
        assert_eq!(table.faces_possibly_best_for(4), &[f, f]);
        let mut remaining = remaining;
        remaining[4] = false;
        let mut needs_rescan = Vec::new();
        table.on_vertex_inserted(4, &remaining, &[true], &mut needs_rescan);
        assert_eq!(table.head(f).unwrap().0, 3);
        assert_eq!(table.faces_possibly_best_for(3), &[f]);
        assert!(table.faces_possibly_best_for(4).is_empty());
    }

    #[test]
    fn inactive_faces_are_pruned_from_reverse_index() {
        let s = matrix();
        let t = Triangle::new(0, 1, 2);
        let mut table = GainTable::new(5, 4);
        let f = table.push_face();
        let mut remaining = vec![false, false, false, true, true];
        let (list, truncated) = GainTable::compute_candidates(&s, t, &remaining, table.depth());
        table.install(f, list, truncated);
        remaining[4] = false;
        let mut needs_rescan = Vec::new();
        // The face went inactive (split) before its head was inserted.
        table.on_vertex_inserted(4, &remaining, &[false], &mut needs_rescan);
        assert!(table.faces_possibly_best_for(4).is_empty());
        assert!(
            table.faces_possibly_best_for(3).is_empty(),
            "not re-registered"
        );
        assert!(needs_rescan.is_empty());
    }
}
