//! The gain table: for every active face, the best remaining vertex.
//!
//! Algorithm 1 keeps, for each face `t`, `GAINS[t] = argmax_{u ∈ V} Σ_{c ∈ t}
//! S[c, u]`. Unlike the original TMFG code, which rescans every face after
//! each insertion, the paper (and this implementation) keeps a reverse index
//! from each vertex to the faces whose recorded best vertex it currently is,
//! so only the affected faces are recomputed.

use pfg_graph::SymmetricMatrix;

use crate::face::Triangle;

/// Best-vertex bookkeeping for the faces of the graph under construction.
#[derive(Debug, Clone)]
pub struct GainTable {
    /// `best_vertex[f]` is the best remaining vertex for face `f`, if any.
    best_vertex: Vec<Option<usize>>,
    /// `best_gain[f]` is the gain of inserting that vertex into face `f`.
    best_gain: Vec<f64>,
    /// `faces_of_best[v]` lists face ids whose recorded best vertex is (or
    /// recently was) `v`. Entries may be stale; readers must cross-check
    /// against `best_vertex`.
    faces_of_best: Vec<Vec<usize>>,
}

impl GainTable {
    /// Creates an empty table for a graph on `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            best_vertex: Vec::new(),
            best_gain: Vec::new(),
            faces_of_best: vec![Vec::new(); num_vertices],
        }
    }

    /// Number of faces tracked (active or not).
    pub fn num_faces(&self) -> usize {
        self.best_vertex.len()
    }

    /// Registers a new face id; its best vertex starts unset.
    pub fn push_face(&mut self) -> usize {
        self.best_vertex.push(None);
        self.best_gain.push(f64::NEG_INFINITY);
        self.best_vertex.len() - 1
    }

    /// The best vertex recorded for face `face`.
    #[inline]
    pub fn best_vertex(&self, face: usize) -> Option<usize> {
        self.best_vertex[face]
    }

    /// The gain recorded for face `face`.
    #[inline]
    pub fn best_gain(&self, face: usize) -> f64 {
        self.best_gain[face]
    }

    /// Faces whose recorded best vertex may be `v` (possibly stale).
    #[inline]
    pub fn faces_possibly_best_for(&self, v: usize) -> &[usize] {
        &self.faces_of_best[v]
    }

    /// Records that `vertex` (with `gain`) is the best choice for `face`.
    pub fn record_best(&mut self, face: usize, vertex: Option<usize>, gain: f64) {
        self.best_vertex[face] = vertex;
        self.best_gain[face] = gain;
        if let Some(v) = vertex {
            self.faces_of_best[v].push(face);
        }
    }

    /// Computes the gain of inserting `vertex` into `triangle` under the
    /// similarity matrix `s`: the sum of the three new edge weights.
    #[inline]
    pub fn gain_of(s: &SymmetricMatrix, triangle: Triangle, vertex: usize) -> f64 {
        let [a, b, c] = triangle.corners();
        s.get(a, vertex) + s.get(b, vertex) + s.get(c, vertex)
    }

    /// Scans `remaining` (a mask over vertices) for the best vertex to
    /// insert into `triangle`. Ties are broken towards the smaller vertex
    /// index. Returns `(vertex, gain)` or `None` if no vertex remains.
    pub fn best_for_face(
        s: &SymmetricMatrix,
        triangle: Triangle,
        remaining: &[bool],
    ) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (v, &is_remaining) in remaining.iter().enumerate() {
            if !is_remaining {
                continue;
            }
            let gain = Self::gain_of(s, triangle, v);
            match best {
                None => best = Some((v, gain)),
                Some((_, bg)) if gain > bg => best = Some((v, gain)),
                _ => {}
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> SymmetricMatrix {
        // 5 vertices; vertex 4 is strongly attached to {0,1,2}.
        SymmetricMatrix::from_fn(5, |i, j| {
            if i == j {
                1.0
            } else if (i, j) == (0, 4) || (i, j) == (1, 4) || (i, j) == (2, 4) {
                0.9
            } else {
                0.1
            }
        })
    }

    #[test]
    fn gain_is_sum_of_three_edges() {
        let s = matrix();
        let t = Triangle::new(0, 1, 2);
        assert!((GainTable::gain_of(&s, t, 4) - 2.7).abs() < 1e-12);
        assert!((GainTable::gain_of(&s, t, 3) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn best_for_face_prefers_highest_gain() {
        let s = matrix();
        let t = Triangle::new(0, 1, 2);
        let remaining = vec![false, false, false, true, true];
        let (v, gain) = GainTable::best_for_face(&s, t, &remaining).unwrap();
        assert_eq!(v, 4);
        assert!((gain - 2.7).abs() < 1e-12);
    }

    #[test]
    fn best_for_face_tie_breaks_to_smaller_index() {
        let s = SymmetricMatrix::filled(5, 0.5);
        let t = Triangle::new(0, 1, 2);
        let remaining = vec![false, false, false, true, true];
        let (v, _) = GainTable::best_for_face(&s, t, &remaining).unwrap();
        assert_eq!(v, 3);
    }

    #[test]
    fn best_for_face_none_when_empty() {
        let s = matrix();
        let t = Triangle::new(0, 1, 2);
        let remaining = vec![false; 5];
        assert!(GainTable::best_for_face(&s, t, &remaining).is_none());
    }

    #[test]
    fn record_best_maintains_reverse_index() {
        let mut table = GainTable::new(5);
        let f0 = table.push_face();
        let f1 = table.push_face();
        table.record_best(f0, Some(4), 2.7);
        table.record_best(f1, Some(4), 1.0);
        assert_eq!(table.faces_possibly_best_for(4), &[f0, f1]);
        assert_eq!(table.best_vertex(f0), Some(4));
        assert!((table.best_gain(f1) - 1.0).abs() < 1e-12);
        assert_eq!(table.num_faces(), 2);
    }
}
