//! The bubble tree built on the fly during TMFG construction (Algorithm 2).
//!
//! A *bubble* is a maximal planar subgraph whose triangles are
//! non-separating; for a TMFG every inserted vertex creates exactly one new
//! bubble (the 4-clique formed by the vertex and the face it was inserted
//! into) and one new bubble-tree edge (the face itself, which becomes a
//! separating triangle). The tree is rooted and maintains the invariant
//! that all descendants of an edge lie on the interior side of its
//! separating triangle, which is what makes the linear-work direction
//! computation of Algorithm 3 possible.

use crate::face::Triangle;

/// A node of the bubble tree: a 4-clique of the TMFG.
#[derive(Debug, Clone)]
pub struct Bubble {
    /// The four vertices of the clique (sorted).
    pub vertices: [usize; 4],
    /// Parent bubble in the rooted tree, if any.
    pub parent: Option<usize>,
    /// The separating triangle shared with the parent (the bubble-tree edge
    /// towards the parent). `None` iff this bubble is the root.
    pub parent_triangle: Option<Triangle>,
    /// Children bubbles. Every non-root bubble has at most three children;
    /// the root can have up to four.
    pub children: Vec<usize>,
}

impl Bubble {
    /// Sum over all vertices of the bubble of `f(v)`.
    pub fn total_edge_weight(&self, weight: impl Fn(usize, usize) -> f64) -> f64 {
        let vs = self.vertices;
        let mut sum = 0.0;
        for i in 0..4 {
            for j in (i + 1)..4 {
                sum += weight(vs[i], vs[j]);
            }
        }
        sum
    }

    /// Returns `true` if `v` is one of the bubble's four vertices.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        self.vertices.contains(&v)
    }
}

/// The rooted (initially undirected) bubble tree of a TMFG.
///
/// Bubble 0 always corresponds to the initial 4-clique, but is not
/// necessarily the root: inserting a vertex into the outer face makes the
/// new bubble the parent of the previous root (Algorithm 2, lines 4–7).
#[derive(Debug, Clone)]
pub struct BubbleTree {
    bubbles: Vec<Bubble>,
    root: usize,
    outer_face: Triangle,
    num_vertices: usize,
}

impl BubbleTree {
    /// Creates a bubble tree containing only the initial 4-clique.
    /// `outer_face` must be a face of that clique; the paper chooses
    /// `{v1, v2, v3}` (the choice does not affect the tree's topology).
    pub fn new(initial_clique: [usize; 4], outer_face: Triangle, num_vertices: usize) -> Self {
        debug_assert!(
            outer_face
                .corners()
                .iter()
                .all(|c| initial_clique.contains(c)),
            "outer face must be a face of the initial clique"
        );
        let mut vertices = initial_clique;
        vertices.sort_unstable();
        Self {
            bubbles: vec![Bubble {
                vertices,
                parent: None,
                parent_triangle: None,
                children: Vec::new(),
            }],
            root: 0,
            outer_face,
            num_vertices,
        }
    }

    /// Number of bubbles.
    #[inline]
    pub fn len(&self) -> usize {
        self.bubbles.len()
    }

    /// Returns `true` if the tree has no bubbles (never the case after
    /// construction; provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bubbles.is_empty()
    }

    /// The root bubble's identifier.
    #[inline]
    pub fn root(&self) -> usize {
        self.root
    }

    /// The current outer face of the TMFG under construction.
    #[inline]
    pub fn outer_face(&self) -> Triangle {
        self.outer_face
    }

    /// Number of vertices of the underlying TMFG.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Access a bubble by id.
    #[inline]
    pub fn bubble(&self, id: usize) -> &Bubble {
        &self.bubbles[id]
    }

    /// Iterator over `(id, bubble)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Bubble)> {
        self.bubbles.iter().enumerate()
    }

    /// `UpdateBubbleTree(v, t, T)` from Algorithm 2: vertex `v` was inserted
    /// into face `t`, which lies in bubble `containing_bubble`. Creates the
    /// new bubble and links it into the tree. Returns the new bubble's id.
    pub fn insert(&mut self, v: usize, t: Triangle, containing_bubble: usize) -> usize {
        let new_id = self.bubbles.len();
        let [a, b, c] = t.corners();
        let mut vertices = [v, a, b, c];
        vertices.sort_unstable();

        if t == self.outer_face {
            // Inserting into the outer face: the new bubble becomes the
            // parent of the current root, and the outer face advances to a
            // face of the new 4-clique.
            debug_assert_eq!(
                containing_bubble, self.root,
                "outer face must be in the root bubble"
            );
            let new_bubble = Bubble {
                vertices,
                parent: None,
                parent_triangle: None,
                children: vec![containing_bubble],
            };
            self.bubbles.push(new_bubble);
            self.bubbles[containing_bubble].parent = Some(new_id);
            self.bubbles[containing_bubble].parent_triangle = Some(t);
            self.root = new_id;
            self.outer_face = Triangle::new(v, a, b);
        } else {
            let new_bubble = Bubble {
                vertices,
                parent: Some(containing_bubble),
                parent_triangle: Some(t),
                children: Vec::new(),
            };
            self.bubbles.push(new_bubble);
            self.bubbles[containing_bubble].children.push(new_id);
        }
        new_id
    }

    /// The height (longest root-to-leaf path, in edges) of the tree.
    pub fn height(&self) -> usize {
        fn depth(tree: &BubbleTree, b: usize) -> usize {
            tree.bubble(b)
                .children
                .iter()
                .map(|&c| 1 + depth(tree, c))
                .max()
                .unwrap_or(0)
        }
        depth(self, self.root)
    }

    /// Ids of the bubbles containing each vertex, indexed by vertex.
    pub fn bubbles_of_vertices(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_vertices];
        for (id, b) in self.iter() {
            for &v in &b.vertices {
                out[v].push(id);
            }
        }
        out
    }

    /// Checks the structural invariants of the tree (used by tests and
    /// debug assertions): parent/child links are consistent, every non-root
    /// bubble has a parent triangle that is shared with its parent, the
    /// child count bounds hold, and the tree is connected.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.bubbles.len();
        let mut seen = vec![false; n];
        let mut stack = vec![self.root];
        if self.bubbles[self.root].parent.is_some() {
            return Err("root must not have a parent".into());
        }
        while let Some(b) = stack.pop() {
            if seen[b] {
                return Err(format!("bubble {b} reachable twice: not a tree"));
            }
            seen[b] = true;
            let bubble = &self.bubbles[b];
            let max_children = if b == self.root { 4 } else { 3 };
            if bubble.children.len() > max_children {
                return Err(format!(
                    "bubble {b} has {} children (max {max_children})",
                    bubble.children.len()
                ));
            }
            for &c in &bubble.children {
                let child = &self.bubbles[c];
                if child.parent != Some(b) {
                    return Err(format!("child {c} of {b} has parent {:?}", child.parent));
                }
                let t = child
                    .parent_triangle
                    .ok_or_else(|| format!("child {c} lacks a parent triangle"))?;
                for corner in t.corners() {
                    if !bubble.contains(corner) || !child.contains(corner) {
                        return Err(format!(
                            "separating triangle {t} of edge ({c}, {b}) not shared by both bubbles"
                        ));
                    }
                }
                stack.push(c);
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("bubble tree is not connected".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces Example 1 / Figure 2 of the paper: start with the clique
    /// {0,1,2,4}, insert 3 into {0,1,2} (the outer face), then 5 into
    /// {1,2,3} and 6 into {0,1,3}.
    fn paper_example_tree() -> BubbleTree {
        let outer = Triangle::new(0, 1, 2);
        let mut tree = BubbleTree::new([0, 1, 2, 4], outer, 7);
        // b1 = {0,1,2,4} is bubble 0.
        let b2 = tree.insert(3, Triangle::new(0, 1, 2), 0);
        // After inserting into the outer face, the outer face becomes {3,0,1}.
        assert_eq!(tree.outer_face(), Triangle::new(0, 1, 3));
        let b3 = tree.insert(6, Triangle::new(0, 1, 3), b2);
        let b4 = tree.insert(5, Triangle::new(1, 2, 3), b2);
        assert_eq!((b2, b3, b4), (1, 2, 3));
        tree
    }

    #[test]
    fn paper_example_structure() {
        let tree = paper_example_tree();
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 4);
        // b3 = {0,1,3,6} is the root (it absorbed the outer face twice).
        assert_eq!(tree.root(), 2);
        assert_eq!(tree.bubble(2).vertices, [0, 1, 3, 6]);
        // b2 = {0,1,2,3} is the child of b3 and parent of b1 and b4.
        let b2 = tree.bubble(1);
        assert_eq!(b2.vertices, [0, 1, 2, 3]);
        assert_eq!(b2.parent, Some(2));
        assert_eq!(b2.parent_triangle, Some(Triangle::new(0, 1, 3)));
        let mut children = b2.children.clone();
        children.sort_unstable();
        assert_eq!(children, vec![0, 3]);
        // b1 = {0,1,2,4} hangs off b2 via triangle {0,1,2}.
        let b1 = tree.bubble(0);
        assert_eq!(b1.parent, Some(1));
        assert_eq!(b1.parent_triangle, Some(Triangle::new(0, 1, 2)));
        // b4 = {1,2,3,5} hangs off b2 via triangle {1,2,3}.
        let b4 = tree.bubble(3);
        assert_eq!(b4.vertices, [1, 2, 3, 5]);
        assert_eq!(b4.parent, Some(1));
        assert_eq!(b4.parent_triangle, Some(Triangle::new(1, 2, 3)));
    }

    #[test]
    fn height_and_vertex_membership() {
        let tree = paper_example_tree();
        assert_eq!(tree.height(), 2);
        let membership = tree.bubbles_of_vertices();
        // Vertex 1 is in every bubble.
        assert_eq!(membership[1].len(), 4);
        // Vertex 4 is only in bubble 0, vertex 6 only in bubble 2.
        assert_eq!(membership[4], vec![0]);
        assert_eq!(membership[6], vec![2]);
    }

    #[test]
    fn inner_face_insert_keeps_root() {
        let outer = Triangle::new(0, 1, 2);
        let mut tree = BubbleTree::new([0, 1, 2, 3], outer, 6);
        // Insert into an inner face: root unchanged.
        let b = tree.insert(4, Triangle::new(1, 2, 3), 0);
        assert_eq!(tree.root(), 0);
        assert_eq!(tree.bubble(b).parent, Some(0));
        assert_eq!(tree.outer_face(), outer);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn single_bubble_invariants() {
        let tree = BubbleTree::new([2, 0, 3, 1], Triangle::new(0, 1, 2), 4);
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.bubble(0).vertices, [0, 1, 2, 3]);
        assert!(!tree.is_empty());
    }

    #[test]
    fn bubble_total_edge_weight() {
        let b = Bubble {
            vertices: [0, 1, 2, 3],
            parent: None,
            parent_triangle: None,
            children: vec![],
        };
        // All six edges weight 1 → total 6.
        assert_eq!(b.total_edge_weight(|_, _| 1.0), 6.0);
    }
}
