//! The end-to-end PAR-TDBHT pipeline: similarity matrix → TMFG → DBHT →
//! dendrogram, with per-stage wall-clock timings.
//!
//! The stage timings refine the runtime-breakdown categories of Figure 5
//! in the paper: `tmfg` (Algorithm 1, including the on-the-fly bubble
//! tree), `apsp` (the demand-driven shortest paths on the
//! dissimilarity-weighted filtered graph — converging-bubble source rows
//! plus per-group blocks), `direction` (Algorithm 3), `assignment`
//! (Algorithm 4, lines 1–23) and `hierarchy` (the three-level
//! complete-linkage step, lines 24–33, plus §V-D height re-assignment).
//! The paper's lumped "bubble tree" category is `direction + assignment`.

use std::time::{Duration, Instant};

use pfg_graph::{
    DissimilarityView, PairDistances, SimilaritySource, SourceRows, SymmetricMatrix,
    SymmetricMatrixF32, TopKCandidates,
};

use crate::dbht::{
    assignment, converging_vertices, direction, hierarchy, restricted_distances, DbhtRunStats,
    VertexAssignment,
};
use crate::dendrogram::Dendrogram;
use crate::error::CoreError;
use crate::tmfg::{tmfg, tmfg_prescreened, Tmfg, TmfgConfig};

/// Configuration of the PAR-TDBHT pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParTdbhtConfig {
    /// TMFG construction parameters (prefix size).
    pub tmfg: TmfgConfig,
    /// When `Some(k)`, TMFG candidate refreshes run over the top-`k`
    /// sparse prescreen ([`TopKCandidates`]) instead of full row scans —
    /// output-identical by construction (certified candidate lists, exact
    /// fallback), with the fallback count reported in
    /// [`Tmfg::prescreen_rescans`]. `None` keeps the dense scans.
    pub prescreen: Option<usize>,
}

impl ParTdbhtConfig {
    /// Pipeline configuration with the given TMFG prefix size.
    pub fn with_prefix(prefix: usize) -> Self {
        Self {
            tmfg: TmfgConfig::with_prefix(prefix),
            prescreen: None,
        }
    }

    /// Enables the top-`k` candidate prescreen.
    pub fn with_prescreen(mut self, k: usize) -> Self {
        self.prescreen = Some(k);
        self
    }
}

/// Wall-clock timings of the pipeline stages (refined Figure 5 categories).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// TMFG construction (Algorithm 1 + Algorithm 2).
    pub tmfg: Duration,
    /// Demand-driven shortest paths over the dissimilarity-weighted TMFG:
    /// converging-bubble source rows plus per-group dense blocks (both
    /// phases summed).
    pub apsp: Duration,
    /// Bubble-tree direction computation (Algorithm 3).
    pub direction: Duration,
    /// Vertex-to-bubble assignment (Algorithm 4, lines 1–23).
    pub assignment: Duration,
    /// Three-level complete-linkage hierarchy (Algorithm 4, lines 24–33).
    pub hierarchy: Duration,
}

impl StageTimings {
    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.tmfg + self.apsp + self.direction + self.assignment + self.hierarchy
    }

    /// The paper's lumped Figure 5 "bubble tree" category
    /// (direction + assignment).
    pub fn bubble_tree(&self) -> Duration {
        self.direction + self.assignment
    }
}

/// The result of running the full pipeline.
#[derive(Debug, Clone)]
pub struct ParTdbhtResult {
    /// The constructed TMFG (graph, bubble tree, insertion trace).
    pub tmfg: Tmfg,
    /// Per-vertex group and bubble assignments.
    pub assignment: VertexAssignment,
    /// The final DBHT dendrogram.
    pub dendrogram: Dendrogram,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// HAC and restricted-APSP counters of the DBHT back half.
    pub dbht_stats: DbhtRunStats,
}

impl ParTdbhtResult {
    /// Convenience: cluster labels obtained by cutting the dendrogram into
    /// `k` clusters.
    pub fn clusters(&self, k: usize) -> Vec<usize> {
        self.dendrogram.cut_to_clusters(k)
    }
}

/// The PAR-TDBHT pipeline runner.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParTdbht {
    config: ParTdbhtConfig,
}

impl ParTdbht {
    /// Creates a runner with the given configuration.
    pub fn new(config: ParTdbhtConfig) -> Self {
        Self { config }
    }

    /// Creates a runner with the given TMFG prefix size.
    pub fn with_prefix(prefix: usize) -> Self {
        Self::new(ParTdbhtConfig::with_prefix(prefix))
    }

    /// Runs TMFG construction followed by the DBHT.
    ///
    /// `similarity` is the full pairwise similarity matrix (e.g. Pearson
    /// correlations); `dissimilarity` supplies the edge lengths for the
    /// shortest-path computations (e.g. `sqrt(2 (1 − ρ))`).
    ///
    /// # Errors
    /// Propagates [`CoreError`] for inputs that are too small, mismatched
    /// matrix sizes, or an invalid prefix.
    pub fn run(
        &self,
        similarity: &SymmetricMatrix,
        dissimilarity: &SymmetricMatrix,
    ) -> Result<ParTdbhtResult, CoreError> {
        self.run_with(similarity, dissimilarity)
    }

    /// [`ParTdbht::run`] over half-footprint `f32` similarity storage,
    /// deriving edge dissimilarities on the fly through
    /// [`DissimilarityView`] — no dense `f64` copy and no dense
    /// dissimilarity matrix are ever materialized, cutting the input-side
    /// memory from `16 n²` bytes to `4 n²`.
    ///
    /// # Errors
    /// Propagates [`CoreError`] exactly like [`ParTdbht::run`].
    pub fn run_f32(&self, similarity: &SymmetricMatrixF32) -> Result<ParTdbhtResult, CoreError> {
        self.run_with(similarity, &DissimilarityView::new(similarity))
    }

    /// The generic pipeline: any [`SimilaritySource`] for construction,
    /// any [`PairDistances`] for the DBHT metric. [`ParTdbht::run`] and
    /// [`ParTdbht::run_f32`] are thin wrappers.
    ///
    /// # Errors
    /// Propagates [`CoreError`] for inputs that are too small, mismatched
    /// matrix sizes, or an invalid prefix.
    pub fn run_with<S: SimilaritySource, D: PairDistances>(
        &self,
        similarity: &S,
        dissimilarity: &D,
    ) -> Result<ParTdbhtResult, CoreError> {
        if similarity.n() != dissimilarity.num_vertices() {
            return Err(CoreError::DimensionMismatch {
                similarity: similarity.n(),
                dissimilarity: dissimilarity.num_vertices(),
            });
        }

        // Construction: dense row scans, or the top-K prescreen when
        // configured (identical output; the prescreen build is charged to
        // the tmfg stage).
        let start = Instant::now();
        let tmfg_result = match self.config.prescreen {
            None => tmfg(similarity, self.config.tmfg)?,
            Some(k) => {
                let topk = TopKCandidates::build(similarity, k);
                tmfg_prescreened(similarity, &topk, self.config.tmfg)?
            }
        };
        let tmfg_time = start.elapsed();

        // Direction pass (Algorithm 3) — determines the converging bubbles
        // and therefore which shortest-path rows are needed at all.
        let start = Instant::now();
        let bubble_graph =
            direction::direct_tmfg_bubble_tree(&tmfg_result.bubble_tree, &tmfg_result.graph);
        let direction_time = start.elapsed();

        // Phase 1 of the demand-driven shortest paths: full rows for the
        // converging-bubble vertices over the dissimilarity-weighted TMFG.
        let start = Instant::now();
        let dgraph = crate::dbht::dissimilarity_graph(&tmfg_result.graph, dissimilarity);
        let rows = SourceRows::compute(&dgraph, &converging_vertices(&bubble_graph));
        let mut apsp_time = start.elapsed();

        // Vertex assignment (Algorithm 4, lines 1–23) reads only the rows.
        let start = Instant::now();
        let assignment = assignment::assign_vertices(&tmfg_result.graph, &bubble_graph, &rows);
        let assignment_time = start.elapsed();

        // Phase 2: dense per-group blocks for the now-known groups.
        let start = Instant::now();
        let distances = restricted_distances(&dgraph, rows, &assignment);
        apsp_time += start.elapsed();
        let apsp_stats = distances.stats();

        // Hierarchy (parallel mutual-NN rounds).
        let start = Instant::now();
        let (dendrogram, hac_stats) = hierarchy::build_hierarchy_with(
            &bubble_graph,
            &assignment,
            &distances,
            hierarchy::HacBackend::ParallelRounds,
        );
        let hierarchy_time = start.elapsed();

        Ok(ParTdbhtResult {
            tmfg: tmfg_result,
            assignment,
            dendrogram,
            timings: StageTimings {
                tmfg: tmfg_time,
                apsp: apsp_time,
                direction: direction_time,
                assignment: assignment_time,
                hierarchy: hierarchy_time,
            },
            dbht_stats: DbhtRunStats::of(hac_stats, apsp_stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blocks(n: usize, k: usize, seed: u64) -> (SymmetricMatrix, SymmetricMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
        let s = SymmetricMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else if labels[i] == labels[j] {
                0.8 + rng.gen_range(-0.05..0.05)
            } else {
                0.1 + rng.gen_range(-0.05..0.05)
            }
        });
        let d = s.map(|p| (2.0 * (1.0 - p)).sqrt());
        (s, d, labels)
    }

    #[test]
    fn pipeline_produces_complete_dendrogram() {
        let (s, d, _) = blocks(40, 4, 1);
        for prefix in [1, 10] {
            let result = ParTdbht::with_prefix(prefix).run(&s, &d).unwrap();
            assert_eq!(result.dendrogram.num_leaves(), 40);
            assert!(result.dendrogram.root().is_some());
            assert!(result.dendrogram.is_monotone());
            assert!(result.timings.total() > Duration::ZERO);
        }
    }

    /// Pairwise agreement between a found clustering and ground-truth labels.
    fn pair_agreement(labels: &[usize], found: &[usize]) -> f64 {
        let n = labels.len();
        let mut agree = 0;
        let mut total = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if (labels[i] == labels[j]) == (found[i] == found[j]) {
                    agree += 1;
                }
                total += 1;
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn sequential_pipeline_recovers_block_structure_exactly() {
        let (s, d, labels) = blocks(36, 3, 5);
        let result = ParTdbht::with_prefix(1).run(&s, &d).unwrap();
        let found = result.clusters(3);
        let agreement = pair_agreement(&labels, &found);
        assert!(agreement > 0.99, "agreement {agreement}");
    }

    /// Generates a correlation matrix from synthetic time series with one
    /// archetype per class — the realistic input shape the algorithm is
    /// designed for (heterogeneous within-class correlations), unlike the
    /// constant-block matrices above.
    fn time_series_correlation(
        n: usize,
        classes: usize,
        seed: u64,
    ) -> (SymmetricMatrix, SymmetricMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = 64;
        let archetypes: Vec<Vec<f64>> = (0..classes)
            .map(|_| {
                let freq = rng.gen_range(1.0..4.0);
                let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                (0..len)
                    .map(|t| (freq * t as f64 / len as f64 * std::f64::consts::TAU + phase).sin())
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let series: Vec<Vec<f64>> = labels
            .iter()
            .map(|&c| {
                archetypes[c]
                    .iter()
                    .map(|&x| x + rng.gen_range(-0.4..0.4))
                    .collect()
            })
            .collect();
        let pearson = |a: &[f64], b: &[f64]| {
            let ma = a.iter().sum::<f64>() / a.len() as f64;
            let mb = b.iter().sum::<f64>() / b.len() as f64;
            let mut cov = 0.0;
            let mut va = 0.0;
            let mut vb = 0.0;
            for i in 0..a.len() {
                cov += (a[i] - ma) * (b[i] - mb);
                va += (a[i] - ma).powi(2);
                vb += (b[i] - mb).powi(2);
            }
            cov / (va.sqrt() * vb.sqrt())
        };
        let s = SymmetricMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else {
                pearson(&series[i], &series[j])
            }
        });
        let d = s.map(|p| (2.0 * (1.0 - p)).sqrt());
        (s, d, labels)
    }

    #[test]
    fn prefix_pipeline_recovers_class_structure_on_time_series() {
        // On realistic correlation structure (per-class archetype signals
        // plus noise) the batched construction retains clustering quality —
        // the Figure 6 claim. Everything here is deterministic (fixed seeds,
        // seeded generators), so the bars below are calibrated against
        // measured values with headroom, not statistical guesses.
        //
        // With the conflict-aware top-k selector and intra-round batch
        // placement, the measured mean pair agreement at this scale is
        // 0.8882 (prefix 5) and 0.8894 (prefix 10) against 0.9458
        // sequential — a gap under 0.06, where the pre-fix selector lost
        // 0.25–0.30. The bars enforce a gap of at most 0.1 so the Fig. 6
        // near-parity property cannot silently regress.
        let seeds = [0u64, 1, 2, 3, 4];
        // Per-prefix quality bars: (prefix, absolute floor, max drop below
        // the sequential mean). Chance pair agreement for 3 balanced
        // classes is 5/9 ≈ 0.56; the floors stay far above it.
        let bands = [(5usize, 0.85, 0.1), (10, 0.85, 0.1)];
        let mut seq_total = 0.0;
        let mut batched_total = [0.0f64; 2];
        for &seed in &seeds {
            let (s, d, labels) = time_series_correlation(120, 3, seed);
            let sequential = ParTdbht::with_prefix(1).run(&s, &d).unwrap();
            seq_total += pair_agreement(&labels, &sequential.clusters(3));
            for (slot, &(prefix, _, _)) in bands.iter().enumerate() {
                let result = ParTdbht::with_prefix(prefix).run(&s, &d).unwrap();
                batched_total[slot] += pair_agreement(&labels, &result.clusters(3));
                // Figure 7: with intra-round placement the edge-weight sum
                // stays within 2% of sequential on every single draw
                // (measured ≥ 0.998 on this suite), not just on average.
                let ratio = result.tmfg.edge_weight_sum() / sequential.tmfg.edge_weight_sum();
                assert!(
                    ratio > 0.98,
                    "seed {seed} prefix {prefix} edge-sum ratio {ratio}"
                );
                // The selector's defining invariant: every round fills its
                // target, so conflicts never shrink a batch.
                assert!(
                    (result.tmfg.mean_fill_rate() - 1.0).abs() < 1e-12,
                    "seed {seed} prefix {prefix} under-filled rounds"
                );
            }
        }
        let n = seeds.len() as f64;
        let seq_agreement = seq_total / n;
        assert!(
            seq_agreement > 0.9,
            "sequential mean agreement {seq_agreement}"
        );
        for (slot, &(prefix, floor, band)) in bands.iter().enumerate() {
            let agreement = batched_total[slot] / n;
            assert!(
                agreement > floor && agreement > seq_agreement - band,
                "prefix {prefix} mean agreement {agreement} vs sequential {seq_agreement}"
            );
        }
    }

    #[test]
    fn f32_prescreened_pipeline_recovers_block_structure() {
        // The large-n configuration — f32 storage, top-K prescreen, and
        // the on-the-fly dissimilarity view — must recover the same block
        // structure as the dense f64 path.
        let (s, d, labels) = blocks(40, 4, 1);
        let dense = ParTdbht::with_prefix(10).run(&s, &d).unwrap();
        let f32_data: Vec<f32> = s.as_slice().iter().map(|&x| x as f32).collect();
        let s32 = SymmetricMatrixF32::from_symmetrized(40, f32_data);
        let runner = ParTdbht::new(ParTdbhtConfig::with_prefix(10).with_prescreen(12));
        let r = runner.run_f32(&s32).unwrap();
        assert_eq!(r.dendrogram.num_leaves(), 40);
        assert!(r.dendrogram.is_monotone());
        let agreement = pair_agreement(&labels, &r.clusters(4));
        let dense_agreement = pair_agreement(&labels, &dense.clusters(4));
        assert!(
            agreement >= dense_agreement - 1e-9,
            "f32 agreement {agreement} vs dense {dense_agreement}"
        );
    }

    #[test]
    fn prescreened_pipeline_matches_dense_pipeline() {
        // On the same f64 source, the prescreen knob must not change the
        // output at all — construction is certified-exact.
        let (s, d, _) = blocks(36, 3, 5);
        let dense = ParTdbht::with_prefix(10).run(&s, &d).unwrap();
        let runner = ParTdbht::new(ParTdbhtConfig::with_prefix(10).with_prescreen(8));
        let p = runner.run(&s, &d).unwrap();
        assert_eq!(dense.tmfg.insertions, p.tmfg.insertions);
        assert_eq!(
            dense.dendrogram.cut_to_clusters(3),
            p.dendrogram.cut_to_clusters(3)
        );
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let (s, _, _) = blocks(20, 2, 3);
        let (_, d_small, _) = blocks(10, 2, 3);
        assert!(matches!(
            ParTdbht::default().run(&s, &d_small),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn prefix_variants_produce_similar_structures() {
        let (s, d, _) = blocks(50, 5, 9);
        let r1 = ParTdbht::with_prefix(1).run(&s, &d).unwrap();
        let r10 = ParTdbht::with_prefix(10).run(&s, &d).unwrap();
        let w1 = r1.tmfg.edge_weight_sum();
        let w10 = r10.tmfg.edge_weight_sum();
        // Figure 7 reports ratios of 92–100% on real correlation matrices.
        // Intra-round placement keeps even this adversarial hard-block
        // matrix at ≥ 99% of the sequential edge-weight sum (measured
        // 0.9977; the exact ratios are reported by the fig7 bench).
        assert!(w10 / w1 > 0.99, "edge-sum ratio {}", w10 / w1);
        assert!(w10 / w1 <= 1.0 + 1e-9, "edge-sum ratio {}", w10 / w1);
    }
}
