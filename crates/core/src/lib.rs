//! Parallel filtered graphs (TMFG / PMFG) and DBHT hierarchical clustering.
//!
//! This crate is the primary contribution of *Parallel Filtered Graphs for
//! Hierarchical Clustering* (Yu & Shun, ICDE 2023):
//!
//! * [`mod@tmfg`] — the parallel Triangulated Maximally Filtered Graph
//!   construction (Algorithm 1), including the prefix-batched variant that
//!   inserts multiple vertices per round, and the sequential TMFG as the
//!   `prefix = 1` special case;
//! * [`mod@pmfg`] — the Planar Maximally Filtered Graph as a round-based
//!   parallel construction (speculative batch tests with final monotone
//!   rejections), plus the sequential baseline it is differentially
//!   tested against;
//! * [`bubble_tree`] — the bubble tree built on the fly during TMFG
//!   construction (Algorithm 2);
//! * [`dbht`] — the parallel Directed Bubble Hierarchy Tree optimized for
//!   TMFG inputs: edge direction (Algorithm 3), vertex assignment and the
//!   three-level complete-linkage hierarchy (Algorithm 4);
//! * [`dendrogram`] — the dendrogram output type with height assignment and
//!   cluster-extraction utilities;
//! * [`pipeline`] — a one-call `similarity matrix → clusters` pipeline with
//!   per-stage timing (used by the runtime-breakdown experiments).
//!
//! # Quick example
//!
//! ```
//! use pfg_core::pipeline::{ParTdbht, ParTdbhtConfig};
//! use pfg_graph::SymmetricMatrix;
//!
//! // A tiny correlation matrix with two obvious groups {0,1,2} and {3,4,5}.
//! let n = 6;
//! let s = SymmetricMatrix::from_fn(n, |i, j| {
//!     if i == j { 1.0 } else if (i < 3) == (j < 3) { 0.8 } else { 0.1 }
//! });
//! let d = s.map(|p| (2.0 * (1.0 - p)).sqrt());
//! let result = ParTdbht::new(ParTdbhtConfig::default()).run(&s, &d).unwrap();
//! let labels = result.dendrogram.cut_to_clusters(2);
//! assert_eq!(labels[0], labels[1]);
//! assert_eq!(labels[3], labels[4]);
//! assert_ne!(labels[0], labels[3]);
//! ```

pub mod bubble_tree;
pub mod dbht;
pub mod dendrogram;
pub mod error;
pub mod face;
pub mod pipeline;
pub mod pmfg;
pub mod schedule;
pub mod tmfg;

pub use bubble_tree::{Bubble, BubbleTree};
pub use dbht::{
    dbht_for_planar_graph, dbht_for_tmfg, Dbht, DbhtDistanceStats, DbhtDistances, DbhtRunStats,
    HacBackend, HacStats, VertexAssignment,
};
pub use dendrogram::Dendrogram;
pub use error::CoreError;
pub use face::Triangle;
pub use pipeline::{ParTdbht, ParTdbhtConfig, ParTdbhtResult, StageTimings};
pub use pmfg::{pmfg, pmfg_prescreened, pmfg_sequential, pmfg_with_config, Pmfg, PmfgConfig};
pub use schedule::BatchSchedule;
pub use tmfg::{tmfg, tmfg_prescreened, Tmfg, TmfgConfig};
pub use tmfg::{BatchFreshness, RoundStats};
