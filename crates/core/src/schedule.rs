//! The one batch-growth schedule shape shared by every round-based
//! construction in this crate.
//!
//! PMFG rounds, the TMFG gain-cache depth, and the lazy candidate-sort
//! chunk all follow the same discipline: start small, double on demand,
//! stop at a cap — but each used to carry its own pair of magic numbers
//! inline. [`BatchSchedule`] names the pair, documents where each tuned
//! value came from, and centralises the validation (`1 <= initial <=
//! cap`) that [`crate::PmfgConfig`] exposes to callers.
//!
//! A schedule is a *shape*, not a policy: callers decide **when** to grow
//! (PMFG doubles only on rejection-heavy rounds, the candidate stream on
//! every refill) — the schedule only answers "from where", "to what", and
//! "never past what".

use crate::error::CoreError;

/// A doubling batch schedule: start at `initial`, grow by doubling, never
/// exceed `cap`.
///
/// All three uses are deterministic functions of the input (never of the
/// thread count), which is what keeps every construction byte-identical
/// across `RAYON_NUM_THREADS`; see the determinism notes on
/// [`crate::PmfgConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSchedule {
    /// First batch size.
    pub initial: usize,
    /// Upper bound for growth.
    pub cap: usize,
}

impl BatchSchedule {
    /// PMFG speculative round sizes. Measured on the construction bench
    /// (ECG5000 correlation matrices, n ∈ {100, 250}, 1-core host; see
    /// the `pmfg_counters` example for the sweep): small early rounds
    /// waste fewer stale tests while acceptances dominate, the 128 cap
    /// keeps the speculative tail past maximality short — a 4096 cap
    /// spends 2333 commit-time re-tests at n = 250 where 128 spends 238
    /// (pre-conflict-commit counts; the conflict-graph commit removes
    /// most of the remainder).
    pub const PMFG_ROUNDS: BatchSchedule = BatchSchedule {
        initial: 32,
        cap: 128,
    };

    /// TMFG per-face candidate cache depth, clamped from the insertion
    /// prefix: at least 4 so single-insertion rounds rarely re-scan, at
    /// most 32 because a face's cache only shrinks by entries *stolen* by
    /// other faces of the same round (≤ prefix − 1 of them) and deeper
    /// lists just cost memory and insert time.
    pub const TMFG_CACHE_DEPTH: BatchSchedule = BatchSchedule {
        initial: 4,
        cap: 32,
    };

    /// Lazy candidate-sort chunk of the PMFG streams: the first chunk is
    /// a few multiples of the `3n − 6` acceptance target (floored at
    /// 1024 so tiny inputs sort once), doubling on every refill so a
    /// construction that consumes deep into the pair list pays
    /// `O(log)` refills, uncapped because the pair list itself is the
    /// only bound.
    pub const CANDIDATE_CHUNK: BatchSchedule = BatchSchedule {
        initial: 1024,
        cap: usize::MAX,
    };

    /// Validates the shape: a schedule must be able to produce a first
    /// batch (`initial >= 1`) and must not start past its cap.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidBatch`] otherwise.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.initial == 0 || self.initial > self.cap {
            return Err(CoreError::InvalidBatch);
        }
        Ok(())
    }

    /// The next batch size after `current`: doubled, saturating, capped.
    pub fn grow(&self, current: usize) -> usize {
        current.saturating_mul(2).min(self.cap)
    }

    /// Clamps a caller-derived starting size into the schedule's range —
    /// how the candidate stream seeds its first chunk from the acceptance
    /// target and the gain table its depth from the insertion prefix.
    pub fn clamp(&self, value: usize) -> usize {
        value.clamp(self.initial, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_schedules_are_valid() {
        for s in [
            BatchSchedule::PMFG_ROUNDS,
            BatchSchedule::TMFG_CACHE_DEPTH,
            BatchSchedule::CANDIDATE_CHUNK,
        ] {
            s.validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_degenerate_shapes() {
        for s in [
            BatchSchedule { initial: 0, cap: 8 },
            BatchSchedule { initial: 9, cap: 8 },
        ] {
            assert!(matches!(s.validate(), Err(CoreError::InvalidBatch)));
        }
    }

    #[test]
    fn grow_doubles_to_the_cap() {
        let s = BatchSchedule {
            initial: 4,
            cap: 100,
        };
        assert_eq!(s.grow(4), 8);
        assert_eq!(s.grow(64), 100);
        assert_eq!(s.grow(100), 100);
        // Uncapped schedules saturate instead of overflowing.
        assert_eq!(
            BatchSchedule::CANDIDATE_CHUNK.grow(usize::MAX / 2 + 1),
            usize::MAX
        );
    }

    #[test]
    fn clamp_pins_into_range() {
        let s = BatchSchedule {
            initial: 4,
            cap: 32,
        };
        assert_eq!(s.clamp(1), 4);
        assert_eq!(s.clamp(10), 10);
        assert_eq!(s.clamp(1000), 32);
    }
}
