//! Bubble decomposition of an arbitrary maximal planar graph.
//!
//! This is the original (quadratic-work) bubble-tree construction of Song
//! et al.: find all 3-cliques, determine which are separating, and split
//! the graph along its separating triangles into *bubbles* — maximal planar
//! pieces whose 3-cliques are all non-separating. The PMFG+DBHT baseline
//! uses this path; it also serves as a reference implementation that the
//! on-the-fly TMFG bubble tree (Algorithm 2) is validated against.

use pfg_graph::{bfs_reachable_within, WeightedGraph};

use crate::face::Triangle;

/// Bubbles (vertex sets) plus undirected bubble-tree edges labelled with
/// their separating triangles.
#[derive(Debug, Clone)]
pub struct PlanarBubbleDecomposition {
    /// Vertex sets of the bubbles, each sorted.
    pub bubbles: Vec<Vec<usize>>,
    /// Undirected edges `(a, b, separating triangle)` between bubbles.
    pub edges: Vec<(usize, usize, Triangle)>,
}

impl PlanarBubbleDecomposition {
    /// Returns the bubble ids whose vertex set contains the whole triangle.
    pub fn bubbles_containing(&self, t: Triangle) -> Vec<usize> {
        self.bubbles
            .iter()
            .enumerate()
            .filter(|(_, b)| t.corners().iter().all(|c| b.contains(c)))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Decomposes a maximal planar graph into its bubbles.
///
/// The graph must be connected and maximal planar (`3n − 6` edges); TMFGs
/// and PMFGs both satisfy this by construction.
pub fn decompose(graph: &WeightedGraph) -> PlanarBubbleDecomposition {
    let n = graph.num_vertices();
    debug_assert!(graph.has_maximal_planar_edge_count() || n < 4);

    // All 3-cliques of the graph; the separating ones define the splits.
    let triangles: Vec<Triangle> = graph
        .triangles()
        .into_iter()
        .map(|(a, b, c)| Triangle::new(a, b, c))
        .collect();
    let separating: Vec<Triangle> = triangles
        .iter()
        .copied()
        .filter(|&t| is_separating(graph, t, None))
        .collect();

    let mut bubbles: Vec<Vec<usize>> = Vec::new();
    let mut edges: Vec<(usize, usize, Triangle)> = Vec::new();

    // Recursive splitting along separating triangles, iteratively with an
    // explicit work list of vertex-set pieces.
    let mut pieces: Vec<Vec<usize>> = vec![(0..n).collect()];

    while let Some(piece) = pieces.pop() {
        let in_piece = membership_mask(n, &piece);
        // Find a separating triangle inside this piece that still separates
        // the induced subgraph.
        let split = separating
            .iter()
            .copied()
            .filter(|t| t.corners().iter().all(|&c| in_piece[c]))
            .find_map(|t| {
                let components = components_without_triangle(graph, &piece, t);
                (components.len() >= 2).then_some((t, components))
            });
        match split {
            None => {
                let mut bubble = piece;
                bubble.sort_unstable();
                bubbles.push(bubble);
            }
            Some((t, components)) => {
                for mut component in components {
                    component.extend(t.corners());
                    component.sort_unstable();
                    pieces.push(component);
                }
            }
        }
    }

    // Derive the bubble-tree edges: for every separating triangle, connect
    // the bubbles that contain it. A separating triangle of a maximal
    // planar graph is shared by exactly two bubbles; if the decomposition
    // ever yields more, connect them in a star so that the structure stays
    // a tree.
    let decomposition = PlanarBubbleDecomposition {
        bubbles,
        edges: Vec::new(),
    };
    for &t in &separating {
        let sharing = decomposition.bubbles_containing(t);
        for &other in sharing.iter().skip(1) {
            edges.push((sharing[0], other, t));
        }
    }
    PlanarBubbleDecomposition {
        bubbles: decomposition.bubbles,
        edges,
    }
}

/// Returns `true` if removing the corners of `t` disconnects the subgraph
/// induced by `within` (or the whole graph when `within` is `None`).
fn is_separating(graph: &WeightedGraph, t: Triangle, within: Option<&[usize]>) -> bool {
    let n = graph.num_vertices();
    let piece: Vec<usize> = match within {
        Some(w) => w.to_vec(),
        None => (0..n).collect(),
    };
    components_without_triangle(graph, &piece, t).len() >= 2
}

/// Connected components (as vertex lists) of the subgraph induced by
/// `piece` minus the corners of `t`.
fn components_without_triangle(
    graph: &WeightedGraph,
    piece: &[usize],
    t: Triangle,
) -> Vec<Vec<usize>> {
    let n = graph.num_vertices();
    let mut allowed = vec![false; n];
    for &v in piece {
        allowed[v] = true;
    }
    for c in t.corners() {
        allowed[c] = false;
    }
    let mut assigned = vec![false; n];
    let mut components = Vec::new();
    for &v in piece {
        if !allowed[v] || assigned[v] {
            continue;
        }
        let reached = bfs_reachable_within(graph, v, &allowed);
        let component: Vec<usize> = (0..n).filter(|&u| reached[u] && allowed[u]).collect();
        for &u in &component {
            assigned[u] = true;
        }
        components.push(component);
    }
    components
}

/// Helper: boolean membership mask for a vertex list.
fn membership_mask(n: usize, vertices: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &v in vertices {
        mask[v] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tmfg::{tmfg, TmfgConfig};
    use pfg_graph::SymmetricMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_similarity(n: usize, seed: u64) -> SymmetricMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        SymmetricMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else {
                rng.gen_range(0.01..1.0)
            }
        })
    }

    #[test]
    fn k4_is_a_single_bubble() {
        let mut g = WeightedGraph::new(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v, 1.0);
            }
        }
        let d = decompose(&g);
        assert_eq!(d.bubbles, vec![vec![0, 1, 2, 3]]);
        assert!(d.edges.is_empty());
    }

    #[test]
    fn k5_minus_edge_has_two_bubbles() {
        // Vertices 3 and 4 both adjacent to the triangle {0,1,2} but not to
        // each other: bubbles {0,1,2,3} and {0,1,2,4} sharing {0,1,2}.
        let mut g = WeightedGraph::new(5);
        for u in 0..3 {
            for v in (u + 1)..3 {
                g.add_edge(u, v, 1.0);
            }
        }
        for apex in [3, 4] {
            for c in 0..3 {
                g.add_edge(apex, c, 1.0);
            }
        }
        let d = decompose(&g);
        let mut bubbles = d.bubbles.clone();
        bubbles.sort();
        assert_eq!(bubbles, vec![vec![0, 1, 2, 3], vec![0, 1, 2, 4]]);
        assert_eq!(d.edges.len(), 1);
        assert_eq!(d.edges[0].2, Triangle::new(0, 1, 2));
    }

    #[test]
    fn octahedron_has_no_separating_triangle() {
        // The octahedron (K2,2,2) is 4-connected and maximal planar: one bubble.
        let mut g = WeightedGraph::new(6);
        // Vertex pairs (0,5), (1,4), (2,3) are the non-adjacent poles.
        for u in 0..6 {
            for v in (u + 1)..6 {
                if u + v != 5 {
                    g.add_edge(u, v, 1.0);
                }
            }
        }
        assert_eq!(g.num_edges(), 12);
        assert!(pfg_graph::is_planar(&g));
        let d = decompose(&g);
        assert_eq!(d.bubbles.len(), 1);
        assert_eq!(d.bubbles[0].len(), 6);
        assert!(d.edges.is_empty());
    }

    #[test]
    fn tmfg_decomposition_matches_native_bubble_tree() {
        for seed in 0..4 {
            let n = 18;
            let s = random_similarity(n, seed);
            let t = tmfg(&s, TmfgConfig::with_prefix(4)).unwrap();
            let d = decompose(&t.graph);
            // Same bubbles as vertex sets.
            let mut native: Vec<Vec<usize>> = (0..t.bubble_tree.len())
                .map(|b| t.bubble_tree.bubble(b).vertices.to_vec())
                .collect();
            native.sort();
            let mut generic = d.bubbles.clone();
            generic.sort();
            assert_eq!(native, generic, "seed {seed}");
            // Same separating triangles on the tree edges.
            let mut native_triangles: Vec<Triangle> = (0..t.bubble_tree.len())
                .filter_map(|b| t.bubble_tree.bubble(b).parent_triangle)
                .collect();
            native_triangles.sort();
            let mut generic_triangles: Vec<Triangle> = d.edges.iter().map(|e| e.2).collect();
            generic_triangles.sort();
            assert_eq!(native_triangles, generic_triangles, "seed {seed}");
            // The edges form a tree over the bubbles.
            assert_eq!(d.edges.len(), d.bubbles.len() - 1);
        }
    }

    #[test]
    fn pmfg_decomposition_is_a_tree() {
        let s = random_similarity(15, 77);
        let p = crate::pmfg::pmfg(&s).unwrap();
        let d = decompose(&p.graph);
        assert!(!d.bubbles.is_empty());
        assert_eq!(d.edges.len(), d.bubbles.len() - 1);
        // Every vertex is covered by at least one bubble.
        let mut covered = [false; 15];
        for b in &d.bubbles {
            for &v in b {
                covered[v] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn separating_test_helper() {
        // Path of two K4's glued on a triangle.
        let mut g = WeightedGraph::new(5);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v, 1.0);
            }
        }
        g.add_edge(4, 1, 1.0);
        g.add_edge(4, 2, 1.0);
        g.add_edge(4, 3, 1.0);
        assert!(is_separating(&g, Triangle::new(1, 2, 3), None));
        assert!(!is_separating(&g, Triangle::new(0, 1, 2), None));
    }
}
