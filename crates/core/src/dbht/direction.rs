//! Directing the bubble-tree edges (§V-B, Algorithm 3).
//!
//! Every bubble-tree edge corresponds to a separating triangle; it is
//! directed towards the side (interior or exterior) to which the triangle
//! is more strongly connected by edge weight.
//!
//! * [`direct_tmfg_bubble_tree`] is the paper's Θ(n)-work algorithm: thanks
//!   to the invariant that all descendants of a bubble-tree edge lie inside
//!   its separating triangle, the interior weights (`IN_VAL`) can be
//!   accumulated bottom-up with one constant-work step per bubble, and the
//!   exterior weights (`OUT_VAL`) follow from the corners' weighted degrees.
//! * [`direct_generic`] is the original quadratic method (one BFS per
//!   separating triangle), used for arbitrary maximal planar graphs (PMFG)
//!   and as a reference implementation to validate the fast path.

use pfg_graph::{bfs_reachable_within, WeightedGraph};
use rayon::prelude::*;

use crate::bubble_tree::BubbleTree;
use crate::dbht::bubble_graph::{DirectedBubbleEdge, DirectedBubbleGraph};
use crate::dbht::planar_bubbles::PlanarBubbleDecomposition;
use crate::face::Triangle;

/// Directs the edges of a TMFG-built bubble tree (Algorithm 3) and returns
/// the resulting directed bubble graph.
///
/// Work is Θ(n): each bubble contributes a constant number of operations.
/// Bubbles are processed level by level from the deepest to the root, the
/// bubbles of each level in parallel. Instead of the paper's `WRITE_ADD`s
/// into the parent (whose floating-point accumulation order depends on
/// thread scheduling), every bubble *pulls* its children's stored `r`
/// vectors in child order — a pure computation per bubble, so the
/// direction of every edge is bitwise reproducible at any thread count.
pub fn direct_tmfg_bubble_tree(tree: &BubbleTree, graph: &WeightedGraph) -> DirectedBubbleGraph {
    let nb = tree.len();
    let weight = |u: usize, v: usize| graph.edge_weight(u, v).unwrap_or(0.0);

    // Depth of every bubble (root = 0) and a bottom-up level ordering.
    let mut depth = vec![usize::MAX; nb];
    let mut order: Vec<usize> = Vec::with_capacity(nb);
    let mut queue = std::collections::VecDeque::new();
    depth[tree.root()] = 0;
    queue.push_back(tree.root());
    while let Some(b) = queue.pop_front() {
        order.push(b);
        for &c in &tree.bubble(b).children {
            depth[c] = depth[b] + 1;
            queue.push_back(c);
        }
    }
    let max_depth = order.iter().map(|&b| depth[b]).max().unwrap_or(0);
    let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_depth + 1];
    for &b in &order {
        levels[depth[b]].push(b);
    }

    // r[b][i] is the interior weight of b's subtree seen at corner i of
    // b's separating triangle (Algorithm 3, lines 5–11). A bubble reads
    // its children's r vectors — written during the previous (deeper)
    // level — in child order, so every sum has a fixed operand order.
    let mut r: Vec<[f64; 3]> = vec![[0.0; 3]; nb];

    // directed_to_child[b] = true iff the edge (parent(b), b) is directed
    // from the parent towards b (IN_VAL > OUT_VAL).
    let mut directed_to_child = vec![false; nb];

    for level in levels.iter().rev() {
        let computed: Vec<(usize, [f64; 3], bool)> = {
            let r = &r;
            level
                .par_iter()
                .filter_map(|&b| {
                    let bubble = tree.bubble(b);
                    // Root: nothing to direct (Algorithm 3, lines 19–22).
                    let triangle = bubble.parent_triangle?;
                    let corners = triangle.corners();
                    let apex = triangle.apex_in(bubble.vertices);
                    // Lines 5–6: initialise r with the edges from the corners
                    // to the apex, then pull the children's contributions
                    // (line 18, seen from the parent's side): a child corner
                    // that is also a corner of b's separating triangle
                    // carries its r entry upwards.
                    let mut rb = [0.0_f64; 3];
                    for (i, &corner) in corners.iter().enumerate() {
                        rb[i] = weight(corner, apex);
                    }
                    for &c in &bubble.children {
                        let child_triangle =
                            tree.bubble(c).parent_triangle.expect("non-root child");
                        let child_corners = child_triangle.corners();
                        for (i, &child_corner) in child_corners.iter().enumerate() {
                            if let Some(j) = corners.iter().position(|&x| x == child_corner) {
                                rb[j] += r[c][i];
                            }
                        }
                    }
                    let in_val: f64 = rb.iter().sum();
                    // Line 13: OUT_VAL from the corners' weighted degrees.
                    let triangle_weight = weight(corners[0], corners[1])
                        + weight(corners[0], corners[2])
                        + weight(corners[1], corners[2]);
                    let degree_sum: f64 = corners.iter().map(|&c| graph.weighted_degree(c)).sum();
                    let out_val = degree_sum - in_val - 2.0 * triangle_weight;
                    Some((b, rb, in_val > out_val))
                })
                .collect()
        };
        for (b, rb, to_child) in computed {
            r[b] = rb;
            directed_to_child[b] = to_child;
        }
    }

    // Assemble the directed bubble graph with the same bubble ids.
    let bubbles: Vec<Vec<usize>> = (0..nb).map(|b| tree.bubble(b).vertices.to_vec()).collect();
    let mut edges = Vec::with_capacity(nb.saturating_sub(1));
    for (b, &to_child) in directed_to_child.iter().enumerate() {
        let bubble = tree.bubble(b);
        if let (Some(parent), Some(triangle)) = (bubble.parent, bubble.parent_triangle) {
            let (from, to) = if to_child { (parent, b) } else { (b, parent) };
            edges.push(DirectedBubbleEdge { from, to, triangle });
        }
    }
    DirectedBubbleGraph::new(bubbles, edges, tree.num_vertices())
}

/// Directs the edges of an arbitrary bubble decomposition using the original
/// quadratic method: for every separating triangle, a BFS over the graph
/// minus the triangle determines its two sides, and the side with the larger
/// total connection weight receives the edge.
pub fn direct_generic(
    decomposition: &PlanarBubbleDecomposition,
    graph: &WeightedGraph,
) -> DirectedBubbleGraph {
    let n = graph.num_vertices();
    let edges: Vec<DirectedBubbleEdge> = decomposition
        .edges
        .par_iter()
        .map(|&(a, b, triangle)| {
            let side_a = triangle_side_weight(graph, triangle, &decomposition.bubbles[a], n);
            let side_b = triangle_side_weight(graph, triangle, &decomposition.bubbles[b], n);
            // Directed towards the side with the stronger connection. On a
            // tie the edge points from `a` to `b`, matching the fast path's
            // `IN_VAL > OUT_VAL` strictness when `a` is the interior bubble.
            let (from, to) = if side_a > side_b { (b, a) } else { (a, b) };
            DirectedBubbleEdge { from, to, triangle }
        })
        .collect();
    DirectedBubbleGraph::new(decomposition.bubbles.clone(), edges, n)
}

/// Total weight of edges from the corners of `triangle` to the side of the
/// graph (with the triangle removed) that contains `bubble`'s non-corner
/// vertices.
fn triangle_side_weight(
    graph: &WeightedGraph,
    triangle: Triangle,
    bubble: &[usize],
    n: usize,
) -> f64 {
    let corners = triangle.corners();
    let mut allowed = vec![true; n];
    for c in corners {
        allowed[c] = false;
    }
    // Seed vertices: the bubble's vertices that are not triangle corners.
    let seeds: Vec<usize> = bubble
        .iter()
        .copied()
        .filter(|v| !triangle.contains(*v))
        .collect();
    let mut side = vec![false; n];
    for &seed in &seeds {
        if !side[seed] {
            let reached = bfs_reachable_within(graph, seed, &allowed);
            for (v, r) in reached.into_iter().enumerate() {
                side[v] = side[v] || r;
            }
        }
    }
    corners
        .iter()
        .map(|&c| {
            graph
                .neighbors(c)
                .iter()
                .filter(|&&(u, _)| side[u])
                .map(|&(_, w)| w)
                .sum::<f64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbht::planar_bubbles::decompose;
    use crate::tmfg::{tmfg, TmfgConfig};
    use pfg_graph::SymmetricMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A core–periphery similarity matrix in the spirit of Figure 2: four
    /// strongly inter-connected vertices {0,1,2,3} and three weakly attached
    /// peripheral vertices {4,5,6}. The strongly connected core must end up
    /// as the (unique) converging bubble, exactly as in the paper's example,
    /// because every separating triangle is far more strongly connected to
    /// the core side than to the peripheral side.
    fn core_periphery_matrix() -> SymmetricMatrix {
        SymmetricMatrix::from_fn(7, |i, j| {
            if i == j {
                1.0
            } else if i < 4 && j < 4 {
                0.9
            } else {
                0.1
            }
        })
    }

    fn random_similarity(n: usize, seed: u64) -> SymmetricMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        SymmetricMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else {
                rng.gen_range(0.01..1.0)
            }
        })
    }

    #[test]
    fn strongly_connected_core_becomes_converging_bubble() {
        let s = core_periphery_matrix();
        let t = tmfg(&s, TmfgConfig::with_prefix(1)).unwrap();
        let directed = direct_tmfg_bubble_tree(&t.bubble_tree, &t.graph);
        directed.check_invariants().unwrap();
        let converging = directed.converging_bubbles();
        assert_eq!(converging.len(), 1);
        // The converging bubble is the strongly connected core {0,1,2,3}.
        assert_eq!(directed.bubble(converging[0]), &[0, 1, 2, 3]);
    }

    #[test]
    fn fast_direction_matches_quadratic_reference_on_random_tmfgs() {
        for seed in 0..5 {
            let n = 24;
            let s = random_similarity(n, seed);
            let t = tmfg(&s, TmfgConfig::with_prefix(3)).unwrap();
            let fast = direct_tmfg_bubble_tree(&t.bubble_tree, &t.graph);
            // Build a decomposition view with the same bubble ids so edge
            // directions can be compared one-to-one.
            let decomposition = PlanarBubbleDecomposition {
                bubbles: (0..t.bubble_tree.len())
                    .map(|b| t.bubble_tree.bubble(b).vertices.to_vec())
                    .collect(),
                edges: (0..t.bubble_tree.len())
                    .filter_map(|b| {
                        let bubble = t.bubble_tree.bubble(b);
                        bubble
                            .parent
                            .map(|p| (b, p, bubble.parent_triangle.expect("non-root")))
                    })
                    .collect(),
            };
            let reference = direct_generic(&decomposition, &t.graph);
            let canon = |g: &DirectedBubbleGraph| {
                let mut e: Vec<(usize, usize)> = g.edges().iter().map(|e| (e.from, e.to)).collect();
                e.sort_unstable();
                e
            };
            assert_eq!(canon(&fast), canon(&reference), "seed {seed}");
        }
    }

    #[test]
    fn direction_count_is_one_per_non_root_bubble() {
        let s = random_similarity(40, 9);
        let t = tmfg(&s, TmfgConfig::with_prefix(10)).unwrap();
        let directed = direct_tmfg_bubble_tree(&t.bubble_tree, &t.graph);
        assert_eq!(directed.edges().len(), t.bubble_tree.len() - 1);
        assert!(!directed.converging_bubbles().is_empty());
    }

    #[test]
    fn pmfg_decomposition_directions_are_consistent() {
        let s = random_similarity(16, 2);
        let p = crate::pmfg::pmfg(&s).unwrap();
        let decomposition = decompose(&p.graph);
        let directed = direct_generic(&decomposition, &p.graph);
        directed.check_invariants().unwrap();
        assert_eq!(directed.edges().len(), decomposition.bubbles.len() - 1);
    }
}
