//! The directed bubble graph: bubbles (vertex sets) connected by directed
//! edges labelled with their separating triangles.
//!
//! This is the structure Algorithm 4 operates on. For TMFG inputs it is
//! produced by the fast direction computation of Algorithm 3; for arbitrary
//! maximal planar graphs it is produced by the quadratic reference path.

use rayon::prelude::*;

use crate::face::Triangle;

/// A directed edge of the bubble graph: `from → to`, labelled by the
/// separating triangle the two bubbles share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectedBubbleEdge {
    /// Source bubble id.
    pub from: usize,
    /// Destination bubble id.
    pub to: usize,
    /// The separating triangle shared by the two bubbles.
    pub triangle: Triangle,
}

/// Bubbles plus directed edges between them (a directed tree).
#[derive(Debug, Clone)]
pub struct DirectedBubbleGraph {
    bubbles: Vec<Vec<usize>>,
    edges: Vec<DirectedBubbleEdge>,
    out_adj: Vec<Vec<usize>>,
    in_adj: Vec<Vec<usize>>,
    num_vertices: usize,
}

impl DirectedBubbleGraph {
    /// Builds the graph from bubbles (vertex lists) and directed edges.
    ///
    /// # Panics
    /// Panics if an edge references an unknown bubble.
    pub fn new(
        mut bubbles: Vec<Vec<usize>>,
        edges: Vec<DirectedBubbleEdge>,
        num_vertices: usize,
    ) -> Self {
        for b in &mut bubbles {
            b.sort_unstable();
        }
        let nb = bubbles.len();
        let mut out_adj = vec![Vec::new(); nb];
        let mut in_adj = vec![Vec::new(); nb];
        for e in &edges {
            assert!(e.from < nb && e.to < nb, "edge references unknown bubble");
            out_adj[e.from].push(e.to);
            in_adj[e.to].push(e.from);
        }
        Self {
            bubbles,
            edges,
            out_adj,
            in_adj,
            num_vertices,
        }
    }

    /// Number of bubbles.
    pub fn num_bubbles(&self) -> usize {
        self.bubbles.len()
    }

    /// Number of vertices of the underlying filtered graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The vertices of bubble `b`.
    pub fn bubble(&self, b: usize) -> &[usize] {
        &self.bubbles[b]
    }

    /// All bubbles.
    pub fn bubbles(&self) -> &[Vec<usize>] {
        &self.bubbles
    }

    /// The directed edges.
    pub fn edges(&self) -> &[DirectedBubbleEdge] {
        &self.edges
    }

    /// Out-degree of bubble `b`.
    pub fn out_degree(&self, b: usize) -> usize {
        self.out_adj[b].len()
    }

    /// In-degree of bubble `b` (number of bubble-tree edges directed into
    /// it).
    pub fn in_degree(&self, b: usize) -> usize {
        self.in_adj[b].len()
    }

    /// The converging bubbles: bubbles with no outgoing edges (Algorithm 4,
    /// line 4). These act as the centres of the first-level clusters.
    pub fn converging_bubbles(&self) -> Vec<usize> {
        (0..self.num_bubbles())
            .filter(|&b| self.out_adj[b].is_empty())
            .collect()
    }

    /// For every vertex, the bubbles that contain it.
    pub fn bubbles_of_vertices(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_vertices];
        for (id, b) in self.bubbles.iter().enumerate() {
            for &v in b {
                out[v].push(id);
            }
        }
        out
    }

    /// For every bubble, the set of converging bubbles reachable from it by
    /// following directed edges (Algorithm 4, lines 5–6). Computed with one
    /// BFS per bubble, in parallel. The result is sorted per bubble.
    pub fn reachable_converging_bubbles(&self) -> Vec<Vec<usize>> {
        let nb = self.num_bubbles();
        (0..nb)
            .into_par_iter()
            .map(|start| {
                let mut seen = vec![false; nb];
                let mut queue = std::collections::VecDeque::new();
                let mut reachable = Vec::new();
                seen[start] = true;
                queue.push_back(start);
                while let Some(b) = queue.pop_front() {
                    if self.out_adj[b].is_empty() {
                        reachable.push(b);
                    }
                    for &next in &self.out_adj[b] {
                        if !seen[next] {
                            seen[next] = true;
                            queue.push_back(next);
                        }
                    }
                }
                reachable.sort_unstable();
                reachable
            })
            .collect()
    }

    /// Checks structural sanity: every vertex appears in at least one
    /// bubble, the edge endpoints share their separating triangle, and at
    /// least one converging bubble exists.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut covered = vec![false; self.num_vertices];
        for b in &self.bubbles {
            for &v in b {
                if v >= self.num_vertices {
                    return Err(format!("bubble vertex {v} out of range"));
                }
                covered[v] = true;
            }
        }
        if let Some(v) = covered.iter().position(|&c| !c) {
            return Err(format!("vertex {v} is not in any bubble"));
        }
        for e in &self.edges {
            for c in e.triangle.corners() {
                if !self.bubbles[e.from].contains(&c) || !self.bubbles[e.to].contains(&c) {
                    return Err(format!(
                        "separating triangle {} not shared by bubbles {} and {}",
                        e.triangle, e.from, e.to
                    ));
                }
            }
        }
        if self.num_bubbles() > 0 && self.converging_bubbles().is_empty() {
            return Err("directed bubble graph has no converging bubble".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The directed bubble tree of Figure 2(c): b2 = {0,1,2,3} is the only
    /// converging bubble; b1, b3, b4 all point into it.
    fn figure2_graph() -> DirectedBubbleGraph {
        let bubbles = vec![
            vec![0, 1, 2, 4], // b1
            vec![0, 1, 2, 3], // b2
            vec![0, 1, 3, 6], // b3
            vec![1, 2, 3, 5], // b4
        ];
        let edges = vec![
            DirectedBubbleEdge {
                from: 0,
                to: 1,
                triangle: Triangle::new(0, 1, 2),
            },
            DirectedBubbleEdge {
                from: 2,
                to: 1,
                triangle: Triangle::new(0, 1, 3),
            },
            DirectedBubbleEdge {
                from: 3,
                to: 1,
                triangle: Triangle::new(1, 2, 3),
            },
        ];
        DirectedBubbleGraph::new(bubbles, edges, 7)
    }

    #[test]
    fn converging_bubbles_have_no_out_edges() {
        let g = figure2_graph();
        assert_eq!(g.converging_bubbles(), vec![1]);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(1), 0);
        assert_eq!(g.in_degree(1), 3);
        assert_eq!(g.in_degree(0), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn reachability_follows_directions() {
        let g = figure2_graph();
        let reach = g.reachable_converging_bubbles();
        // Every bubble reaches the single converging bubble b2 (id 1).
        for r in &reach {
            assert_eq!(r, &vec![1]);
        }
    }

    #[test]
    fn vertex_membership() {
        let g = figure2_graph();
        let membership = g.bubbles_of_vertices();
        assert_eq!(membership[1], vec![0, 1, 2, 3]);
        assert_eq!(membership[6], vec![2]);
        assert_eq!(membership[4], vec![0]);
    }

    #[test]
    fn invariants_catch_uncovered_vertex() {
        let g = DirectedBubbleGraph::new(vec![vec![0, 1, 2, 3]], vec![], 6);
        assert!(g.check_invariants().is_err());
    }

    #[test]
    fn chain_reachability() {
        // b0 → b1 → b2: only b2 converges; b0 and b1 both reach it.
        let bubbles = vec![vec![0, 1, 2, 3], vec![1, 2, 3, 4], vec![2, 3, 4, 5]];
        let t = Triangle::new(1, 2, 3);
        let t2 = Triangle::new(2, 3, 4);
        let edges = vec![
            DirectedBubbleEdge {
                from: 0,
                to: 1,
                triangle: t,
            },
            DirectedBubbleEdge {
                from: 1,
                to: 2,
                triangle: t2,
            },
        ];
        let g = DirectedBubbleGraph::new(bubbles, edges, 6);
        assert_eq!(g.converging_bubbles(), vec![2]);
        let reach = g.reachable_converging_bubbles();
        assert_eq!(reach[0], vec![2]);
        assert_eq!(reach[1], vec![2]);
        assert_eq!(reach[2], vec![2]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn diverging_directions_give_multiple_converging_bubbles() {
        // b1 ← b0 → b2 … wait, edges carry direction: b0 → b1 and b0 → b2
        // means b1 and b2 both converge and b0 reaches both.
        let bubbles = vec![vec![0, 1, 2, 3], vec![0, 1, 2, 4], vec![1, 2, 3, 5]];
        let edges = vec![
            DirectedBubbleEdge {
                from: 0,
                to: 1,
                triangle: Triangle::new(0, 1, 2),
            },
            DirectedBubbleEdge {
                from: 0,
                to: 2,
                triangle: Triangle::new(1, 2, 3),
            },
        ];
        let g = DirectedBubbleGraph::new(bubbles, edges, 6);
        assert_eq!(g.converging_bubbles(), vec![1, 2]);
        let reach = g.reachable_converging_bubbles();
        assert_eq!(reach[0], vec![1, 2]);
        assert_eq!(reach[1], vec![1]);
        assert_eq!(reach[2], vec![2]);
    }
}
