//! The Directed Bubble Hierarchy Tree (DBHT) clustering algorithm (§V).
//!
//! Given a filtered graph (a TMFG or any maximal planar graph such as a
//! PMFG), its bubble tree, and a dissimilarity measure, the DBHT produces a
//! dendrogram in four steps:
//!
//! 1. [`direction`] — direct the bubble-tree edges by comparing, for each
//!    separating triangle, the weight of its connections to the interior
//!    and exterior (Algorithm 3; Θ(n) work for TMFG-built bubble trees,
//!    with a quadratic reference implementation for arbitrary planar
//!    graphs);
//! 2. [`assignment`] — assign every vertex to a converging bubble (its
//!    *group*) and to a bubble (Algorithm 4, lines 1–23);
//! 3. [`hierarchy`] — build the three-level complete-linkage hierarchy
//!    (intra-bubble, inter-bubble, inter-group; Algorithm 4, lines 24–33)
//!    with the parallel mutual-nearest-neighbor engine;
//! 4. height re-assignment (§V-D) so that all single-group subtrees end at
//!    the same height.
//!
//! The shortest-path input (Algorithm 4, line 7) is *not* the full `n²`
//! APSP matrix: [`distances`] assembles the demand-driven restricted store
//! — full Dijkstra rows for the converging-bubble vertices (which is all
//! the assignment phase reads) plus dense intra-group blocks (which is all
//! the hierarchy reads within groups) — cutting the distance output to
//! `O(Σ group² + |conv|·n)`. [`DbhtRunStats`] reports how much of the
//! dense matrix that actually was.
//!
//! [`planar_bubbles`] implements the original (quadratic) bubble
//! decomposition of an arbitrary maximal planar graph, which is what the
//! PMFG+DBHT baseline uses and what the TMFG fast path is validated
//! against.

pub mod assignment;
pub mod bubble_graph;
pub mod direction;
pub mod distances;
pub mod hierarchy;
pub mod planar_bubbles;

use pfg_graph::{GroupBlocks, PairDistances, SourceRows, WeightedGraph};

use crate::dendrogram::Dendrogram;
use crate::error::CoreError;
use crate::tmfg::Tmfg;

pub use assignment::VertexAssignment;
pub use bubble_graph::DirectedBubbleGraph;
pub use distances::{DbhtDistanceStats, DbhtDistances};
pub use hierarchy::{build_hierarchy, build_hierarchy_with, HacBackend, HacStats};

/// Per-stage counters of one DBHT run: how the parallel HAC progressed and
/// how much of the dense APSP the restricted distance store replaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbhtRunStats {
    /// Merge rounds of the parallel HAC across all linkage runs.
    pub hac_rounds: usize,
    /// Total HAC merges (= internal dendrogram nodes).
    pub hac_merges: usize,
    /// Largest number of merges in a single HAC round.
    pub hac_max_round_merges: usize,
    /// Distance entries the restricted APSP materialised.
    pub apsp_pairs_computed: usize,
    /// Entries the dense APSP would have materialised (`n²`).
    pub apsp_pairs_full: usize,
    /// Converging-bubble vertices with a full Dijkstra row.
    pub apsp_source_rows: usize,
}

impl DbhtRunStats {
    /// Combines the HAC engine's counters with the distance-store stats.
    pub fn of(hac: HacStats, apsp: DbhtDistanceStats) -> Self {
        Self {
            hac_rounds: hac.rounds,
            hac_merges: hac.merges,
            hac_max_round_merges: hac.max_round_merges,
            apsp_pairs_computed: apsp.pairs_computed,
            apsp_pairs_full: apsp.pairs_full,
            apsp_source_rows: apsp.source_rows,
        }
    }

    /// Fraction of the dense `n²` distance output actually computed.
    pub fn restricted_fraction(&self) -> f64 {
        if self.apsp_pairs_full == 0 {
            0.0
        } else {
            self.apsp_pairs_computed as f64 / self.apsp_pairs_full as f64
        }
    }

    /// Human-readable one-liner for the figure binaries' tables.
    pub fn summary_line(&self) -> String {
        format!(
            "dbht rounds={} merges={} max_round={} apsp={}/{} ({:.3})",
            self.hac_rounds,
            self.hac_merges,
            self.hac_max_round_merges,
            self.apsp_pairs_computed,
            self.apsp_pairs_full,
            self.restricted_fraction()
        )
    }

    /// Suffix appended to a `Record`'s `params` field so the counters land
    /// in the machine-readable output too.
    pub fn params_suffix(&self) -> String {
        format!(
            ",hac_rounds={},apsp_frac={:.4}",
            self.hac_rounds,
            self.restricted_fraction()
        )
    }
}

/// The full DBHT output.
#[derive(Debug, Clone)]
pub struct Dbht {
    /// The dendrogram with DBHT height assignment.
    pub dendrogram: Dendrogram,
    /// The directed bubble graph used to produce it.
    pub bubble_graph: DirectedBubbleGraph,
    /// The per-vertex group (converging bubble) and bubble assignments.
    pub assignment: VertexAssignment,
    /// HAC and restricted-APSP counters of this run.
    pub stats: DbhtRunStats,
}

impl Dbht {
    /// Number of converging bubbles (= number of first-level groups).
    pub fn num_groups(&self) -> usize {
        self.bubble_graph.converging_bubbles().len()
    }
}

/// Runs the DBHT on a TMFG, using the fast Θ(n)-work direction computation
/// enabled by the bubble tree built during TMFG construction.
///
/// `dissimilarity` supplies the edge lengths for the shortest-path
/// computations (the paper uses `d = sqrt(2 (1 − ρ))` for correlations).
/// Any [`PairDistances`] works — the dense matrix, or a zero-allocation
/// view like [`pfg_graph::DissimilarityView`]: the DBHT only ever reads
/// the `3n − 6` filtered-graph edges from it.
///
/// # Errors
/// Returns [`CoreError::DimensionMismatch`] if the dissimilarity matrix
/// size differs from the graph's vertex count.
pub fn dbht_for_tmfg<D: PairDistances>(tmfg: &Tmfg, dissimilarity: &D) -> Result<Dbht, CoreError> {
    if dissimilarity.num_vertices() != tmfg.graph.num_vertices() {
        return Err(CoreError::DimensionMismatch {
            similarity: tmfg.graph.num_vertices(),
            dissimilarity: dissimilarity.num_vertices(),
        });
    }
    let bubble_graph = direction::direct_tmfg_bubble_tree(&tmfg.bubble_tree, &tmfg.graph);
    run_dbht(&tmfg.graph, bubble_graph, dissimilarity)
}

/// Runs the DBHT on an arbitrary maximal planar graph (e.g. a PMFG), using
/// the original quadratic bubble decomposition and direction computation.
///
/// # Errors
/// Returns [`CoreError::DimensionMismatch`] if the dissimilarity matrix
/// size differs from the graph's vertex count, and
/// [`CoreError::TooFewVertices`] if the graph has fewer than 4 vertices.
pub fn dbht_for_planar_graph<D: PairDistances>(
    graph: &WeightedGraph,
    dissimilarity: &D,
) -> Result<Dbht, CoreError> {
    let n = graph.num_vertices();
    if n < 4 {
        return Err(CoreError::TooFewVertices { got: n });
    }
    if dissimilarity.num_vertices() != n {
        return Err(CoreError::DimensionMismatch {
            similarity: n,
            dissimilarity: dissimilarity.num_vertices(),
        });
    }
    let decomposition = planar_bubbles::decompose(graph);
    let bubble_graph = direction::direct_generic(&decomposition, graph);
    run_dbht(graph, bubble_graph, dissimilarity)
}

/// The dissimilarity-weighted copy of a filtered graph: the metric the
/// DBHT's shortest-path computations run on (Algorithm 4, line 7). Only
/// the graph's `3n − 6` edge distances are read from `dissimilarity`.
pub fn dissimilarity_graph<D: PairDistances>(
    graph: &WeightedGraph,
    dissimilarity: &D,
) -> WeightedGraph {
    let mut dgraph = WeightedGraph::new(graph.num_vertices());
    for (u, v, _) in graph.edges() {
        dgraph.add_edge(u, v, dissimilarity.pair(u, v));
    }
    dgraph
}

/// The sorted union of the converging bubbles' vertices: the source set
/// whose full shortest-path rows the DBHT needs.
pub fn converging_vertices(bubble_graph: &DirectedBubbleGraph) -> Vec<usize> {
    let mut sources: Vec<usize> = bubble_graph
        .converging_bubbles()
        .into_iter()
        .flat_map(|b| bubble_graph.bubble(b).iter().copied())
        .collect();
    sources.sort_unstable();
    sources.dedup();
    sources
}

/// Computes the demand-driven distance store for an already-assigned
/// vertex partition: `rows` must cover the converging-bubble vertices.
pub fn restricted_distances(
    dgraph: &WeightedGraph,
    rows: SourceRows,
    assignment: &VertexAssignment,
) -> DbhtDistances {
    let blocks = GroupBlocks::compute(dgraph, &assignment.group_members());
    DbhtDistances { rows, blocks }
}

/// Shared tail of the DBHT: restricted shortest paths over the
/// dissimilarity-weighted filtered graph, vertex assignment, hierarchy and
/// height re-assignment.
fn run_dbht<D: PairDistances>(
    graph: &WeightedGraph,
    bubble_graph: DirectedBubbleGraph,
    dissimilarity: &D,
) -> Result<Dbht, CoreError> {
    let dgraph = dissimilarity_graph(graph, dissimilarity);

    // Full rows for the converging-bubble vertices — every distance the
    // assignment phase reads is anchored at one of them.
    let rows = SourceRows::compute(&dgraph, &converging_vertices(&bubble_graph));
    let assignment = assignment::assign_vertices(graph, &bubble_graph, &rows);

    // Dense blocks for the now-known groups — every remaining hierarchy
    // read is either intra-group or between converging-bubble vertices.
    let distances = restricted_distances(&dgraph, rows, &assignment);
    let apsp_stats = distances.stats();

    let (dendrogram, hac_stats) = hierarchy::build_hierarchy_with(
        &bubble_graph,
        &assignment,
        &distances,
        hierarchy::HacBackend::ParallelRounds,
    );
    Ok(Dbht {
        dendrogram,
        bubble_graph,
        assignment,
        stats: DbhtRunStats::of(hac_stats, apsp_stats),
    })
}
