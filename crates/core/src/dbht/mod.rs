//! The Directed Bubble Hierarchy Tree (DBHT) clustering algorithm (§V).
//!
//! Given a filtered graph (a TMFG or any maximal planar graph such as a
//! PMFG), its bubble tree, and a dissimilarity measure, the DBHT produces a
//! dendrogram in four steps:
//!
//! 1. [`direction`] — direct the bubble-tree edges by comparing, for each
//!    separating triangle, the weight of its connections to the interior
//!    and exterior (Algorithm 3; Θ(n) work for TMFG-built bubble trees,
//!    with a quadratic reference implementation for arbitrary planar
//!    graphs);
//! 2. [`assignment`] — assign every vertex to a converging bubble (its
//!    *group*) and to a bubble (Algorithm 4, lines 1–23);
//! 3. [`hierarchy`] — build the three-level complete-linkage hierarchy
//!    (intra-bubble, inter-bubble, inter-group; Algorithm 4, lines 24–33);
//! 4. height re-assignment (§V-D) so that all single-group subtrees end at
//!    the same height.
//!
//! [`planar_bubbles`] implements the original (quadratic) bubble
//! decomposition of an arbitrary maximal planar graph, which is what the
//! PMFG+DBHT baseline uses and what the TMFG fast path is validated
//! against.

pub mod assignment;
pub mod bubble_graph;
pub mod direction;
pub mod hierarchy;
pub mod planar_bubbles;

use pfg_graph::{all_pairs_shortest_paths, SymmetricMatrix, WeightedGraph};

use crate::dendrogram::Dendrogram;
use crate::error::CoreError;
use crate::tmfg::Tmfg;

pub use assignment::VertexAssignment;
pub use bubble_graph::DirectedBubbleGraph;

/// The full DBHT output.
#[derive(Debug, Clone)]
pub struct Dbht {
    /// The dendrogram with DBHT height assignment.
    pub dendrogram: Dendrogram,
    /// The directed bubble graph used to produce it.
    pub bubble_graph: DirectedBubbleGraph,
    /// The per-vertex group (converging bubble) and bubble assignments.
    pub assignment: VertexAssignment,
}

impl Dbht {
    /// Number of converging bubbles (= number of first-level groups).
    pub fn num_groups(&self) -> usize {
        self.bubble_graph.converging_bubbles().len()
    }
}

/// Runs the DBHT on a TMFG, using the fast Θ(n)-work direction computation
/// enabled by the bubble tree built during TMFG construction.
///
/// `dissimilarity` supplies the edge lengths for the shortest-path
/// computations (the paper uses `d = sqrt(2 (1 − ρ))` for correlations).
///
/// # Errors
/// Returns [`CoreError::DimensionMismatch`] if the dissimilarity matrix
/// size differs from the graph's vertex count.
pub fn dbht_for_tmfg(tmfg: &Tmfg, dissimilarity: &SymmetricMatrix) -> Result<Dbht, CoreError> {
    if dissimilarity.n() != tmfg.graph.num_vertices() {
        return Err(CoreError::DimensionMismatch {
            similarity: tmfg.graph.num_vertices(),
            dissimilarity: dissimilarity.n(),
        });
    }
    let bubble_graph = direction::direct_tmfg_bubble_tree(&tmfg.bubble_tree, &tmfg.graph);
    run_dbht(&tmfg.graph, bubble_graph, dissimilarity)
}

/// Runs the DBHT on an arbitrary maximal planar graph (e.g. a PMFG), using
/// the original quadratic bubble decomposition and direction computation.
///
/// # Errors
/// Returns [`CoreError::DimensionMismatch`] if the dissimilarity matrix
/// size differs from the graph's vertex count, and
/// [`CoreError::TooFewVertices`] if the graph has fewer than 4 vertices.
pub fn dbht_for_planar_graph(
    graph: &WeightedGraph,
    dissimilarity: &SymmetricMatrix,
) -> Result<Dbht, CoreError> {
    let n = graph.num_vertices();
    if n < 4 {
        return Err(CoreError::TooFewVertices { got: n });
    }
    if dissimilarity.n() != n {
        return Err(CoreError::DimensionMismatch {
            similarity: n,
            dissimilarity: dissimilarity.n(),
        });
    }
    let decomposition = planar_bubbles::decompose(graph);
    let bubble_graph = direction::direct_generic(&decomposition, graph);
    run_dbht(graph, bubble_graph, dissimilarity)
}

/// Shared tail of the DBHT: all-pairs shortest paths over the
/// dissimilarity-weighted filtered graph, vertex assignment, hierarchy and
/// height re-assignment.
fn run_dbht(
    graph: &WeightedGraph,
    bubble_graph: DirectedBubbleGraph,
    dissimilarity: &SymmetricMatrix,
) -> Result<Dbht, CoreError> {
    // Build the dissimilarity-weighted copy of the filtered graph and run
    // parallel APSP on it (Algorithm 4, line 7).
    let mut dgraph = WeightedGraph::new(graph.num_vertices());
    for (u, v, _) in graph.edges() {
        dgraph.add_edge(u, v, dissimilarity.get(u, v));
    }
    let shortest_paths = all_pairs_shortest_paths(&dgraph);

    let assignment = assignment::assign_vertices(graph, &bubble_graph, &shortest_paths);
    let dendrogram = hierarchy::build_hierarchy(&bubble_graph, &assignment, &shortest_paths);
    Ok(Dbht {
        dendrogram,
        bubble_graph,
        assignment,
    })
}
