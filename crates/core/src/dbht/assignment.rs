//! Vertex assignment to converging bubbles and bubbles (Algorithm 4,
//! lines 2–23).
//!
//! The first level of clustering assigns every vertex to a *group*, i.e. a
//! converging bubble: vertices inside a converging bubble pick the one with
//! the strongest attachment χ, and the remaining vertices pick the reachable
//! converging bubble with the smallest mean shortest-path distance to the
//! vertices already assigned to it. The second level assigns every vertex
//! to a bubble via the normalised attachment χ′.

use pfg_primitives::PriorityCell;
use rayon::prelude::*;

use pfg_graph::{PairDistances, WeightedGraph};

use crate::dbht::bubble_graph::DirectedBubbleGraph;

/// Per-vertex group (converging bubble) and bubble assignments.
#[derive(Debug, Clone)]
pub struct VertexAssignment {
    /// `group[v]` is the converging bubble id vertex `v` belongs to.
    pub group: Vec<usize>,
    /// `bubble[v]` is the bubble id vertex `v` is attached to.
    pub bubble: Vec<usize>,
    /// Sorted list of the distinct group ids actually used.
    pub groups: Vec<usize>,
}

impl VertexAssignment {
    /// The vertices assigned to group `g`, in increasing order.
    pub fn vertices_in_group(&self, g: usize) -> Vec<usize> {
        (0..self.group.len())
            .filter(|&v| self.group[v] == g)
            .collect()
    }

    /// The number of distinct groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Member lists for every group in `groups` order (each ascending),
    /// built in one pass — the `O(n)` replacement for calling
    /// [`VertexAssignment::vertices_in_group`] per group.
    pub fn group_members(&self) -> Vec<Vec<usize>> {
        let index_of: std::collections::HashMap<usize, usize> = self
            .groups
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i))
            .collect();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); self.groups.len()];
        for (v, &g) in self.group.iter().enumerate() {
            members[index_of[&g]].push(v);
        }
        members
    }
}

/// Attachment of vertex `v` to bubble `b` (the χ score): the total weight
/// of the filtered-graph edges between `v` and the bubble's vertices,
/// normalised by the bubble's edge count `3(|b| − 2)`. For TMFG bubbles
/// (4-cliques) the denominator is always 6, matching the simplification in
/// §V-C.
pub fn chi(graph: &WeightedGraph, bubble: &[usize], v: usize) -> f64 {
    let attach: f64 = bubble
        .iter()
        .filter(|&&u| u != v)
        .map(|&u| graph.edge_weight(u, v).unwrap_or(0.0))
        .sum();
    let edges_in_bubble = 3.0 * (bubble.len() as f64 - 2.0);
    attach / edges_in_bubble
}

/// Normalised attachment χ′ of vertex `v` to bubble `b`: the attachment
/// weight divided by twice the bubble's internal edge weight (which equals
/// the χ_total normaliser of Algorithm 4, lines 19–23).
pub fn chi_prime(graph: &WeightedGraph, bubble: &[usize], v: usize) -> f64 {
    let attach: f64 = bubble
        .iter()
        .filter(|&&u| u != v)
        .map(|&u| graph.edge_weight(u, v).unwrap_or(0.0))
        .sum();
    let mut internal = 0.0;
    for (i, &a) in bubble.iter().enumerate() {
        for &b in &bubble[i + 1..] {
            internal += graph.edge_weight(a, b).unwrap_or(0.0);
        }
    }
    if internal <= 0.0 {
        // Degenerate bubble with zero internal weight: fall back to the raw
        // attachment so the argmax is still meaningful.
        attach
    } else {
        attach / (2.0 * internal)
    }
}

/// Runs the vertex-assignment phase of the DBHT.
///
/// `shortest_paths` supplies shortest-path distances of the filtered graph
/// under the dissimilarity edge weights. Every read is anchored at a
/// vertex of a converging bubble, so the demand-driven
/// [`pfg_graph::SourceRows`] over the converging-bubble vertices suffices
/// — the full APSP matrix also works and gives the same assignment.
pub fn assign_vertices<D: PairDistances + Sync>(
    graph: &WeightedGraph,
    bubble_graph: &DirectedBubbleGraph,
    shortest_paths: &D,
) -> VertexAssignment {
    let n = graph.num_vertices();
    let converging = bubble_graph.converging_bubbles();
    let reachable = bubble_graph.reachable_converging_bubbles();
    let membership = bubble_graph.bubbles_of_vertices();

    // ---- First level: assign vertices inside converging bubbles by χ -----
    let group_cells: Vec<PriorityCell> = (0..n).map(|_| PriorityCell::neg_infinity()).collect();
    converging.par_iter().for_each(|&b| {
        let bubble = bubble_graph.bubble(b);
        for &v in bubble {
            let score = chi(graph, bubble, v);
            group_cells[v].write_max(score, b);
        }
    });

    // V0_b: vertices already assigned to each converging bubble.
    let mut assigned_to: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    let mut group = vec![usize::MAX; n];
    for v in 0..n {
        let (score, b) = group_cells[v].load();
        if score > f64::NEG_INFINITY && b != usize::MAX {
            group[v] = b;
            assigned_to.entry(b).or_default().push(v);
        }
    }

    // ---- First level: remaining vertices by mean shortest-path distance --
    let unassigned: Vec<usize> = (0..n).filter(|&v| group[v] == usize::MAX).collect();
    let assignments: Vec<(usize, usize)> = unassigned
        .par_iter()
        .map(|&v| {
            // Converging bubbles reachable from any bubble containing v.
            let mut candidates: Vec<usize> = membership[v]
                .iter()
                .flat_map(|&b| reachable[b].iter().copied())
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            let mut best: Option<(f64, usize)> = None;
            for &b in &candidates {
                let basis: &[usize] = match assigned_to.get(&b) {
                    Some(v0) if !v0.is_empty() => v0,
                    // Fallback: no vertex claimed this converging bubble via
                    // χ (possible only in degenerate weightings); measure the
                    // distance to the bubble's own vertices instead.
                    _ => bubble_graph.bubble(b),
                };
                let mean: f64 = basis
                    .iter()
                    .map(|&u| shortest_paths.pair(u, v))
                    .sum::<f64>()
                    / basis.len() as f64;
                match best {
                    None => best = Some((mean, b)),
                    Some((bm, bb)) if mean < bm || (mean == bm && b < bb) => best = Some((mean, b)),
                    _ => {}
                }
            }
            let chosen = best
                .map(|(_, b)| b)
                .or_else(|| converging.first().copied())
                .expect("at least one converging bubble exists");
            (v, chosen)
        })
        .collect();
    for (v, b) in assignments {
        group[v] = b;
    }

    // ---- Second level: assign every vertex to a bubble by χ′ -------------
    let bubble_cells: Vec<PriorityCell> = (0..n).map(|_| PriorityCell::neg_infinity()).collect();
    (0..bubble_graph.num_bubbles())
        .into_par_iter()
        .for_each(|b| {
            let bubble = bubble_graph.bubble(b);
            for &v in bubble {
                let score = chi_prime(graph, bubble, v);
                bubble_cells[v].write_max(score, b);
            }
        });
    let bubble: Vec<usize> = (0..n)
        .map(|v| {
            let (_, b) = bubble_cells[v].load();
            debug_assert_ne!(b, usize::MAX, "every vertex lies in at least one bubble");
            b
        })
        .collect();

    let mut groups: Vec<usize> = group.clone();
    groups.sort_unstable();
    groups.dedup();

    VertexAssignment {
        group,
        bubble,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbht::direction::direct_tmfg_bubble_tree;
    use crate::tmfg::{tmfg, TmfgConfig};
    use pfg_graph::{all_pairs_shortest_paths, SymmetricMatrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn two_block_matrix(n: usize) -> SymmetricMatrix {
        // Two equally sized blocks with strong intra-block similarity.
        SymmetricMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else if (i < n / 2) == (j < n / 2) {
                0.85
            } else {
                0.1
            }
        })
    }

    fn dissimilarity_of(s: &SymmetricMatrix) -> SymmetricMatrix {
        s.map(|p| (2.0 * (1.0 - p)).sqrt())
    }

    fn run_assignment(
        s: &SymmetricMatrix,
        prefix: usize,
    ) -> (VertexAssignment, DirectedBubbleGraph) {
        let t = tmfg(s, TmfgConfig::with_prefix(prefix)).unwrap();
        let directed = direct_tmfg_bubble_tree(&t.bubble_tree, &t.graph);
        let d = dissimilarity_of(s);
        let mut dgraph = WeightedGraph::new(s.n());
        for (u, v, _) in t.graph.edges() {
            dgraph.add_edge(u, v, d.get(u, v));
        }
        let spd = all_pairs_shortest_paths(&dgraph);
        let assignment = assign_vertices(&t.graph, &directed, &spd);
        (assignment, directed)
    }

    #[test]
    fn chi_on_a_clique_bubble() {
        let mut g = WeightedGraph::new(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v, 0.5);
            }
        }
        let bubble = vec![0, 1, 2, 3];
        // Each vertex touches three edges of weight 0.5; bubble has 6 edges.
        assert!((chi(&g, &bubble, 0) - 1.5 / 6.0).abs() < 1e-12);
        // χ' normalises by twice the internal weight (2 * 3.0 = 6.0).
        assert!((chi_prime(&g, &bubble, 0) - 1.5 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn chi_for_external_vertex_counts_only_existing_edges() {
        let mut g = WeightedGraph::new(5);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v, 1.0);
            }
        }
        g.add_edge(4, 0, 0.9);
        let bubble = vec![0, 1, 2, 3];
        assert!((chi(&g, &bubble, 4) - 0.9 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn every_vertex_gets_group_and_bubble() {
        let s = two_block_matrix(16);
        let (assignment, directed) = run_assignment(&s, 5);
        assert_eq!(assignment.group.len(), 16);
        assert_eq!(assignment.bubble.len(), 16);
        let converging = directed.converging_bubbles();
        for v in 0..16 {
            assert!(converging.contains(&assignment.group[v]), "vertex {v}");
            assert!(assignment.bubble[v] < directed.num_bubbles());
            // The assigned bubble must actually contain the vertex.
            assert!(directed.bubble(assignment.bubble[v]).contains(&v));
        }
        assert!(!assignment.groups.is_empty());
    }

    #[test]
    fn group_assignment_respects_reachability() {
        let n = 20;
        let s = two_block_matrix(n);
        let (assignment, directed) = run_assignment(&s, 1);
        let membership = directed.bubbles_of_vertices();
        let reachable = directed.reachable_converging_bubbles();
        for (v, bubbles) in membership.iter().enumerate() {
            // The group of v must be a converging bubble reachable from at
            // least one bubble containing v (Algorithm 4: v ⇀ b).
            let ok = bubbles
                .iter()
                .any(|&b| reachable[b].contains(&assignment.group[v]));
            assert!(
                ok,
                "vertex {v} assigned to unreachable group {}",
                assignment.group[v]
            );
        }
        // Every group is non-empty and vertices_in_group partitions 0..n.
        let total: usize = assignment
            .groups
            .iter()
            .map(|&g| assignment.vertices_in_group(g).len())
            .sum();
        assert_eq!(total, n);
    }

    #[test]
    fn assignment_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(42);
        let s = SymmetricMatrix::from_fn(18, |i, j| {
            if i == j {
                1.0
            } else {
                rng.gen_range(0.01..1.0)
            }
        });
        let (a1, _) = run_assignment(&s, 4);
        let (a2, _) = run_assignment(&s, 4);
        assert_eq!(a1.group, a2.group);
        assert_eq!(a1.bubble, a2.bubble);
    }
}
