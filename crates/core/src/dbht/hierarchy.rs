//! The three-level complete-linkage hierarchy and dendrogram heights
//! (Algorithm 4, lines 24–33, and §V-D).
//!
//! The hierarchy is built bottom-up:
//!
//! 1. **intra-bubble** — within every *subgroup* (vertices sharing both a
//!    group, i.e. converging bubble, and a bubble assignment) the vertices
//!    are merged by complete linkage under the shortest-path distance;
//! 2. **inter-bubble** — within every group the subgroup dendrograms are
//!    merged by complete linkage;
//! 3. **inter-group** — the group dendrograms are merged by complete
//!    linkage.
//!
//! Heights are then re-assigned: inter-group nodes receive the number of
//! converging bubbles among their descendants, and the nodes inside each
//! group receive the ladder `[1/(n_b−1), …, 1/2, 1]` in the prescribed
//! order (intra-bubble nodes first, sorted by bubble then merge distance,
//! followed by inter-bubble nodes sorted by merge distance), so that every
//! single-group subtree tops out at height 1.

use pfg_graph::SymmetricMatrix;

use crate::dbht::assignment::VertexAssignment;
use crate::dbht::bubble_graph::DirectedBubbleGraph;
use crate::dendrogram::Dendrogram;

/// Which of the three levels created an internal dendrogram node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergeKind {
    /// Merge inside a subgroup (same group and bubble assignment).
    IntraBubble { group: usize, bubble: usize },
    /// Merge of subgroup dendrograms inside one group.
    InterBubble { group: usize },
    /// Merge of group dendrograms.
    InterGroup,
}

/// Book-keeping for one internal node created during hierarchy
/// construction.
#[derive(Debug, Clone, Copy)]
struct MergeRecord {
    node: usize,
    kind: MergeKind,
    distance: f64,
}

/// A cluster being agglomerated: a dendrogram node plus its member
/// vertices.
#[derive(Debug, Clone)]
struct Cluster {
    node: usize,
    members: Vec<usize>,
}

/// Builds the DBHT dendrogram from the vertex assignment.
pub fn build_hierarchy(
    bubble_graph: &DirectedBubbleGraph,
    assignment: &VertexAssignment,
    shortest_paths: &SymmetricMatrix,
) -> Dendrogram {
    let n = bubble_graph.num_vertices();
    let mut dendrogram = Dendrogram::new(n);
    let mut records: Vec<MergeRecord> = Vec::new();

    if n == 0 {
        return dendrogram;
    }

    // ---- Level 1 + 2: per-group construction ------------------------------
    let mut group_roots: Vec<Cluster> = Vec::new();
    let mut group_sizes: Vec<(usize, usize)> = Vec::new(); // (group id, n_b)
    for &g in &assignment.groups {
        let members = assignment.vertices_in_group(g);
        group_sizes.push((g, members.len()));
        // Partition the group into subgroups by bubble assignment.
        let mut bubbles: Vec<usize> = members.iter().map(|&v| assignment.bubble[v]).collect();
        bubbles.sort_unstable();
        bubbles.dedup();
        let mut subgroup_roots: Vec<Cluster> = Vec::new();
        for &b in &bubbles {
            let subgroup: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&v| assignment.bubble[v] == b)
                .collect();
            let leaves: Vec<Cluster> = subgroup
                .iter()
                .map(|&v| Cluster {
                    node: v,
                    members: vec![v],
                })
                .collect();
            let root = complete_linkage(
                &mut dendrogram,
                leaves,
                shortest_paths,
                |node, distance, records: &mut Vec<MergeRecord>| {
                    records.push(MergeRecord {
                        node,
                        kind: MergeKind::IntraBubble {
                            group: g,
                            bubble: b,
                        },
                        distance,
                    });
                },
                &mut records,
            );
            subgroup_roots.push(root);
        }
        // Inter-bubble merges within the group.
        let group_root = complete_linkage(
            &mut dendrogram,
            subgroup_roots,
            shortest_paths,
            |node, distance, records: &mut Vec<MergeRecord>| {
                records.push(MergeRecord {
                    node,
                    kind: MergeKind::InterBubble { group: g },
                    distance,
                });
            },
            &mut records,
        );
        group_roots.push(group_root);
    }

    // ---- Level 3: inter-group merges ---------------------------------------
    let group_root_nodes: Vec<usize> = group_roots.iter().map(|c| c.node).collect();
    let _final_root = complete_linkage(
        &mut dendrogram,
        group_roots,
        shortest_paths,
        |node, distance, records: &mut Vec<MergeRecord>| {
            records.push(MergeRecord {
                node,
                kind: MergeKind::InterGroup,
                distance,
            });
        },
        &mut records,
    );

    assign_heights(&mut dendrogram, &records, &group_sizes, &group_root_nodes);
    dendrogram
}

/// Complete-linkage agglomeration of the given clusters using the
/// nearest-neighbor-chain algorithm (O(m²) for m clusters). Returns the
/// final cluster; `on_merge` is invoked for every internal node created.
///
/// Complete-linkage distances tie *structurally*: the Lance–Williams
/// update propagates `max` values unchanged, so after a few merges many
/// cluster pairs share the exact same distance (typically the one
/// involving the globally farthest member). Which pair merges on a tie
/// must therefore not depend on the order the clusters were passed in —
/// that order comes from bubble ids, which differ between the
/// construction-built bubble tree and the planarity-based decomposition of
/// the very same graph. Ties are broken lexicographically by (max
/// distance, *mean* cross distance, smallest member id), so (a) the
/// dendrogram is a pure function of the graph and the vertex partition,
/// and (b) among equal-diameter pairs the genuinely closer clusters merge
/// first.
fn complete_linkage(
    dendrogram: &mut Dendrogram,
    clusters: Vec<Cluster>,
    shortest_paths: &SymmetricMatrix,
    on_merge: impl Fn(usize, f64, &mut Vec<MergeRecord>),
    records: &mut Vec<MergeRecord>,
) -> Cluster {
    let m = clusters.len();
    assert!(m > 0, "complete linkage needs at least one cluster");
    if m == 1 {
        return clusters.into_iter().next().expect("single cluster");
    }
    // Initial cluster distances: the complete-linkage max plus, as the tie
    // discriminator, the average pairwise shortest-path distance.
    let mut dist = vec![f64::INFINITY; m * m];
    let mut mean = vec![f64::INFINITY; m * m];
    for i in 0..m {
        for j in (i + 1)..m {
            let (d, a) =
                cross_distances(&clusters[i].members, &clusters[j].members, shortest_paths);
            dist[i * m + j] = d;
            dist[j * m + i] = d;
            mean[i * m + j] = a;
            mean[j * m + i] = a;
        }
    }
    let mut slots: Vec<Option<Cluster>> = clusters.into_iter().map(Some).collect();
    // The smallest member id per active slot: the canonical, input-order-
    // independent identity used for the final tie level.
    let mut min_member: Vec<usize> = (0..m)
        .map(|i| slots[i].as_ref().expect("present").members[0])
        .collect();
    let mut sizes: Vec<usize> = (0..m)
        .map(|i| slots[i].as_ref().expect("present").members.len())
        .collect();
    let mut active: Vec<bool> = vec![true; m];
    let mut remaining = m;
    let mut chain: Vec<usize> = Vec::new();

    while remaining > 1 {
        if chain.is_empty() {
            // Canonical chain start: the active cluster with the smallest
            // member id (the input order carries bubble ids, which must not
            // influence the output).
            let start = (0..m)
                .filter(|&i| active[i])
                .min_by_key(|&i| min_member[i])
                .expect("at least two active clusters remain");
            chain.push(start);
        }
        let current = *chain.last().expect("chain non-empty");
        // Nearest active neighbor of `current`; prefer the previous chain
        // element on full ties so reciprocal pairs are detected and the
        // chain terminates.
        let prev = if chain.len() >= 2 {
            Some(chain[chain.len() - 2])
        } else {
            None
        };
        let mut nearest = usize::MAX;
        let mut nearest_key = (f64::INFINITY, f64::INFINITY);
        for j in 0..m {
            if !active[j] || j == current {
                continue;
            }
            let key = (dist[current * m + j], mean[current * m + j]);
            let ordering = key
                .0
                .total_cmp(&nearest_key.0)
                .then_with(|| key.1.total_cmp(&nearest_key.1));
            let better = ordering.is_lt()
                || (ordering.is_eq()
                    && Some(nearest) != prev
                    && (Some(j) == prev
                        || nearest == usize::MAX
                        || min_member[j] < min_member[nearest]));
            if better {
                nearest = j;
                nearest_key = key;
            }
        }
        if Some(nearest) == prev {
            // Reciprocal nearest neighbors: merge them.
            chain.pop();
            chain.pop();
            let a = current.min(nearest);
            let b = current.max(nearest);
            let cluster_a = slots[a].take().expect("active cluster present");
            let cluster_b = slots[b].take().expect("active cluster present");
            let node = dendrogram.merge(cluster_a.node, cluster_b.node, nearest_key.0);
            on_merge(node, nearest_key.0, records);
            let mut members = cluster_a.members;
            members.extend(cluster_b.members);
            members.sort_unstable();
            // Lance–Williams updates: max for the complete-linkage level,
            // size-weighted mean for the tie discriminator.
            let (sa, sb) = (sizes[a] as f64, sizes[b] as f64);
            for j in 0..m {
                if active[j] && j != a && j != b {
                    let d = dist[a * m + j].max(dist[b * m + j]);
                    dist[a * m + j] = d;
                    dist[j * m + a] = d;
                    let av = (sa * mean[a * m + j] + sb * mean[b * m + j]) / (sa + sb);
                    mean[a * m + j] = av;
                    mean[j * m + a] = av;
                }
            }
            active[b] = false;
            min_member[a] = min_member[a].min(min_member[b]);
            sizes[a] += sizes[b];
            slots[a] = Some(Cluster { node, members });
            remaining -= 1;
        } else {
            chain.push(nearest);
        }
    }
    let winner = active.iter().position(|&a| a).expect("one cluster remains");
    slots[winner].take().expect("final cluster present")
}

/// Maximum and mean shortest-path distance between two member sets: the
/// complete-linkage cluster distance of §V-D plus the tie discriminator.
fn cross_distances(a: &[usize], b: &[usize], shortest_paths: &SymmetricMatrix) -> (f64, f64) {
    let mut max = 0.0_f64;
    let mut sum = 0.0_f64;
    for &u in a {
        for &v in b {
            let d = shortest_paths.get(u, v);
            max = max.max(d);
            sum += d;
        }
    }
    (max, sum / (a.len() * b.len()) as f64)
}

/// Re-assigns the dendrogram heights per §V-D.
fn assign_heights(
    dendrogram: &mut Dendrogram,
    records: &[MergeRecord],
    group_sizes: &[(usize, usize)],
    group_root_nodes: &[usize],
) {
    use std::collections::HashMap;

    // Inter-group nodes: height = number of converging bubbles (groups)
    // among the node's descendants. Group roots count 1; leaves of the
    // inter-group level are exactly the group roots.
    let group_root_set: std::collections::HashSet<usize> =
        group_root_nodes.iter().copied().collect();
    let mut groups_below: HashMap<usize, usize> = HashMap::new();
    let count_groups =
        |dendrogram: &Dendrogram, node: usize, groups_below: &mut HashMap<usize, usize>| {
            // Children of inter-group nodes are either group roots or earlier
            // inter-group nodes (already counted, since records are in creation
            // order).
            let n = dendrogram.node(node);
            let child_count = |c: usize, groups_below: &HashMap<usize, usize>| {
                if group_root_set.contains(&c) {
                    1
                } else {
                    *groups_below.get(&c).unwrap_or(&1)
                }
            };
            let total = child_count(n.left.expect("internal"), groups_below)
                + child_count(n.right.expect("internal"), groups_below);
            groups_below.insert(node, total);
            total
        };
    for record in records {
        if record.kind == MergeKind::InterGroup {
            let total = count_groups(dendrogram, record.node, &mut groups_below);
            dendrogram.set_height(record.node, total as f64);
        }
    }

    // Per-group ladder heights.
    let sizes: HashMap<usize, usize> = group_sizes.iter().copied().collect();
    let mut per_group: HashMap<usize, Vec<&MergeRecord>> = HashMap::new();
    for record in records {
        match record.kind {
            MergeKind::IntraBubble { group, .. } | MergeKind::InterBubble { group } => {
                per_group.entry(group).or_default().push(record);
            }
            MergeKind::InterGroup => {}
        }
    }
    for (group, mut group_records) in per_group {
        let nb = sizes[&group];
        debug_assert_eq!(group_records.len(), nb.saturating_sub(1));
        // Sort: intra-bubble nodes first (by bubble assignment, then merge
        // distance, then creation order), then inter-bubble nodes (by merge
        // distance, then creation order).
        group_records.sort_by(|a, b| {
            let key = |r: &MergeRecord| match r.kind {
                MergeKind::IntraBubble { bubble, .. } => (0_usize, bubble),
                MergeKind::InterBubble { .. } => (1, 0),
                MergeKind::InterGroup => unreachable!("filtered above"),
            };
            key(a)
                .cmp(&key(b))
                .then(a.distance.total_cmp(&b.distance))
                .then(a.node.cmp(&b.node))
        });
        // Ladder 1/(nb−1), 1/(nb−2), …, 1/2, 1.
        for (i, record) in group_records.iter().enumerate() {
            let denom = (nb - 1 - i) as f64;
            dendrogram.set_height(record.node, 1.0 / denom);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbht::dbht_for_tmfg;
    use crate::tmfg::{tmfg, TmfgConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blocks_matrix(
        n: usize,
        blocks: usize,
        strong: f64,
        weak: f64,
        seed: u64,
    ) -> SymmetricMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        SymmetricMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else if (i % blocks) == (j % blocks) {
                strong + rng.gen_range(-0.02..0.02)
            } else {
                weak + rng.gen_range(-0.02..0.02)
            }
        })
    }

    fn dissimilarity_of(s: &SymmetricMatrix) -> SymmetricMatrix {
        s.map(|p| (2.0 * (1.0 - p)).sqrt())
    }

    #[test]
    fn dendrogram_covers_all_vertices_and_is_monotone() {
        for prefix in [1, 5] {
            let n = 24;
            let s = blocks_matrix(n, 3, 0.8, 0.1, 7);
            let t = tmfg(&s, TmfgConfig::with_prefix(prefix)).unwrap();
            let d = dissimilarity_of(&s);
            let result = dbht_for_tmfg(&t, &d).unwrap();
            let dend = &result.dendrogram;
            assert_eq!(dend.num_leaves(), n);
            let root = dend.root().expect("fully merged dendrogram");
            assert_eq!(dend.node(root).size, n);
            assert!(dend.is_monotone(), "DBHT heights must be monotone");
        }
    }

    #[test]
    fn root_height_equals_number_of_groups() {
        let n = 30;
        let s = blocks_matrix(n, 3, 0.85, 0.05, 3);
        let t = tmfg(&s, TmfgConfig::with_prefix(2)).unwrap();
        let d = dissimilarity_of(&s);
        let result = dbht_for_tmfg(&t, &d).unwrap();
        let dend = &result.dendrogram;
        let root = dend.root().unwrap();
        let groups = result.assignment.num_groups();
        if groups > 1 {
            assert!((dend.node(root).height - groups as f64).abs() < 1e-9);
        } else {
            // A single group tops out at height 1.
            assert!((dend.node(root).height - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn three_blocks_recovered_by_cutting() {
        let n = 30;
        let s = blocks_matrix(n, 3, 0.85, 0.05, 11);
        let t = tmfg(&s, TmfgConfig::with_prefix(1)).unwrap();
        let d = dissimilarity_of(&s);
        let result = dbht_for_tmfg(&t, &d).unwrap();
        let labels = result.dendrogram.cut_to_clusters(3);
        // Measure agreement with ground truth (i % 3) via pair counting:
        // the clustering should be far better than random.
        let mut agree = 0_usize;
        let mut total = 0_usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let same_truth = i % 3 == j % 3;
                let same_label = labels[i] == labels[j];
                if same_truth == same_label {
                    agree += 1;
                }
                total += 1;
            }
        }
        let agreement = agree as f64 / total as f64;
        assert!(agreement > 0.8, "agreement {agreement}");
    }

    #[test]
    fn group_subtrees_top_out_at_height_one() {
        let n = 26;
        let s = blocks_matrix(n, 2, 0.8, 0.1, 5);
        let t = tmfg(&s, TmfgConfig::with_prefix(3)).unwrap();
        let d = dissimilarity_of(&s);
        let result = dbht_for_tmfg(&t, &d).unwrap();
        let dend = &result.dendrogram;
        // Every internal node height is either in (0, 1] (within-group) or
        // an integer ≥ 2 (inter-group).
        for id in dend.internal_nodes() {
            let h = dend.node(id).height;
            let within = h > 0.0 && h <= 1.0 + 1e-12;
            let inter = h >= 2.0 - 1e-12 && (h - h.round()).abs() < 1e-9;
            assert!(within || inter, "unexpected height {h}");
        }
    }

    #[test]
    fn complete_linkage_chain_merges_closest_first() {
        // Four singleton clusters on a line: 0-1 close, 2-3 close, the two
        // pairs far apart.
        let spd = SymmetricMatrix::from_fn(4, |i, j| {
            let pos: [f64; 4] = [0.0, 1.0, 10.0, 11.0];
            (pos[i] - pos[j]).abs()
        });
        let mut dend = Dendrogram::new(4);
        let clusters: Vec<Cluster> = (0..4)
            .map(|v| Cluster {
                node: v,
                members: vec![v],
            })
            .collect();
        let mut records = Vec::new();
        let root = complete_linkage(
            &mut dend,
            clusters,
            &spd,
            |node, dist, recs| {
                recs.push(MergeRecord {
                    node,
                    kind: MergeKind::InterGroup,
                    distance: dist,
                });
            },
            &mut records,
        );
        assert_eq!(root.members, vec![0, 1, 2, 3]);
        assert_eq!(records.len(), 3);
        // First two merges are the tight pairs at distance 1.
        assert!((records[0].distance - 1.0).abs() < 1e-12);
        assert!((records[1].distance - 1.0).abs() < 1e-12);
        // Final merge is the complete-linkage distance 11.
        assert!((records[2].distance - 11.0).abs() < 1e-12);
    }
}
