//! The three-level complete-linkage hierarchy and dendrogram heights
//! (Algorithm 4, lines 24–33, and §V-D), built by a parallel
//! nearest-neighbor-merge HAC.
//!
//! The hierarchy is built bottom-up:
//!
//! 1. **intra-bubble** — within every *subgroup* (vertices sharing both a
//!    group, i.e. converging bubble, and a bubble assignment) the vertices
//!    are merged by complete linkage under the shortest-path distance;
//! 2. **inter-bubble** — within every group the subgroup dendrograms are
//!    merged by complete linkage;
//! 3. **inter-group** — the group dendrograms are merged by complete
//!    linkage over the groups' *converging-bubble vertices* (the anchors
//!    of the bubble-tree paths between group cores), which is what lets
//!    the whole hierarchy run on the demand-driven restricted distance
//!    store instead of the full `n²` APSP matrix.
//!
//! Heights are then re-assigned: inter-group nodes receive the number of
//! converging bubbles among their descendants, and the nodes inside each
//! group receive the ladder `[1/(n_b−1), …, 1/2, 1]` in the prescribed
//! order, so that every single-group subtree tops out at height 1.
//!
//! # The mutual-NN round rule, and why it reproduces NN-chain output
//!
//! Each linkage run can be planned by either of two engines
//! ([`HacBackend`]):
//!
//! * [`HacBackend::ParallelRounds`] — per round, every active cluster
//!   finds its nearest neighbor (one parallel scan per cluster row), and
//!   every *mutually*-nearest pair merges. Mutual pairs are disjoint by
//!   construction (nearest-of is a function), so all merges of a round
//!   commute.
//! * [`HacBackend::NnChain`] — the classical sequential nearest-neighbor
//!   chain, kept as the differential reference.
//!
//! Both engines order candidate pairs by the same **strict total order**
//! `K(A, B) = (max cross distance, mean cross distance, min member id of
//! one cluster, min member id of the other)`. Min member ids are unique
//! per active cluster, so no two coexisting pairs ever compare equal and
//! every cluster has a *unique* nearest neighbor. Complete linkage is
//! *reducible* under `K`: merging a mutually-nearest pair `(A, B)` gives,
//! for any other cluster `C`, `K(A∪B, C) ≥ min(K(A,C), K(B,C))` — the
//! max component can only grow, the mean lands between the children's
//! means, and the merged min-member is the smaller child min-member. So a
//! merge never steals another pair's mutual-nearest status, every
//! NN-chain merge is itself a mutual-NN merge, and by the standard
//! confluence argument for reducible linkages **any** schedule of
//! mutual-NN merges — one at a time along a chain, or a whole round in
//! parallel — produces the same merge tree with the same `(max, mean)`
//! labels.
//!
//! Two implementation rules turn "same tree" into "byte-identical
//! dendrogram":
//!
//! * **Pure pair statistics.** `(max, mean)` for a cluster pair is always
//!   recomputed from the two member sets in a canonical order (outer loop
//!   over the smaller-min-member cluster, members ascending), never
//!   accumulated via Lance–Williams float updates. A Lance–Williams mean
//!   drifts by ulps depending on merge order, which on tie-heavy inputs
//!   is enough to flip a comparison and change the tree; the pure
//!   recomputation makes every comparison identical across engines and
//!   thread counts. (`max` would be exact either way; the mean is the
//!   reason.)
//! * **Canonical replay.** Engines discover merges in different orders,
//!   so planned merges are renumbered before touching the [`Dendrogram`]:
//!   repeatedly emit the *available* merge (both children already
//!   emitted) with the smallest `K`-key. Available merges have disjoint
//!   member sets, hence distinct keys, so the emission order — and with
//!   it every dendrogram node id — is a pure function of the merge set.

use pfg_graph::PairDistances;
use rayon::prelude::*;

use crate::dbht::assignment::VertexAssignment;
use crate::dbht::bubble_graph::DirectedBubbleGraph;
use crate::dendrogram::Dendrogram;

/// Which engine plans the complete-linkage merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HacBackend {
    /// Merge every mutually-nearest pair per round, rounds in parallel.
    #[default]
    ParallelRounds,
    /// The sequential nearest-neighbor chain (differential reference).
    NnChain,
}

/// Counters from the HAC planning phase, aggregated over all linkage runs
/// (one per subgroup, one per group, one inter-group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HacStats {
    /// Total merge rounds across all linkage runs (for the chain engine
    /// every merge is its own round).
    pub rounds: usize,
    /// Total merges (= internal dendrogram nodes).
    pub merges: usize,
    /// Largest number of merges performed in a single round.
    pub max_round_merges: usize,
}

impl HacStats {
    fn record_round(&mut self, merges: usize) {
        self.rounds += 1;
        self.merges += merges;
        self.max_round_merges = self.max_round_merges.max(merges);
    }

    fn absorb(&mut self, other: &HacStats) {
        self.rounds += other.rounds;
        self.merges += other.merges;
        self.max_round_merges = self.max_round_merges.max(other.max_round_merges);
    }
}

/// Which of the three levels created an internal dendrogram node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergeKind {
    /// Merge inside a subgroup (same group and bubble assignment).
    IntraBubble { group: usize, bubble: usize },
    /// Merge of subgroup dendrograms inside one group.
    InterBubble { group: usize },
    /// Merge of group dendrograms.
    InterGroup,
}

/// Book-keeping for one internal node created during hierarchy
/// construction.
#[derive(Debug, Clone, Copy)]
struct MergeRecord {
    node: usize,
    kind: MergeKind,
    distance: f64,
}

/// One input cluster of a linkage run.
#[derive(Debug, Clone)]
struct LinkItem {
    /// Vertices whose pairwise distances define the cluster distance
    /// (sorted ascending). For levels 1–2 these are the true members; for
    /// level 3 they are the group's converging-bubble vertices.
    members: Vec<usize>,
    /// Canonical cluster identity for tie-breaking: the smallest *true*
    /// member id. Unique across the items of one run.
    mm: usize,
}

/// One planned merge. References `0..m` are input items; `m + k` is the
/// `k`-th event of the same plan. After canonicalization the events are in
/// canonical emission order and `left` names the smaller-min-member child.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PlanEvent {
    left: usize,
    right: usize,
    dist: f64,
    mean: f64,
}

/// Builds the DBHT dendrogram from the vertex assignment using the
/// default [`HacBackend::ParallelRounds`] engine.
pub fn build_hierarchy<D: PairDistances + Sync>(
    bubble_graph: &DirectedBubbleGraph,
    assignment: &VertexAssignment,
    distances: &D,
) -> Dendrogram {
    build_hierarchy_with(
        bubble_graph,
        assignment,
        distances,
        HacBackend::ParallelRounds,
    )
    .0
}

/// Per-group planning output: the canonical merge plans of the group's
/// subgroups (level 1) and of the group itself (level 2).
struct GroupPlan {
    group: usize,
    num_members: usize,
    /// `(bubble id, subgroup vertices ascending, canonical plan)`.
    subgroups: Vec<(usize, Vec<usize>, Vec<PlanEvent>)>,
    /// Level-2 plan; item `i` is `subgroups[i]`'s dendrogram root.
    inter_bubble: Vec<PlanEvent>,
    stats: HacStats,
}

/// Builds the DBHT dendrogram with an explicit planning engine, returning
/// the engine's counters. Both engines produce byte-identical dendrograms
/// (see the module docs); the counters differ.
pub fn build_hierarchy_with<D: PairDistances + Sync>(
    bubble_graph: &DirectedBubbleGraph,
    assignment: &VertexAssignment,
    distances: &D,
    backend: HacBackend,
) -> (Dendrogram, HacStats) {
    let n = bubble_graph.num_vertices();
    let mut dendrogram = Dendrogram::new(n);
    if n == 0 {
        return (dendrogram, HacStats::default());
    }

    let group_members = assignment.group_members();

    // ---- Plan levels 1 + 2, groups in parallel ---------------------------
    let plans: Vec<GroupPlan> = (0..assignment.groups.len())
        .into_par_iter()
        .map(|gi| {
            let group = assignment.groups[gi];
            let members = &group_members[gi];
            let mut stats = HacStats::default();
            let mut bubbles: Vec<usize> = members.iter().map(|&v| assignment.bubble[v]).collect();
            bubbles.sort_unstable();
            bubbles.dedup();
            let subgroups: Vec<(usize, Vec<usize>, Vec<PlanEvent>)> = bubbles
                .iter()
                .map(|&b| {
                    let verts: Vec<usize> = members
                        .iter()
                        .copied()
                        .filter(|&v| assignment.bubble[v] == b)
                        .collect();
                    let items: Vec<LinkItem> = verts
                        .iter()
                        .map(|&v| LinkItem {
                            members: vec![v],
                            mm: v,
                        })
                        .collect();
                    let plan = plan_linkage(items, distances, backend, &mut stats);
                    (b, verts, plan)
                })
                .collect();
            let sub_items: Vec<LinkItem> = subgroups
                .iter()
                .map(|(_, verts, _)| LinkItem {
                    members: verts.clone(),
                    mm: verts[0],
                })
                .collect();
            let inter_bubble = plan_linkage(sub_items, distances, backend, &mut stats);
            GroupPlan {
                group,
                num_members: members.len(),
                subgroups,
                inter_bubble,
                stats,
            }
        })
        .collect();

    // ---- Replay sequentially in group order ------------------------------
    let mut records: Vec<MergeRecord> = Vec::new();
    let mut stats = HacStats::default();
    let mut group_roots: Vec<usize> = Vec::with_capacity(plans.len());
    let mut group_sizes: Vec<(usize, usize)> = Vec::with_capacity(plans.len());
    for plan in &plans {
        stats.absorb(&plan.stats);
        group_sizes.push((plan.group, plan.num_members));
        let mut sub_roots: Vec<usize> = Vec::with_capacity(plan.subgroups.len());
        for (b, verts, events) in &plan.subgroups {
            let root = replay(&mut dendrogram, verts, events, |node, distance| {
                records.push(MergeRecord {
                    node,
                    kind: MergeKind::IntraBubble {
                        group: plan.group,
                        bubble: *b,
                    },
                    distance,
                });
            });
            sub_roots.push(root);
        }
        let group_root = replay(
            &mut dendrogram,
            &sub_roots,
            &plan.inter_bubble,
            |node, d| {
                records.push(MergeRecord {
                    node,
                    kind: MergeKind::InterBubble { group: plan.group },
                    distance: d,
                });
            },
        );
        group_roots.push(group_root);
    }

    // ---- Level 3: inter-group over converging-bubble vertices ------------
    let group_items: Vec<LinkItem> = (0..assignment.groups.len())
        .map(|gi| {
            let mut proxy = bubble_graph.bubble(assignment.groups[gi]).to_vec();
            proxy.sort_unstable();
            LinkItem {
                members: proxy,
                mm: group_members[gi][0],
            }
        })
        .collect();
    let inter_group = plan_linkage(group_items, distances, backend, &mut stats);
    let _root = replay(&mut dendrogram, &group_roots, &inter_group, |node, d| {
        records.push(MergeRecord {
            node,
            kind: MergeKind::InterGroup,
            distance: d,
        });
    });

    assign_heights(&mut dendrogram, &records, &group_sizes, &group_roots);
    (dendrogram, stats)
}

/// Emits a canonical plan into the dendrogram. `slot_nodes[i]` is the
/// dendrogram node id of plan item `i`; returns the root node id.
fn replay(
    dendrogram: &mut Dendrogram,
    slot_nodes: &[usize],
    events: &[PlanEvent],
    mut on_merge: impl FnMut(usize, f64),
) -> usize {
    let mut node_of: Vec<usize> = Vec::with_capacity(slot_nodes.len() + events.len());
    node_of.extend_from_slice(slot_nodes);
    for event in events {
        let node = dendrogram.merge(node_of[event.left], node_of[event.right], event.dist);
        on_merge(node, event.dist);
        node_of.push(node);
    }
    *node_of.last().expect("at least one cluster")
}

/// The canonical `(max, mean)` cross statistics of two clusters: outer
/// loop over the smaller-min-member cluster, members ascending. A pure
/// function of the unordered cluster pair and the distance store, so every
/// engine and every thread count computes bitwise-identical values.
fn cross_stats<D: PairDistances>(d: &D, a: (&[usize], usize), b: (&[usize], usize)) -> (f64, f64) {
    let (outer, inner) = if a.1 < b.1 { (a.0, b.0) } else { (b.0, a.0) };
    let mut max = 0.0_f64;
    let mut sum = 0.0_f64;
    for &u in outer {
        for &v in inner {
            let x = d.pair(u, v);
            max = max.max(x);
            sum += x;
        }
    }
    (max, sum / (outer.len() * inner.len()) as f64)
}

/// Mutable state of one linkage run: active clusters and the pure pair
/// statistics for every active pair.
struct LinkState {
    m: usize,
    members: Vec<Vec<usize>>,
    mm: Vec<usize>,
    /// Plan reference currently representing each slot.
    refid: Vec<usize>,
    active: Vec<bool>,
    remaining: usize,
    dist: Vec<f64>,
    mean: Vec<f64>,
}

impl LinkState {
    fn init<D: PairDistances + Sync>(items: Vec<LinkItem>, d: &D) -> Self {
        let m = items.len();
        let mut dist = vec![f64::INFINITY; m * m];
        let mut mean = vec![f64::INFINITY; m * m];
        // Pair statistics for the upper triangle, rows in parallel.
        let rows: Vec<Vec<(f64, f64)>> = {
            let items = &items;
            (0..m)
                .into_par_iter()
                .map(|i| {
                    ((i + 1)..m)
                        .map(|j| {
                            cross_stats(
                                d,
                                (&items[i].members, items[i].mm),
                                (&items[j].members, items[j].mm),
                            )
                        })
                        .collect()
                })
                .collect()
        };
        for (i, row) in rows.into_iter().enumerate() {
            for (k, (dv, mv)) in row.into_iter().enumerate() {
                let j = i + 1 + k;
                dist[i * m + j] = dv;
                dist[j * m + i] = dv;
                mean[i * m + j] = mv;
                mean[j * m + i] = mv;
            }
        }
        Self {
            m,
            members: items.iter().map(|it| it.members.clone()).collect(),
            mm: items.iter().map(|it| it.mm).collect(),
            refid: (0..m).collect(),
            active: vec![true; m],
            remaining: m,
            dist,
            mean,
        }
    }

    /// The unique nearest neighbor of active slot `i` under the strict
    /// order `K`. For a fixed row, ordering partners by `(dist, mean,
    /// partner min-member)` is equivalent to ordering the full keys.
    fn nearest(&self, i: usize) -> usize {
        let mut best = usize::MAX;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for j in 0..self.m {
            if !self.active[j] || j == i {
                continue;
            }
            let key = (self.dist[i * self.m + j], self.mean[i * self.m + j]);
            let ordering = key
                .0
                .total_cmp(&best_key.0)
                .then_with(|| key.1.total_cmp(&best_key.1));
            if ordering.is_lt()
                || (ordering.is_eq() && (best == usize::MAX || self.mm[j] < self.mm[best]))
            {
                best = j;
                best_key = key;
            }
        }
        best
    }

    /// Merges slots `x` and `y`, records the event, and returns the
    /// surviving slot. Pair statistics of the survivor are NOT updated;
    /// callers recompute them (sequentially or in parallel) afterwards.
    fn apply_merge(&mut self, x: usize, y: usize, events: &mut Vec<PlanEvent>) -> usize {
        let (s, o) = (x.min(y), x.max(y));
        let (dist, mean) = (self.dist[s * self.m + o], self.mean[s * self.m + o]);
        // The canonical child order (left = smaller min member) is fixed
        // here; canonicalization only reorders whole events.
        let (left, right) = if self.mm[s] < self.mm[o] {
            (self.refid[s], self.refid[o])
        } else {
            (self.refid[o], self.refid[s])
        };
        self.refid[s] = self.m + events.len();
        events.push(PlanEvent {
            left,
            right,
            dist,
            mean,
        });
        let other = std::mem::take(&mut self.members[o]);
        let mut merged = Vec::with_capacity(self.members[s].len() + other.len());
        {
            // Merge two sorted lists.
            let a = &self.members[s];
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < other.len() {
                if a[i] < other[j] {
                    merged.push(a[i]);
                    i += 1;
                } else {
                    merged.push(other[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&a[i..]);
            merged.extend_from_slice(&other[j..]);
        }
        self.members[s] = merged;
        self.mm[s] = self.mm[s].min(self.mm[o]);
        self.active[o] = false;
        self.remaining -= 1;
        s
    }

    /// Recomputes the pure pair statistics between `s` and every active
    /// partner, sequentially.
    fn refresh_row<D: PairDistances>(&mut self, s: usize, d: &D) {
        for j in 0..self.m {
            if !self.active[j] || j == s {
                continue;
            }
            let (dv, mv) = cross_stats(
                d,
                (&self.members[s], self.mm[s]),
                (&self.members[j], self.mm[j]),
            );
            self.dist[s * self.m + j] = dv;
            self.dist[j * self.m + s] = dv;
            self.mean[s * self.m + j] = mv;
            self.mean[j * self.m + s] = mv;
        }
    }
}

/// Plans one complete-linkage run and canonicalizes the result.
fn plan_linkage<D: PairDistances + Sync>(
    items: Vec<LinkItem>,
    d: &D,
    backend: HacBackend,
    stats: &mut HacStats,
) -> Vec<PlanEvent> {
    let m = items.len();
    assert!(m > 0, "complete linkage needs at least one cluster");
    if m == 1 {
        return Vec::new();
    }
    let item_mm: Vec<usize> = items.iter().map(|it| it.mm).collect();
    let mut state = LinkState::init(items, d);
    let events = match backend {
        HacBackend::ParallelRounds => plan_rounds(&mut state, d, stats),
        HacBackend::NnChain => plan_nn_chain(&mut state, d, stats),
    };
    canonicalize(m, &item_mm, events)
}

/// The mutual-NN round engine: every round scans all active rows for
/// nearest neighbors in parallel, merges every mutually-nearest pair, and
/// refreshes the merged rows in parallel. Progress is guaranteed because
/// the globally `K`-minimal pair is always mutual.
fn plan_rounds<D: PairDistances + Sync>(
    state: &mut LinkState,
    d: &D,
    stats: &mut HacStats,
) -> Vec<PlanEvent> {
    let m = state.m;
    let mut events = Vec::with_capacity(m - 1);
    while state.remaining > 1 {
        let slots: Vec<usize> = (0..m).filter(|&i| state.active[i]).collect();
        let nn: Vec<usize> = {
            let state = &*state;
            slots.par_iter().map(|&i| state.nearest(i)).collect()
        };
        let mut nn_of = vec![usize::MAX; m];
        for (k, &i) in slots.iter().enumerate() {
            nn_of[i] = nn[k];
        }
        let pairs: Vec<(usize, usize)> = slots
            .iter()
            .copied()
            .filter(|&i| {
                let j = nn_of[i];
                i < j && nn_of[j] == i
            })
            .map(|i| (i, nn_of[i]))
            .collect();
        assert!(!pairs.is_empty(), "the K-minimal pair is always mutual");
        let survivors: Vec<usize> = pairs
            .iter()
            .map(|&(x, y)| state.apply_merge(x, y, &mut events))
            .collect();
        // Refresh all merged rows at once, survivors in parallel: every
        // entry is a pure function of the (final) member sets, so the
        // write order is irrelevant and survivor–survivor pairs simply
        // get written twice with the same bits.
        let updates: Vec<Vec<(usize, f64, f64)>> = {
            let state = &*state;
            survivors
                .par_iter()
                .map(|&s| {
                    (0..m)
                        .filter(|&j| state.active[j] && j != s)
                        .map(|j| {
                            let (dv, mv) = cross_stats(
                                d,
                                (&state.members[s], state.mm[s]),
                                (&state.members[j], state.mm[j]),
                            );
                            (j, dv, mv)
                        })
                        .collect()
                })
                .collect()
        };
        for (&s, row) in survivors.iter().zip(&updates) {
            for &(j, dv, mv) in row {
                state.dist[s * m + j] = dv;
                state.dist[j * m + s] = dv;
                state.mean[s * m + j] = mv;
                state.mean[j * m + s] = mv;
            }
        }
        stats.record_round(pairs.len());
    }
    events
}

/// The sequential nearest-neighbor-chain engine (O(m²) scans overall).
/// Under the strict order `K` nearest neighbors are unique, the chain key
/// strictly decreases, and every merge is a mutual-NN merge — exactly the
/// moves [`plan_rounds`] makes, hence the identical merge tree.
fn plan_nn_chain<D: PairDistances + Sync>(
    state: &mut LinkState,
    d: &D,
    stats: &mut HacStats,
) -> Vec<PlanEvent> {
    let m = state.m;
    let mut events = Vec::with_capacity(m - 1);
    let mut chain: Vec<usize> = Vec::new();
    while state.remaining > 1 {
        if chain.is_empty() {
            let start = (0..m)
                .filter(|&i| state.active[i])
                .min_by_key(|&i| state.mm[i])
                .expect("at least two active clusters remain");
            chain.push(start);
        }
        let current = *chain.last().expect("chain non-empty");
        let nearest = state.nearest(current);
        let prev = if chain.len() >= 2 {
            Some(chain[chain.len() - 2])
        } else {
            None
        };
        if Some(nearest) == prev {
            chain.pop();
            chain.pop();
            let survivor = state.apply_merge(current, nearest, &mut events);
            state.refresh_row(survivor, d);
            stats.record_round(1);
        } else {
            chain.push(nearest);
        }
    }
    events
}

/// Canonicalization heap entry: pops the smallest `(dist, mean, mm_low,
/// mm_high)` key first.
struct CanonEntry {
    dist: f64,
    mean: f64,
    mm_low: usize,
    mm_high: usize,
    event: usize,
}

impl PartialEq for CanonEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for CanonEntry {}
impl PartialOrd for CanonEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CanonEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so BinaryHeap (a max-heap) pops the smallest key.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.mean.total_cmp(&self.mean))
            .then_with(|| other.mm_low.cmp(&self.mm_low))
            .then_with(|| other.mm_high.cmp(&self.mm_high))
    }
}

/// Renumbers a plan into the canonical emission order: repeatedly emit the
/// available event (children already emitted) with the smallest `K`-key.
/// Coexisting available events have disjoint member sets and therefore
/// distinct `(mm_low, mm_high)`, so the order is deterministic; because a
/// run merges to a single root, the root is always emitted last.
fn canonicalize(m: usize, item_mm: &[usize], events: Vec<PlanEvent>) -> Vec<PlanEvent> {
    let e = events.len();
    if e == 0 {
        return events;
    }
    let mut ref_mm = vec![usize::MAX; m + e];
    ref_mm[..m].copy_from_slice(item_mm);
    for (k, ev) in events.iter().enumerate() {
        ref_mm[m + k] = ref_mm[ev.left].min(ref_mm[ev.right]);
    }
    let mut parent = vec![usize::MAX; m + e];
    let mut pending = vec![0_u8; e];
    for (k, ev) in events.iter().enumerate() {
        parent[ev.left] = k;
        parent[ev.right] = k;
        pending[k] = (ev.left >= m) as u8 + (ev.right >= m) as u8;
    }
    let entry = |k: usize, events: &[PlanEvent], ref_mm: &[usize]| {
        let ev = &events[k];
        let (a, b) = (ref_mm[ev.left], ref_mm[ev.right]);
        CanonEntry {
            dist: ev.dist,
            mean: ev.mean,
            mm_low: a.min(b),
            mm_high: a.max(b),
            event: k,
        }
    };
    let mut heap = std::collections::BinaryHeap::with_capacity(e);
    for (k, &count) in pending.iter().enumerate() {
        if count == 0 {
            heap.push(entry(k, &events, &ref_mm));
        }
    }
    let mut new_ref = vec![usize::MAX; m + e];
    for (i, slot) in new_ref.iter_mut().take(m).enumerate() {
        *slot = i;
    }
    let mut out = Vec::with_capacity(e);
    while let Some(CanonEntry { event: k, .. }) = heap.pop() {
        let ev = &events[k];
        let (left, right) = if ref_mm[ev.left] < ref_mm[ev.right] {
            (ev.left, ev.right)
        } else {
            (ev.right, ev.left)
        };
        out.push(PlanEvent {
            left: new_ref[left],
            right: new_ref[right],
            dist: ev.dist,
            mean: ev.mean,
        });
        new_ref[m + k] = m + out.len() - 1;
        let p = parent[m + k];
        if p != usize::MAX {
            pending[p] -= 1;
            if pending[p] == 0 {
                heap.push(entry(p, &events, &ref_mm));
            }
        }
    }
    debug_assert_eq!(out.len(), e, "plan must form a single tree");
    out
}

/// Re-assigns the dendrogram heights per §V-D.
fn assign_heights(
    dendrogram: &mut Dendrogram,
    records: &[MergeRecord],
    group_sizes: &[(usize, usize)],
    group_root_nodes: &[usize],
) {
    use std::collections::HashMap;

    // Inter-group nodes: height = number of converging bubbles (groups)
    // among the node's descendants. Group roots count 1; leaves of the
    // inter-group level are exactly the group roots.
    let group_root_set: std::collections::HashSet<usize> =
        group_root_nodes.iter().copied().collect();
    let mut groups_below: HashMap<usize, usize> = HashMap::new();
    let count_groups =
        |dendrogram: &Dendrogram, node: usize, groups_below: &mut HashMap<usize, usize>| {
            // Children of inter-group nodes are either group roots or earlier
            // inter-group nodes (already counted, since records are in creation
            // order).
            let n = dendrogram.node(node);
            let child_count = |c: usize, groups_below: &HashMap<usize, usize>| {
                if group_root_set.contains(&c) {
                    1
                } else {
                    *groups_below.get(&c).unwrap_or(&1)
                }
            };
            let total = child_count(n.left.expect("internal"), groups_below)
                + child_count(n.right.expect("internal"), groups_below);
            groups_below.insert(node, total);
            total
        };
    for record in records {
        if record.kind == MergeKind::InterGroup {
            let total = count_groups(dendrogram, record.node, &mut groups_below);
            dendrogram.set_height(record.node, total as f64);
        }
    }

    // Per-group ladder heights.
    let mut per_group: HashMap<usize, Vec<&MergeRecord>> = HashMap::new();
    for record in records {
        match record.kind {
            MergeKind::IntraBubble { group, .. } | MergeKind::InterBubble { group } => {
                per_group.entry(group).or_default().push(record);
            }
            MergeKind::InterGroup => {}
        }
    }
    // Drain in plan (`group_sizes`) order, not hash order: each group's
    // heights are independent, but the byte-identity contract bans
    // hash-order traversal on any result path outright.
    for &(group, nb) in group_sizes {
        let Some(mut group_records) = per_group.remove(&group) else {
            continue;
        };
        debug_assert_eq!(group_records.len(), nb.saturating_sub(1));
        // Sort: intra-bubble nodes first (by bubble assignment, then merge
        // distance, then creation order), then inter-bubble nodes (by merge
        // distance, then creation order).
        group_records.sort_by(|a, b| {
            let key = |r: &MergeRecord| match r.kind {
                MergeKind::IntraBubble { bubble, .. } => (0_usize, bubble),
                MergeKind::InterBubble { .. } => (1, 0),
                MergeKind::InterGroup => unreachable!("filtered above"),
            };
            key(a)
                .cmp(&key(b))
                .then(a.distance.total_cmp(&b.distance))
                .then(a.node.cmp(&b.node))
        });
        // Ladder 1/(nb−1), 1/(nb−2), …, 1/2, 1.
        for (i, record) in group_records.iter().enumerate() {
            let denom = (nb - 1 - i) as f64;
            dendrogram.set_height(record.node, 1.0 / denom);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbht::dbht_for_tmfg;
    use crate::tmfg::{tmfg, TmfgConfig};
    use pfg_graph::SymmetricMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blocks_matrix(
        n: usize,
        blocks: usize,
        strong: f64,
        weak: f64,
        seed: u64,
    ) -> SymmetricMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        SymmetricMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else if (i % blocks) == (j % blocks) {
                strong + rng.gen_range(-0.02..0.02)
            } else {
                weak + rng.gen_range(-0.02..0.02)
            }
        })
    }

    fn dissimilarity_of(s: &SymmetricMatrix) -> SymmetricMatrix {
        s.map(|p| (2.0 * (1.0 - p)).sqrt())
    }

    #[test]
    fn dendrogram_covers_all_vertices_and_is_monotone() {
        for prefix in [1, 5] {
            let n = 24;
            let s = blocks_matrix(n, 3, 0.8, 0.1, 7);
            let t = tmfg(&s, TmfgConfig::with_prefix(prefix)).unwrap();
            let d = dissimilarity_of(&s);
            let result = dbht_for_tmfg(&t, &d).unwrap();
            let dend = &result.dendrogram;
            assert_eq!(dend.num_leaves(), n);
            let root = dend.root().expect("fully merged dendrogram");
            assert_eq!(dend.node(root).size, n);
            assert!(dend.is_monotone(), "DBHT heights must be monotone");
        }
    }

    #[test]
    fn root_height_equals_number_of_groups() {
        let n = 30;
        let s = blocks_matrix(n, 3, 0.85, 0.05, 3);
        let t = tmfg(&s, TmfgConfig::with_prefix(2)).unwrap();
        let d = dissimilarity_of(&s);
        let result = dbht_for_tmfg(&t, &d).unwrap();
        let dend = &result.dendrogram;
        let root = dend.root().unwrap();
        let groups = result.assignment.num_groups();
        if groups > 1 {
            assert!((dend.node(root).height - groups as f64).abs() < 1e-9);
        } else {
            // A single group tops out at height 1.
            assert!((dend.node(root).height - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn three_blocks_recovered_by_cutting() {
        let n = 30;
        let s = blocks_matrix(n, 3, 0.85, 0.05, 11);
        let t = tmfg(&s, TmfgConfig::with_prefix(1)).unwrap();
        let d = dissimilarity_of(&s);
        let result = dbht_for_tmfg(&t, &d).unwrap();
        let labels = result.dendrogram.cut_to_clusters(3);
        // Measure agreement with ground truth (i % 3) via pair counting:
        // the clustering should be far better than random.
        let mut agree = 0_usize;
        let mut total = 0_usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let same_truth = i % 3 == j % 3;
                let same_label = labels[i] == labels[j];
                if same_truth == same_label {
                    agree += 1;
                }
                total += 1;
            }
        }
        let agreement = agree as f64 / total as f64;
        assert!(agreement > 0.8, "agreement {agreement}");
    }

    #[test]
    fn group_subtrees_top_out_at_height_one() {
        let n = 26;
        let s = blocks_matrix(n, 2, 0.8, 0.1, 5);
        let t = tmfg(&s, TmfgConfig::with_prefix(3)).unwrap();
        let d = dissimilarity_of(&s);
        let result = dbht_for_tmfg(&t, &d).unwrap();
        let dend = &result.dendrogram;
        // Every internal node height is either in (0, 1] (within-group) or
        // an integer ≥ 2 (inter-group).
        for id in dend.internal_nodes() {
            let h = dend.node(id).height;
            let within = h > 0.0 && h <= 1.0 + 1e-12;
            let inter = h >= 2.0 - 1e-12 && (h - h.round()).abs() < 1e-9;
            assert!(within || inter, "unexpected height {h}");
        }
    }

    #[test]
    fn linkage_plan_merges_closest_first() {
        // Four singleton clusters on a line: 0-1 close, 2-3 close, the two
        // pairs far apart. Both engines must produce the same canonical
        // plan: the tight pairs at distance 1 (lower min-member first),
        // then the final merge at the complete-linkage distance 11.
        let spd = SymmetricMatrix::from_fn(4, |i, j| {
            let pos: [f64; 4] = [0.0, 1.0, 10.0, 11.0];
            (pos[i] - pos[j]).abs()
        });
        let items = || {
            (0..4)
                .map(|v| LinkItem {
                    members: vec![v],
                    mm: v,
                })
                .collect::<Vec<_>>()
        };
        for backend in [HacBackend::ParallelRounds, HacBackend::NnChain] {
            let mut stats = HacStats::default();
            let events = plan_linkage(items(), &spd, backend, &mut stats);
            assert_eq!(events.len(), 3, "{backend:?}");
            assert_eq!((events[0].left, events[0].right), (0, 1), "{backend:?}");
            assert!((events[0].dist - 1.0).abs() < 1e-12);
            assert_eq!((events[1].left, events[1].right), (2, 3), "{backend:?}");
            assert!((events[1].dist - 1.0).abs() < 1e-12);
            // Final merge of the two planned clusters (refs 4 and 5).
            assert_eq!((events[2].left, events[2].right), (4, 5), "{backend:?}");
            assert!((events[2].dist - 11.0).abs() < 1e-12);
            assert_eq!(stats.merges, 3);
        }
    }

    #[test]
    fn engines_plan_identical_events_on_random_inputs() {
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = 14;
            let spd =
                SymmetricMatrix::from_fn(
                    m,
                    |i, j| {
                        if i == j {
                            0.0
                        } else {
                            rng.gen_range(0.1..2.0)
                        }
                    },
                );
            let items = || {
                (0..m)
                    .map(|v| LinkItem {
                        members: vec![v],
                        mm: v,
                    })
                    .collect::<Vec<_>>()
            };
            let mut s1 = HacStats::default();
            let mut s2 = HacStats::default();
            let rounds = plan_linkage(items(), &spd, HacBackend::ParallelRounds, &mut s1);
            let chain = plan_linkage(items(), &spd, HacBackend::NnChain, &mut s2);
            assert_eq!(rounds, chain, "seed {seed}");
            assert_eq!(s1.merges, s2.merges);
            // The round engine needs no more rounds than the chain engine
            // needs merges, and usually far fewer.
            assert!(s1.rounds <= s2.rounds, "seed {seed}");
        }
    }

    #[test]
    fn engines_plan_identical_events_under_maximal_ties() {
        // All pairwise distances equal: every comparison falls through to
        // the min-member tie level. Both engines must still agree on one
        // canonical plan.
        let m = 9;
        let spd = SymmetricMatrix::from_fn(m, |i, j| if i == j { 0.0 } else { 1.0 });
        let items = || {
            (0..m)
                .map(|v| LinkItem {
                    members: vec![v],
                    mm: v,
                })
                .collect::<Vec<_>>()
        };
        let mut s1 = HacStats::default();
        let mut s2 = HacStats::default();
        let rounds = plan_linkage(items(), &spd, HacBackend::ParallelRounds, &mut s1);
        let chain = plan_linkage(items(), &spd, HacBackend::NnChain, &mut s2);
        assert_eq!(rounds, chain);
        // Every round's merges bound: mutual pairs are disjoint.
        assert!(s1.max_round_merges <= m / 2);
    }
}
