//! The demand-driven distance store the DBHT back half runs on.
//!
//! The full `n²` APSP matrix (Algorithm 4, line 7) is mostly dead weight:
//! after the vertex assignment, the hierarchy only ever reads
//!
//! * **intra-group pairs** — complete linkage inside each first-level
//!   group (levels 1 and 2 of the hierarchy), and
//! * **bubble-tree paths** — distances between the converging bubbles'
//!   vertices, which anchor the level-3 inter-group linkage and the
//!   mean-distance assignment of vertices outside converging bubbles.
//!
//! [`DbhtDistances`] stitches the two demand-driven stores from
//! `pfg_graph` together: [`GroupBlocks`] (per-group dense blocks, bitwise
//! equal to the full-APSP entries for the same pairs) and [`SourceRows`]
//! (full Dijkstra rows anchored at every converging-bubble vertex). A read
//! outside both stores panics — that panic is the proof obligation that
//! the DBHT really only consumes the distances it declared, and it is what
//! the differential suite in `tests/dbht_parallel.rs` leans on.

use pfg_graph::{GroupBlocks, PairDistances, SourceRows};

/// Restricted shortest-path distances: group blocks first, converging-
/// bubble source rows second.
#[derive(Debug, Clone)]
pub struct DbhtDistances {
    /// Full rows for every converging-bubble vertex.
    pub rows: SourceRows,
    /// Dense intra-group blocks keyed by the vertex assignment's groups.
    pub blocks: GroupBlocks,
}

impl DbhtDistances {
    /// Counters comparing the restricted computation against the dense
    /// `n²` APSP it replaces.
    pub fn stats(&self) -> DbhtDistanceStats {
        let n = self.rows.num_vertices();
        DbhtDistanceStats {
            pairs_computed: self.blocks.pairs_computed() + self.rows.pairs_computed(),
            pairs_full: n * n,
            source_rows: self.rows.sources().len(),
        }
    }
}

impl PairDistances for DbhtDistances {
    fn pair(&self, u: usize, v: usize) -> f64 {
        if u == v {
            return 0.0;
        }
        if self.blocks.same_group(u, v) {
            // Intra-group: bitwise equal to the dense APSP entry.
            self.blocks.pair(u, v)
        } else {
            // Cross-group reads are only legal when at least one endpoint
            // is a converging-bubble vertex; SourceRows panics otherwise.
            self.rows.pair(u, v)
        }
    }

    #[inline]
    fn num_vertices(&self) -> usize {
        self.rows.num_vertices()
    }
}

/// How much of the dense APSP the restricted stores actually computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbhtDistanceStats {
    /// Distance entries materialised (`Σ group² + |sources|·n`).
    pub pairs_computed: usize,
    /// Entries the dense matrix would have materialised (`n²`).
    pub pairs_full: usize,
    /// Number of converging-bubble vertices with a full Dijkstra row.
    pub source_rows: usize,
}

impl DbhtDistanceStats {
    /// Fraction of the dense `n²` output actually computed (< 0.5 on the
    /// clustered benchmark inputs is the PR's acceptance bar).
    pub fn restricted_fraction(&self) -> f64 {
        if self.pairs_full == 0 {
            0.0
        } else {
            self.pairs_computed as f64 / self.pairs_full as f64
        }
    }
}
